//! Data-movement study (paper §3.2 / Fig. 4 in miniature): route an
//! all-to-all QAOA circuit on every topology family and compare the induced
//! SWAP counts, gate-agnostically.
//!
//! Run with: `cargo run --release --example qaoa_routing`

use snailqc::prelude::*;
use snailqc::topology::catalog;

fn main() {
    let n = 14;
    let circuit = Workload::QaoaVanilla.generate(n, 3);
    println!(
        "QAOA vanilla proxy on {n} qubits: {} ZZ interactions (all-to-all SK model)\n",
        circuit.two_qubit_count()
    );

    let devices: Vec<Device> = [
        catalog::heavy_hex_20(),
        catalog::hex_lattice_20(),
        catalog::square_lattice_16(),
        catalog::hypercube_16(),
        catalog::tree_20(),
        catalog::tree_rr_20(),
        catalog::corral11_16(),
        catalog::corral12_16(),
    ]
    .into_iter()
    .map(Device::from_graph)
    .collect();

    println!(
        "{:<24}{:>12}{:>20}{:>14}",
        "topology", "SWAPs", "critical-path SWAPs", "2Q depth"
    );
    let pipeline = Pipeline::default();
    let mut results: Vec<(String, usize, usize, usize)> = Vec::new();
    for device in &devices {
        let result = device.transpile(&circuit, &pipeline);
        results.push((
            device.label().to_string(),
            result.report.swap_count,
            result.report.swap_depth,
            result.report.routed_two_qubit_depth,
        ));
    }
    results.sort_by_key(|r| r.1);
    for (name, swaps, crit, depth) in &results {
        println!("{name:<24}{swaps:>12}{crit:>20}{depth:>14}");
    }

    let best = &results[0];
    let worst = results.last().unwrap();
    println!(
        "\n{} needs {:.1}x fewer SWAPs than {} for the same program — the connectivity \
         argument of paper Observation 2.",
        best.0,
        worst.1 as f64 / best.1.max(1) as f64,
        worst.0
    );
}
