//! Quickstart: transpile one benchmark circuit onto a co-designed SNAIL
//! machine and onto the IBM-style baseline, and compare the costs the paper
//! reports (SWAPs, 2Q gates, critical paths).
//!
//! Run with: `cargo run --release --example quickstart`

use snailqc::prelude::*;

fn main() {
    // 1. Generate a workload: a 16-qubit Quantum Volume circuit.
    let circuit = Workload::QuantumVolume.generate(16, 42);
    println!(
        "workload: {} on {} qubits, {} two-qubit gates",
        Workload::QuantumVolume.label(),
        circuit.num_qubits(),
        circuit.two_qubit_count()
    );

    // 2. Build two devices: the SNAIL Corral with its native √iSWAP basis,
    //    and the IBM-style heavy-hex fragment with CNOT. A Device bundles
    //    topology, per-edge noise and native basis into one artifact.
    let corral = Device::from_catalog("corral12-16")
        .expect("catalog name")
        .with_basis(BasisGate::SqrtISwap);
    let heavy_hex = Device::from_catalog("heavy-hex-20")
        .expect("catalog name")
        .with_basis(BasisGate::Cnot);

    // 3. Run the paper's Fig.-10 staged pipeline on both; the translation
    //    stage picks each device's native gate automatically.
    let pipeline = Pipeline::default();
    let snail = corral.transpile(&circuit, &pipeline);
    let ibm = heavy_hex.transpile(&circuit, &pipeline);

    println!(
        "\n{:<28}{:>16}{:>16}",
        "metric", "Corral1,2+siswap", "HeavyHex+CX"
    );
    let row = |name: &str, a: usize, b: usize| {
        println!("{name:<28}{a:>16}{b:>16}");
    };
    row(
        "SWAPs inserted",
        snail.report.swap_count,
        ibm.report.swap_count,
    );
    row(
        "critical-path SWAPs",
        snail.report.swap_depth,
        ibm.report.swap_depth,
    );
    row(
        "total 2Q basis gates",
        snail.report.basis_gate_count,
        ibm.report.basis_gate_count,
    );
    row(
        "critical-path 2Q gates",
        snail.report.basis_gate_depth,
        ibm.report.basis_gate_depth,
    );

    let speedup = ibm.report.basis_gate_depth as f64 / snail.report.basis_gate_depth.max(1) as f64;
    println!(
        "\nThe co-designed SNAIL machine finishes the circuit in {speedup:.2}x fewer \
         two-qubit pulse slots."
    );
}
