//! A miniature Fig. 15: the `ⁿ√iSWAP` pulse-duration sensitivity study.
//! Fits NuOp templates of increasing size to Haar-random two-qubit unitaries
//! for several fractional-iSWAP bases and evaluates the decoherence-aware
//! total fidelity, reproducing the "finer roots reduce infidelity" result.
//!
//! Run with: `cargo run --release --example nsqrt_iswap_fidelity`

use snailqc::decompose::study::{run_study, StudyConfig};

fn main() {
    let config = StudyConfig {
        samples: 6,
        roots: vec![2, 3, 4, 5],
        template_sizes: (2..=6).collect(),
        iswap_fidelities: vec![0.95, 0.99],
        seed: 7,
        optimizer_iterations: 180,
    };
    println!(
        "fitting {} Haar targets × roots {:?} × template sizes {:?}…\n",
        config.samples, config.roots, config.template_sizes
    );
    let result = run_study(&config);

    println!("average decomposition infidelity (1 - Fd):");
    print!("{:<12}", "basis");
    for k in &config.template_sizes {
        print!("{:>12}", format!("k={k}"));
    }
    println!();
    for &n in &config.roots {
        print!("{:<12}", format!("{n}-th root"));
        for &k in &config.template_sizes {
            print!("{:>12.2e}", result.infidelity(n, k).unwrap_or(f64::NAN));
        }
        println!();
    }

    println!("\naverage best total fidelity Ft (decomposition × decoherence):");
    print!("{:<12}", "basis");
    for fb in &config.iswap_fidelities {
        print!("{:>14}", format!("Fb(iSWAP)={fb}"));
    }
    println!();
    for &n in &config.roots {
        print!("{:<12}", format!("{n}-th root"));
        for &fb in &config.iswap_fidelities {
            print!("{:>14.4}", result.total(n, fb).unwrap_or(f64::NAN));
        }
        println!();
    }

    if let Some(reduction) = result.infidelity_reduction_vs_sqrt_iswap(4, 0.99) {
        println!(
            "\n4th-root iSWAP reduces infidelity by {:.0}% versus sqrt-iSWAP at Fb(iSWAP) = 0.99 \
             (the paper reports ~25%).",
            reduction * 100.0
        );
    }
}
