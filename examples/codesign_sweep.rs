//! A miniature Fig. 13: sweep every workload over the co-designed machine
//! line-up (topology + native basis gate) at 16–20 qubits and print the total
//! and critical-path 2Q gate counts.
//!
//! Run with: `cargo run --release --example codesign_sweep`

use snailqc::prelude::*;

fn main() {
    let devices: Vec<Device> = Machine::figure13_lineup()
        .into_iter()
        .map(Device::from_machine)
        .collect();
    let config = SweepConfig {
        workloads: Workload::all().to_vec(),
        sizes: vec![8, 12, 16],
        routing_trials: 2,
        error_weight: 0.0,
        seed: 2022,
    };
    println!(
        "sweeping {} workloads × {:?} qubits × {} machines…\n",
        config.workloads.len(),
        config.sizes,
        devices.len()
    );
    let points = run_sweep(&devices, &config);

    for workload in Workload::all() {
        println!("== {} ==", workload.label());
        println!("{:<32}{:>12}{:>12}", "machine", "total 2Q", "2Q depth");
        let mut rows: Vec<(String, usize, usize)> = devices
            .iter()
            .map(|d| {
                let (mut total, mut depth, mut count) = (0usize, 0usize, 0usize);
                for p in points
                    .iter()
                    .filter(|p| p.workload == workload && p.topology == d.label())
                {
                    total += p.report.basis_gate_count;
                    depth += p.report.basis_gate_depth;
                    count += 1;
                }
                (
                    d.label().to_string(),
                    total / count.max(1),
                    depth / count.max(1),
                )
            })
            .collect();
        rows.sort_by_key(|r| r.2);
        for (label, total, depth) in rows {
            println!("{label:<32}{total:>12}{depth:>12}");
        }
        println!();
    }
    println!(
        "Rows are averaged over the size sweep; lower is better. The SNAIL machines \
         (√iSWAP on Corral/Tree/Hypercube) should dominate the baselines, reproducing \
         the ordering of the paper's Fig. 13."
    );
}
