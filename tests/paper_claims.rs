//! Integration tests pinning the paper's qualitative claims (directionality
//! of every headline result) at reduced problem sizes so they run in CI.

use snailqc::core::headline::{quantum_volume_headline, HeadlineConfig};
use snailqc::decompose::study::{run_study, StudyConfig};
use snailqc::decompose::{nth_root_basis_fidelity, total_fidelity};
use snailqc::prelude::*;
use snailqc::topology::catalog;

#[test]
fn observation1_sqrt_iswap_beats_cnot_beats_syc_on_average() {
    // Decomposition efficiency over Haar-random 2Q unitaries (§3.1).
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snailqc::math::random::haar_unitary4;
    let mut rng = StdRng::seed_from_u64(4);
    let (mut c_cx, mut c_si, mut c_syc) = (0usize, 0usize, 0usize);
    let samples = 100;
    for _ in 0..samples {
        let u = haar_unitary4(&mut rng);
        c_cx += BasisGate::Cnot.count_for_unitary(&u);
        c_si += BasisGate::SqrtISwap.count_for_unitary(&u);
        c_syc += BasisGate::Syc.count_for_unitary(&u);
    }
    assert!(c_si <= c_cx, "sqrt-iSWAP {c_si} vs CNOT {c_cx}");
    assert!(c_cx < c_syc, "CNOT {c_cx} vs SYC {c_syc}");
}

#[test]
fn observation2_connectivity_reduces_swaps_at_scale() {
    // §3.2 / Fig. 4 directionality on a reduced 40-qubit QAOA instance.
    let circuit = Workload::QaoaVanilla.generate(40, 8);
    let pipeline = Pipeline::default();
    let heavy = pipeline.run(&circuit, &catalog::heavy_hex_84()).report;
    let square = pipeline.run(&circuit, &catalog::square_lattice_84()).report;
    let hyper = pipeline.run(&circuit, &catalog::hypercube_84()).report;
    assert!(square.swap_count < heavy.swap_count);
    assert!(hyper.swap_count < square.swap_count);
    assert!(hyper.swap_depth < heavy.swap_depth);
}

#[test]
fn headline_ratios_point_the_right_way() {
    // Abstract: hypercube/√iSWAP vs heavy-hex/CNOT wins on all four metrics.
    let ratios = quantum_volume_headline(&HeadlineConfig {
        sizes: vec![16, 24],
        routing_trials: 2,
        seed: 21,
    });
    assert!(
        ratios.total_swap_ratio > 1.5,
        "total swaps {}",
        ratios.total_swap_ratio
    );
    assert!(
        ratios.critical_swap_ratio > 1.5,
        "critical swaps {}",
        ratios.critical_swap_ratio
    );
    assert!(
        ratios.total_2q_ratio > 1.5,
        "total 2Q {}",
        ratios.total_2q_ratio
    );
    assert!(
        ratios.critical_2q_ratio > 1.5,
        "critical 2Q {}",
        ratios.critical_2q_ratio
    );
}

#[test]
fn tree_beats_heavy_hex_on_ghz_but_not_necessarily_on_qft() {
    // §6.2 notes the Tree's strength is local connectivity (GHZ) while QFT
    // stresses its root bottleneck; at minimum the Tree must win on GHZ.
    let ghz = Workload::Ghz.generate(60, 2);
    let pipeline = Pipeline::default();
    let tree = pipeline.run(&ghz, &catalog::tree_84()).report;
    let heavy = pipeline.run(&ghz, &catalog::heavy_hex_84()).report;
    assert!(tree.swap_count < heavy.swap_count);
}

#[test]
fn nsqrt_iswap_study_reproduces_the_fidelity_headline_direction() {
    // §6.3: at Fb(iSWAP) = 0.99, a finer-grained basis (4√iSWAP) achieves a
    // lower total infidelity than √iSWAP.
    let result = run_study(&StudyConfig {
        samples: 4,
        roots: vec![2, 4],
        template_sizes: (2..=6).collect(),
        iswap_fidelities: vec![0.99],
        seed: 13,
        optimizer_iterations: 160,
    });
    let reduction = result
        .infidelity_reduction_vs_sqrt_iswap(4, 0.99)
        .expect("cells present");
    assert!(
        reduction > 0.05,
        "4th-root basis should reduce infidelity vs sqrt-iSWAP, got {:.1}%",
        reduction * 100.0
    );
}

#[test]
fn decoherence_model_matches_paper_example() {
    // §6.3 example: a 90% iSWAP implies a 95% √iSWAP; three of them bound the
    // total fidelity below a single iSWAP of the same quality applied once.
    assert!((nth_root_basis_fidelity(0.90, 2) - 0.95).abs() < 1e-12);
    let three_halves = total_fidelity(1.0, 0.95, 3);
    assert!(three_halves < 0.9);
    assert!(three_halves > 0.85);
}

#[test]
fn table_metrics_order_snail_topologies_above_baselines() {
    let t1: std::collections::HashMap<String, snailqc::topology::TopologyMetrics> =
        catalog::table1().into_iter().collect();
    assert!(t1["Corral1,2-16"].avg_connectivity > t1["Square-Lattice-16"].avg_connectivity);
    assert!(t1["Tree-20"].diameter < t1["Heavy-Hex-20"].diameter);
    let t2: std::collections::HashMap<String, snailqc::topology::TopologyMetrics> =
        catalog::table2().into_iter().collect();
    assert!(t2["Hypercube-84"].avg_distance < t2["Heavy-Hex-84"].avg_distance);
}
