//! The shipped `devices/` catalog: every spec file loads end-to-end, has
//! the advertised size and stays connected; the registry resolves the specs
//! by (forgiving) name alongside the built-ins; and `SNAILQC_DEVICE_PATH`
//! prepends extra search directories.

use snailqc::core::device::Device;
use snailqc::core::registry::{DeviceRegistry, DeviceSource, DEVICE_PATH_ENV};
use snailqc::decompose::BasisGate;
use std::path::PathBuf;

fn devices_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("devices")
}

/// `(file, qubits)` for every spec shipped in `devices/` — exhaustive, so
/// adding a spec without updating the expectations here fails loudly.
const SHIPPED: [(&str, usize); 9] = [
    ("grid_100.json", 100),
    ("grid_256.json", 256),
    ("grid_625.json", 625),
    ("hypercube_1024.json", 1024),
    ("ibm_heavy_hex_127.json", 127),
    ("ibm_heavy_hex_133.json", 133),
    ("ibm_heavy_hex_433.json", 433),
    ("ion_trap_32.json", 32),
    ("sycamore_53.json", 53),
];

#[test]
fn every_shipped_spec_loads_connected_at_the_advertised_size() {
    let dir = devices_dir();
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("devices/ ships with the repo")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".json"))
        .collect();
    on_disk.sort();
    let expected: Vec<String> = SHIPPED.iter().map(|(f, _)| f.to_string()).collect();
    assert_eq!(on_disk, expected, "SHIPPED expectations are exhaustive");

    for (file, qubits) in SHIPPED {
        let device =
            Device::from_spec_file(dir.join(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(device.num_qubits(), qubits, "{file}");
        assert!(device.graph().is_connected(), "{file} must be connected");
    }
}

#[test]
fn shipped_specs_pin_the_expected_native_bases() {
    let dir = devices_dir();
    let basis = |file: &str| Device::from_spec_file(dir.join(file)).unwrap().basis();
    assert_eq!(basis("ibm_heavy_hex_127.json"), Some(BasisGate::Cnot));
    assert_eq!(basis("ibm_heavy_hex_433.json"), Some(BasisGate::Cnot));
    assert_eq!(basis("sycamore_53.json"), Some(BasisGate::Syc));
    assert_eq!(basis("hypercube_1024.json"), Some(BasisGate::SqrtISwap));
    assert_eq!(basis("ion_trap_32.json"), None);
}

#[test]
fn registry_resolves_shipped_names_forgivingly_alongside_builtins() {
    let registry = DeviceRegistry::with_paths(vec![devices_dir()]);
    for name in [
        "ibm_heavy_hex_127",
        "IBM-Heavy-Hex-127",
        "Sycamore 53",
        "ion-trap-32",
        "hypercube_1024",
        "tree-20", // builtins keep resolving through the same registry
    ] {
        let device = registry
            .resolve(name)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(device.num_qubits() > 0, "{name}");
    }
    let entries = registry.entries();
    let files = entries
        .iter()
        .filter(|e| matches!(e.source, DeviceSource::File(_)))
        .count();
    assert_eq!(files, SHIPPED.len(), "one entry per shipped spec");
    assert!(
        entries.iter().any(|e| e.source == DeviceSource::Builtin),
        "builtins are listed too"
    );
    // The README is not a spec and must not appear.
    assert!(entries.iter().all(|e| e.name != "README"));
}

#[test]
fn device_path_env_prepends_search_directories() {
    // `with_default_paths` reads the env var at construction; serialize this
    // test's env mutation by doing everything before any assertion on other
    // registries (no other test in this binary touches the variable).
    std::env::set_var(DEVICE_PATH_ENV, devices_dir());
    let registry = DeviceRegistry::with_default_paths();
    std::env::remove_var(DEVICE_PATH_ENV);
    assert_eq!(registry.dirs().len(), 2, "env dir + ./devices fallback");
    let device = registry
        .resolve("sycamore_53")
        .expect("resolves via env dir");
    assert_eq!(device.num_qubits(), 53);
}

#[test]
fn ion_trap_routing_is_a_no_op() {
    let device = Device::from_spec_file(devices_dir().join("ion_trap_32.json")).unwrap();
    let circuit = snailqc::workloads::Workload::QuantumVolume.generate(12, 7);
    let pipeline = snailqc::transpiler::Pipeline::builder().seed(11).build();
    let result = device.transpile(&circuit, &pipeline);
    assert_eq!(
        result.report.swap_count, 0,
        "all-to-all connectivity needs no SWAPs"
    );
}
