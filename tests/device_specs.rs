//! Builder ↔ spec digest-parity suite.
//!
//! The device-spec format's core guarantee: a spec that mirrors a built-in
//! topology routes *bitwise-identically* to the builder-constructed graph.
//! For every catalog topology, export the builder graph with
//! `DeviceSpec::from_graph`, reload it through `Device::from_spec_str`, and
//! compare full routed-instruction digests in both the noise-blind and the
//! noise-aware configuration of the PR-5 frozen-digest harness (the
//! calibrated graphs exercise the per-edge override export path).

use snailqc::core::device::Device;
use snailqc::devices::DeviceSpec;
use snailqc::topology::{builders, catalog, CouplingGraph};
use snailqc::transpiler::{route, LayoutStrategy, RoutedCircuit, RouterConfig};
use snailqc::workloads::Workload;

/// FNV-1a digest of a routed circuit — same construction as the frozen
/// router-equivalence harness: every instruction's gate (debug form covers
/// the variant and any `f64` parameters bit-exactly) and operand list, then
/// the final layout permutation.
fn digest(routed: &RoutedCircuit) -> u64 {
    let mut bytes = Vec::new();
    for inst in routed.circuit.instructions() {
        bytes.extend_from_slice(format!("{:?}|{:?};", inst.gate, inst.qubits).as_bytes());
    }
    bytes.extend_from_slice(format!("final={:?}", routed.final_layout.as_slice()).as_bytes());
    snailqc_util::fnv1a_64(&bytes)
}

fn route_on(graph: &CouplingGraph, noise_aware: bool) -> RoutedCircuit {
    let (config, workload) = if noise_aware {
        (RouterConfig::noise_aware(1.0), Workload::QaoaVanilla)
    } else {
        (RouterConfig::default(), Workload::QuantumVolume)
    };
    let circuit = workload.generate(12, 7);
    let layout = LayoutStrategy::Dense.compute(&circuit, graph);
    route(&circuit, graph, &layout, &config)
}

/// Round-trips a graph through the spec format and returns the reloaded
/// coupling graph (with its calibration applied by `Device::from_spec_str`).
fn through_spec(name: &str, graph: &CouplingGraph) -> CouplingGraph {
    let text = DeviceSpec::from_graph(name, graph).to_json();
    Device::from_spec_str(&text)
        .unwrap_or_else(|e| panic!("{name}: reload failed: {e}\n{text}"))
        .graph()
        .clone()
}

#[test]
fn spec_exported_catalog_devices_route_bitwise_identically_noise_blind() {
    for name in catalog::names() {
        let builder_graph = catalog::by_name(name).unwrap();
        let spec_graph = through_spec(name, &builder_graph);
        assert_eq!(
            digest(&route_on(&builder_graph, false)),
            digest(&route_on(&spec_graph, false)),
            "noise-blind routed digest diverged for `{name}`"
        );
    }
}

#[test]
fn spec_exported_calibrated_devices_route_bitwise_identically_noise_aware() {
    for name in catalog::names() {
        let calibrated = builders::calibrated(&catalog::by_name(name).unwrap(), 1e-3, 1.2, 17);
        let spec_graph = through_spec(name, &calibrated);
        assert_eq!(
            digest(&route_on(&calibrated, true)),
            digest(&route_on(&spec_graph, true)),
            "noise-aware routed digest diverged for `{name}`"
        );
    }
}
