//! Cross-crate integration tests: the full Fig.-10 staged pipeline from
//! workload generation through placement, routing and basis translation, on
//! every device in the paper's small line-up — all through the `Device` +
//! `Pipeline` entry points.

use snailqc::prelude::*;
use snailqc::topology::catalog;

#[test]
fn every_workload_transpiles_onto_every_small_machine() {
    let devices: Vec<Device> = Machine::figure13_lineup()
        .into_iter()
        .map(Device::from_machine)
        .collect();
    let pipeline = Pipeline::default();
    for workload in Workload::all() {
        let circuit = workload.generate(10, 11);
        for device in &devices {
            let result = device.transpile(&circuit, &pipeline);
            let r = result.report;
            assert_eq!(
                r.routed_two_qubit_gates,
                r.input_two_qubit_gates + r.swap_count,
                "{} on {}",
                workload.label(),
                device.label()
            );
            assert!(
                r.basis_gate_count >= r.routed_two_qubit_gates,
                "{} on {}",
                workload.label(),
                device.label()
            );
            assert!(r.basis_gate_depth <= r.basis_gate_count);
            // Every two-qubit gate in the routed circuit respects the device.
            for inst in result.routed.circuit.instructions() {
                if inst.is_two_qubit() {
                    assert!(device.graph().has_edge(inst.qubits[0], inst.qubits[1]));
                }
            }
            // The trace mirrors the report's deltas.
            assert_eq!(result.trace.swaps_inserted(), r.swap_count);
            assert!(result.trace.stage("translation").is_some());
        }
    }
}

#[test]
fn routed_ghz_still_prepares_a_ghz_state() {
    // End-to-end semantic check across crates: generate GHZ, route it onto
    // the 16-qubit hypercube, simulate the physical circuit and verify the
    // state is still a GHZ state over the mapped qubits.
    use snailqc::circuit::simulate;
    let n = 16;
    let circuit = Workload::Ghz.generate(n, 1);
    let device = Device::from_catalog("hypercube-16").unwrap();
    let result = device.transpile(&circuit, &Pipeline::default());
    let sv = simulate(&result.routed.circuit);
    // Map physical back to logical and check the two GHZ amplitudes.
    let perm: Vec<usize> = (0..n)
        .map(|p| result.routed.final_layout.logical(p).unwrap_or(p))
        .collect();
    let logical = sv.permute_qubits(&perm);
    assert!((logical.probability(0) - 0.5).abs() < 1e-9);
    assert!((logical.probability((1 << n) - 1) - 0.5).abs() < 1e-9);
}

#[test]
fn richer_snail_topologies_dominate_heavy_hex_on_qft() {
    let circuit = Workload::Qft.generate(16, 5);
    let pipeline = Pipeline::default();
    let heavy = Device::from_catalog("heavy-hex-20")
        .unwrap()
        .with_basis(BasisGate::Cnot)
        .transpile(&circuit, &pipeline)
        .report;
    for name in ["tree-20", "corral12-16", "hypercube-16"] {
        let device = Device::from_catalog(name)
            .unwrap()
            .with_basis(BasisGate::SqrtISwap);
        let snail = device.transpile(&circuit, &pipeline).report;
        assert!(
            snail.swap_count < heavy.swap_count,
            "{}: {} vs heavy-hex {}",
            device.label(),
            snail.swap_count,
            heavy.swap_count
        );
        assert!(
            snail.basis_gate_depth < heavy.basis_gate_depth,
            "{}: duration {} vs heavy-hex {}",
            device.label(),
            snail.basis_gate_depth,
            heavy.basis_gate_depth
        );
    }
}

#[test]
fn corral_needs_almost_no_swaps_for_small_circuits() {
    // §6.1: "the transpiler manages to find an initial mapping that often
    // requires zero SWAP gates for Corral1,1". A 4-qubit program fits inside
    // one of the Corral's 4-cliques exactly; slightly larger programs should
    // still need only a handful of SWAPs (far fewer than heavy-hex).
    let corral = Device::from_catalog("corral11-16").unwrap();
    let heavy = Device::from_catalog("heavy-hex-20").unwrap();
    let pipeline = Pipeline::default();
    let four = Workload::QuantumVolume.generate(4, 9);
    let report = corral.transpile(&four, &pipeline).report;
    assert_eq!(report.swap_count, 0, "4-qubit QV should map SWAP-free");

    for size in [6, 8] {
        let circuit = Workload::QuantumVolume.generate(size, 9);
        let on_corral = corral.transpile(&circuit, &pipeline).report;
        let on_heavy = heavy.transpile(&circuit, &pipeline).report;
        assert!(
            2 * on_corral.swap_count <= on_heavy.swap_count.max(1),
            "size {size}: corral {} vs heavy-hex {}",
            on_corral.swap_count,
            on_heavy.swap_count
        );
    }
}

#[test]
fn noise_aware_routing_beats_noise_blind_on_a_degraded_corral() {
    // The PR-2 acceptance scenario through the new API: degrade one corral
    // edge 10× via an error-model override (0.001 → 0.01) and compare the
    // edge-aware fidelity estimates of noise-blind vs noise-aware routing,
    // for both the QAOA and QV workloads.
    use snailqc::core::fidelity::{estimate_fidelity_edges, ErrorModel};

    let spec = ErrorModelSpec::from_json(r#"{"edges": [[0, 2, 0.01]]}"#).unwrap();
    let device = Device::from_catalog("corral11-16")
        .unwrap()
        .with_error_model(spec)
        .unwrap();
    let model = ErrorModel::default();

    // Routing is a seeded heuristic; these are fixed-seed regression points
    // (the improvement holds for most seeds, e.g. 8 of 11 for QV).
    for (workload, seed) in [(Workload::QaoaVanilla, 7), (Workload::QuantumVolume, 2)] {
        let circuit = workload.generate(12, seed);
        let run = |error_weight: f64| {
            let pipeline = Pipeline::builder().error_weight(error_weight).build();
            device.transpile(&circuit, &pipeline).report
        };
        let blind = estimate_fidelity_edges(&run(0.0), &model);
        let aware = estimate_fidelity_edges(&run(1.0), &model);
        assert!(
            aware.total_fidelity > blind.total_fidelity,
            "{}: noise-aware {} must beat noise-blind {}",
            workload.label(),
            aware.total_fidelity,
            blind.total_fidelity
        );
    }
}

#[test]
fn basis_choice_does_not_change_routing() {
    // Basis translation happens after routing, so SWAP counts are identical
    // across bases for the same seed (Fig. 10 ordering).
    let circuit = Workload::Qft.generate(12, 3);
    let graph = catalog::tree_20();
    let mut counts = Vec::new();
    for basis in BasisGate::all() {
        let report = Pipeline::builder()
            .translate_to(basis)
            .build()
            .run(&circuit, &graph)
            .report;
        counts.push(report.swap_count);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}
