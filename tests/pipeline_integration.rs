//! Cross-crate integration tests: the full Fig.-10 pipeline from workload
//! generation through placement, routing and basis translation, on every
//! machine in the paper's small line-up.

use snailqc::prelude::*;
use snailqc::topology::catalog;

#[test]
fn every_workload_transpiles_onto_every_small_machine() {
    let machines = Machine::figure13_lineup();
    for workload in Workload::all() {
        let circuit = workload.generate(10, 11);
        for machine in &machines {
            let graph = machine.graph();
            let options = TranspileOptions::with_basis(machine.basis);
            let result = transpile(&circuit, &graph, &options);
            let r = result.report;
            assert_eq!(
                r.routed_two_qubit_gates,
                r.input_two_qubit_gates + r.swap_count,
                "{} on {}",
                workload.label(),
                machine.label()
            );
            assert!(
                r.basis_gate_count >= r.routed_two_qubit_gates,
                "{} on {}",
                workload.label(),
                machine.label()
            );
            assert!(r.basis_gate_depth <= r.basis_gate_count);
            // Every two-qubit gate in the routed circuit respects the device.
            for inst in result.routed.circuit.instructions() {
                if inst.is_two_qubit() {
                    assert!(graph.has_edge(inst.qubits[0], inst.qubits[1]));
                }
            }
        }
    }
}

#[test]
fn routed_ghz_still_prepares_a_ghz_state() {
    // End-to-end semantic check across crates: generate GHZ, route it onto
    // the 16-qubit hypercube, simulate the physical circuit and verify the
    // state is still a GHZ state over the mapped qubits.
    use snailqc::circuit::simulate;
    let n = 16;
    let circuit = Workload::Ghz.generate(n, 1);
    let graph = catalog::hypercube_16();
    let result = transpile(&circuit, &graph, &TranspileOptions::default());
    let sv = simulate(&result.routed.circuit);
    // Map physical back to logical and check the two GHZ amplitudes.
    let perm: Vec<usize> = (0..n)
        .map(|p| result.routed.final_layout.logical(p).unwrap_or(p))
        .collect();
    let logical = sv.permute_qubits(&perm);
    assert!((logical.probability(0) - 0.5).abs() < 1e-9);
    assert!((logical.probability((1 << n) - 1) - 0.5).abs() < 1e-9);
}

#[test]
fn richer_snail_topologies_dominate_heavy_hex_on_qft() {
    let circuit = Workload::Qft.generate(16, 5);
    let heavy = transpile(
        &circuit,
        &catalog::heavy_hex_20(),
        &TranspileOptions::with_basis(BasisGate::Cnot),
    )
    .report;
    for graph in [
        catalog::tree_20(),
        catalog::corral12_16(),
        catalog::hypercube_16(),
    ] {
        let snail = transpile(
            &circuit,
            &graph,
            &TranspileOptions::with_basis(BasisGate::SqrtISwap),
        )
        .report;
        assert!(
            snail.swap_count < heavy.swap_count,
            "{}: {} vs heavy-hex {}",
            graph.name(),
            snail.swap_count,
            heavy.swap_count
        );
        assert!(
            snail.basis_gate_depth < heavy.basis_gate_depth,
            "{}: duration {} vs heavy-hex {}",
            graph.name(),
            snail.basis_gate_depth,
            heavy.basis_gate_depth
        );
    }
}

#[test]
fn corral_needs_almost_no_swaps_for_small_circuits() {
    // §6.1: "the transpiler manages to find an initial mapping that often
    // requires zero SWAP gates for Corral1,1". A 4-qubit program fits inside
    // one of the Corral's 4-cliques exactly; slightly larger programs should
    // still need only a handful of SWAPs (far fewer than heavy-hex).
    let corral = catalog::corral11_16();
    let four = Workload::QuantumVolume.generate(4, 9);
    let report = transpile(&four, &corral, &TranspileOptions::default()).report;
    assert_eq!(report.swap_count, 0, "4-qubit QV should map SWAP-free");

    for size in [6, 8] {
        let circuit = Workload::QuantumVolume.generate(size, 9);
        let on_corral = transpile(&circuit, &corral, &TranspileOptions::default()).report;
        let on_heavy = transpile(
            &circuit,
            &catalog::heavy_hex_20(),
            &TranspileOptions::default(),
        )
        .report;
        assert!(
            2 * on_corral.swap_count <= on_heavy.swap_count.max(1),
            "size {size}: corral {} vs heavy-hex {}",
            on_corral.swap_count,
            on_heavy.swap_count
        );
    }
}

#[test]
fn noise_aware_routing_beats_noise_blind_on_a_degraded_corral() {
    // The PR's acceptance scenario: degrade one corral edge 10× and compare
    // the edge-aware fidelity estimates of noise-blind vs noise-aware
    // routing, for both the QAOA and QV workloads.
    use snailqc::core::fidelity::{estimate_fidelity_edges, ErrorModel};
    use snailqc::transpiler::RouterConfig;

    let mut graph = catalog::corral11_16();
    graph.scale_edge_error(0, 2, 10.0);
    let model = ErrorModel::default();

    // Routing is a seeded heuristic; these are fixed-seed regression points
    // (the improvement holds for most seeds, e.g. 8 of 11 for QV).
    for (workload, seed) in [(Workload::QaoaVanilla, 7), (Workload::QuantumVolume, 2)] {
        let circuit = workload.generate(12, seed);
        let run = |error_weight: f64| {
            transpile(
                &circuit,
                &graph,
                &TranspileOptions {
                    router: RouterConfig::noise_aware(error_weight),
                    ..TranspileOptions::default()
                },
            )
            .report
        };
        let blind = estimate_fidelity_edges(&run(0.0), &model);
        let aware = estimate_fidelity_edges(&run(1.0), &model);
        assert!(
            aware.total_fidelity > blind.total_fidelity,
            "{}: noise-aware {} must beat noise-blind {}",
            workload.label(),
            aware.total_fidelity,
            blind.total_fidelity
        );
    }
}

#[test]
fn basis_choice_does_not_change_routing() {
    // Basis translation happens after routing, so SWAP counts are identical
    // across bases for the same seed (Fig. 10 ordering).
    let circuit = Workload::Qft.generate(12, 3);
    let graph = catalog::tree_20();
    let mut counts = Vec::new();
    for basis in BasisGate::all() {
        let report = transpile(&circuit, &graph, &TranspileOptions::with_basis(basis)).report;
        counts.push(report.swap_count);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
}
