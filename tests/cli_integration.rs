//! End-to-end tests of the `snailqc` binary's noise-aware transpile path:
//! golden JSON output for a preset error model, and the degraded-edge
//! improvement scenario through a JSON error-model file.

use std::process::Command;

fn snailqc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_snailqc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("snailqc binary runs")
}

/// Structural JSON equality with a 1e-12 relative tolerance on numbers:
/// `powf` is lowered to the platform libm, whose last-ulp behaviour differs
/// between glibc/musl/macOS, so byte-exact float comparison would be flaky
/// across toolchains while any real routing drift changes integers anyway.
fn json_approx_eq(a: &serde_json::Value, b: &serde_json::Value, path: &str) {
    use serde_json::Value;
    match (a, b) {
        (Value::Object(xs), Value::Object(ys)) => {
            let keys = |entries: &[(String, Value)]| {
                entries.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
            };
            assert_eq!(keys(xs), keys(ys), "object keys differ at {path}");
            for ((k, x), (_, y)) in xs.iter().zip(ys) {
                json_approx_eq(x, y, &format!("{path}.{k}"));
            }
        }
        (Value::Array(xs), Value::Array(ys)) => {
            assert_eq!(xs.len(), ys.len(), "array length differs at {path}");
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                json_approx_eq(x, y, &format!("{path}[{i}]"));
            }
        }
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let tolerance = 1e-12 * x.abs().max(y.abs()).max(1.0);
                assert!((x - y).abs() <= tolerance, "{path}: {x} != {y}");
            }
            _ => assert_eq!(a, b, "value differs at {path}"),
        },
    }
}

#[test]
fn transpile_with_decoherence_preset_matches_golden_json() {
    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--error-model",
        "decoherence",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let got = serde_json::from_str(&stdout).expect("CLI emits valid JSON");
    let golden = serde_json::from_str(include_str!("data/qaoa12_decoherence.json"))
        .expect("golden file is valid JSON");
    // Any drift means the router or the output schema changed; regenerate
    // tests/data/qaoa12_decoherence.json if the change is intentional.
    json_approx_eq(&got, &golden, "$");
}

#[test]
fn degraded_edge_error_model_improves_estimated_infidelity() {
    // The acceptance scenario: one corral edge degraded 10× via a JSON error
    // model. The noise-aware router must beat the noise-blind router on
    // estimated infidelity, and the JSON must surface both estimates.
    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--error-model",
        "tests/data/corral_degraded.json",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    let json = serde_json::from_str(&stdout).expect("valid JSON output");
    let fidelity = json.get("fidelity").expect("fidelity block present");
    let blind = fidelity
        .get("noise_blind")
        .and_then(|f| f.get("total_fidelity"))
        .and_then(|v| v.as_f64())
        .expect("noise-blind estimate");
    let aware = fidelity
        .get("noise_aware")
        .and_then(|f| f.get("total_fidelity"))
        .and_then(|v| v.as_f64())
        .expect("noise-aware estimate");
    let improvement = fidelity
        .get("infidelity_improvement")
        .and_then(|v| v.as_f64())
        .expect("improvement ratio");
    assert!(
        aware > blind,
        "noise-aware routing must beat noise-blind on the degraded corral: \
         {aware} vs {blind}"
    );
    assert!(improvement > 1.0, "improvement = {improvement}");
}

#[test]
fn unknown_error_model_reports_the_preset_list() {
    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--error-model",
        "bogus",
    ]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("decoherence"), "stderr: {stderr}");
}
