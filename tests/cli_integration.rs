//! End-to-end tests of the `snailqc` binary's noise-aware transpile path:
//! golden JSON output for a preset error model, and the degraded-edge
//! improvement scenario through a JSON error-model file.

use std::process::Command;

fn snailqc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_snailqc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("snailqc binary runs")
}

/// Structural JSON equality with a 1e-12 relative tolerance on numbers:
/// `powf` is lowered to the platform libm, whose last-ulp behaviour differs
/// between glibc/musl/macOS, so byte-exact float comparison would be flaky
/// across toolchains while any real routing drift changes integers anyway.
fn json_approx_eq(a: &serde_json::Value, b: &serde_json::Value, path: &str) {
    use serde_json::Value;
    match (a, b) {
        (Value::Object(xs), Value::Object(ys)) => {
            let keys = |entries: &[(String, Value)]| {
                entries.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
            };
            assert_eq!(keys(xs), keys(ys), "object keys differ at {path}");
            for ((k, x), (_, y)) in xs.iter().zip(ys) {
                json_approx_eq(x, y, &format!("{path}.{k}"));
            }
        }
        (Value::Array(xs), Value::Array(ys)) => {
            assert_eq!(xs.len(), ys.len(), "array length differs at {path}");
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                json_approx_eq(x, y, &format!("{path}[{i}]"));
            }
        }
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let tolerance = 1e-12 * x.abs().max(y.abs()).max(1.0);
                assert!((x - y).abs() <= tolerance, "{path}: {x} != {y}");
            }
            _ => assert_eq!(a, b, "value differs at {path}"),
        },
    }
}

#[test]
fn transpile_with_decoherence_preset_matches_golden_json() {
    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--error-model",
        "decoherence",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let got = serde_json::from_str(&stdout).expect("CLI emits valid JSON");
    let golden = serde_json::from_str(include_str!("data/qaoa12_decoherence.json"))
        .expect("golden file is valid JSON");
    // Any drift means the router or the output schema changed; regenerate
    // tests/data/qaoa12_decoherence.json if the change is intentional.
    json_approx_eq(&got, &golden, "$");
}

#[test]
fn degraded_edge_error_model_improves_estimated_infidelity() {
    // The acceptance scenario: one corral edge degraded 10× via a JSON error
    // model. The noise-aware router must beat the noise-blind router on
    // estimated infidelity, and the JSON must surface both estimates.
    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--error-model",
        "tests/data/corral_degraded.json",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    let json = serde_json::from_str(&stdout).expect("valid JSON output");
    let fidelity = json.get("fidelity").expect("fidelity block present");
    let blind = fidelity
        .get("noise_blind")
        .and_then(|f| f.get("total_fidelity"))
        .and_then(|v| v.as_f64())
        .expect("noise-blind estimate");
    let aware = fidelity
        .get("noise_aware")
        .and_then(|f| f.get("total_fidelity"))
        .and_then(|v| v.as_f64())
        .expect("noise-aware estimate");
    let improvement = fidelity
        .get("infidelity_improvement")
        .and_then(|v| v.as_f64())
        .expect("improvement ratio");
    assert!(
        aware > blind,
        "noise-aware routing must beat noise-blind on the degraded corral: \
         {aware} vs {blind}"
    );
    assert!(improvement > 1.0, "improvement = {improvement}");
}

#[test]
fn unknown_error_model_reports_the_preset_list() {
    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--error-model",
        "bogus",
    ]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("decoherence"), "stderr: {stderr}");
}

#[test]
fn flag_equals_value_form_matches_the_space_form() {
    // The PR-3 flag-parsing fix: `--flag=value` used to error as an unknown
    // flag; now both spellings must produce identical output.
    let spaced = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--basis",
        "sqrt-iswap",
        "--seed",
        "7",
        "--json",
    ]);
    let equals = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology=corral11-16",
        "--basis=sqrt-iswap",
        "--seed=7",
        "--json",
    ]);
    assert!(
        spaced.status.success() && equals.status.success(),
        "stderr: {} / {}",
        String::from_utf8_lossy(&spaced.stderr),
        String::from_utf8_lossy(&equals.stderr)
    );
    assert_eq!(spaced.stdout, equals.stdout);
}

#[test]
fn bool_flags_reject_inline_values_and_unknown_flags_still_error() {
    let with_value = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology=corral11-16",
        "--json=1",
    ]);
    assert!(!with_value.status.success());
    assert!(String::from_utf8_lossy(&with_value.stderr).contains("does not take a value"));

    let unknown = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology=corral11-16",
        "--bogus=3",
    ]);
    assert!(!unknown.status.success());
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("unknown option"));
}

#[test]
fn batch_mode_aggregates_a_directory_deterministically() {
    // `snailqc transpile <dir>`: every .qasm file routed in parallel with
    // deterministic per-file seeds, one aggregated JSON report.
    let dir = std::env::temp_dir().join(format!("snailqc-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, qubits) in [("ghz6", 6), ("ghz9", 9)] {
        let body: String = (1..qubits)
            .map(|q| format!("cx q[{}], q[{}];\n", q - 1, q))
            .collect();
        std::fs::write(
            dir.join(format!("{name}.qasm")),
            format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{qubits}];\nh q[0];\n{body}"),
        )
        .unwrap();
    }
    // A non-QASM file must be ignored, not break the batch.
    std::fs::write(dir.join("notes.txt"), "not a circuit").unwrap();

    let run = || {
        let output = snailqc(&[
            "transpile",
            dir.to_str().unwrap(),
            "--topology=tree-20",
            "--basis=sqrt-iswap",
            "--seed=5",
            "--json",
        ]);
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "batch output must be deterministic");

    let json = serde_json::from_str(&first).expect("valid aggregated JSON");
    let summary = json.get("summary").expect("summary block");
    assert_eq!(summary.get("files").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(summary.get("transpiled").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(summary.get("failed").and_then(|v| v.as_u64()), Some(0));
    let files = json.get("files").and_then(|v| v.as_array()).expect("files");
    assert_eq!(files.len(), 2);
    // Sorted by file name, each with its own derived seed and a report.
    assert_eq!(
        files[0].get("file").and_then(|v| v.as_str()),
        Some("ghz6.qasm")
    );
    assert_eq!(
        files[1].get("file").and_then(|v| v.as_str()),
        Some("ghz9.qasm")
    );
    let seeds: Vec<u64> = files
        .iter()
        .map(|f| f.get("seed").and_then(|v| v.as_u64()).expect("seed"))
        .collect();
    assert_ne!(seeds[0], seeds[1], "per-file seeds must differ");
    for f in files {
        assert!(f.get("report").map(|r| r.get("swap_count").is_some()) == Some(true));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_mode_surfaces_per_file_errors_without_aborting() {
    let dir = std::env::temp_dir().join(format!("snailqc-batch-err-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("good.qasm"),
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0];\ncx q[0], q[1];\n",
    )
    .unwrap();
    std::fs::write(dir.join("broken.qasm"), "OPENQASM 2.0;\nqreg q[").unwrap();

    let output = snailqc(&[
        "transpile",
        dir.to_str().unwrap(),
        "--topology=hypercube-16",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "a partial batch still succeeds: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let json =
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).expect("valid JSON");
    let summary = json.get("summary").unwrap();
    assert_eq!(summary.get("transpiled").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(summary.get("failed").and_then(|v| v.as_u64()), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}
