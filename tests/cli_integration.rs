//! End-to-end tests of the `snailqc` binary's noise-aware transpile path:
//! golden JSON output for a preset error model, the degraded-edge
//! improvement scenario through a JSON error-model file, and the
//! observability exports (`--trace-out` / `--metrics-json`).

use std::process::Command;

fn snailqc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_snailqc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("snailqc binary runs")
}

/// Structural JSON equality with a 1e-12 relative tolerance on numbers:
/// `powf` is lowered to the platform libm, whose last-ulp behaviour differs
/// between glibc/musl/macOS, so byte-exact float comparison would be flaky
/// across toolchains while any real routing drift changes integers anyway.
fn json_approx_eq(a: &serde_json::Value, b: &serde_json::Value, path: &str) {
    use serde_json::Value;
    match (a, b) {
        (Value::Object(xs), Value::Object(ys)) => {
            let keys = |entries: &[(String, Value)]| {
                entries.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
            };
            assert_eq!(keys(xs), keys(ys), "object keys differ at {path}");
            for ((k, x), (_, y)) in xs.iter().zip(ys) {
                json_approx_eq(x, y, &format!("{path}.{k}"));
            }
        }
        (Value::Array(xs), Value::Array(ys)) => {
            assert_eq!(xs.len(), ys.len(), "array length differs at {path}");
            for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
                json_approx_eq(x, y, &format!("{path}[{i}]"));
            }
        }
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let tolerance = 1e-12 * x.abs().max(y.abs()).max(1.0);
                assert!((x - y).abs() <= tolerance, "{path}: {x} != {y}");
            }
            _ => assert_eq!(a, b, "value differs at {path}"),
        },
    }
}

#[test]
fn transpile_with_decoherence_preset_matches_golden_json() {
    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--error-model",
        "decoherence",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let got = serde_json::from_str(&stdout).expect("CLI emits valid JSON");
    let golden = serde_json::from_str(include_str!("data/qaoa12_decoherence.json"))
        .expect("golden file is valid JSON");
    // Any drift means the router or the output schema changed; regenerate
    // tests/data/qaoa12_decoherence.json if the change is intentional.
    json_approx_eq(&got, &golden, "$");
}

#[test]
fn degraded_edge_error_model_improves_estimated_infidelity() {
    // The acceptance scenario: one corral edge degraded 10× via a JSON error
    // model. The noise-aware router must beat the noise-blind router on
    // estimated infidelity, and the JSON must surface both estimates.
    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--error-model",
        "tests/data/corral_degraded.json",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    let json = serde_json::from_str(&stdout).expect("valid JSON output");
    let fidelity = json.get("fidelity").expect("fidelity block present");
    let blind = fidelity
        .get("noise_blind")
        .and_then(|f| f.get("total_fidelity"))
        .and_then(|v| v.as_f64())
        .expect("noise-blind estimate");
    let aware = fidelity
        .get("noise_aware")
        .and_then(|f| f.get("total_fidelity"))
        .and_then(|v| v.as_f64())
        .expect("noise-aware estimate");
    let improvement = fidelity
        .get("infidelity_improvement")
        .and_then(|v| v.as_f64())
        .expect("improvement ratio");
    assert!(
        aware > blind,
        "noise-aware routing must beat noise-blind on the degraded corral: \
         {aware} vs {blind}"
    );
    assert!(improvement > 1.0, "improvement = {improvement}");
}

#[test]
fn unknown_error_model_reports_the_preset_list() {
    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--error-model",
        "bogus",
    ]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("decoherence"), "stderr: {stderr}");
}

#[test]
fn flag_equals_value_form_matches_the_space_form() {
    // The PR-3 flag-parsing fix: `--flag=value` used to error as an unknown
    // flag; now both spellings must produce identical output.
    let spaced = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "corral11-16",
        "--basis",
        "sqrt-iswap",
        "--seed",
        "7",
        "--json",
    ]);
    let equals = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology=corral11-16",
        "--basis=sqrt-iswap",
        "--seed=7",
        "--json",
    ]);
    assert!(
        spaced.status.success() && equals.status.success(),
        "stderr: {} / {}",
        String::from_utf8_lossy(&spaced.stderr),
        String::from_utf8_lossy(&equals.stderr)
    );
    assert_eq!(spaced.stdout, equals.stdout);
}

#[test]
fn bool_flags_reject_inline_values_and_unknown_flags_still_error() {
    let with_value = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology=corral11-16",
        "--json=1",
    ]);
    assert!(!with_value.status.success());
    assert!(String::from_utf8_lossy(&with_value.stderr).contains("does not take a value"));

    let unknown = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology=corral11-16",
        "--bogus=3",
    ]);
    assert!(!unknown.status.success());
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("unknown option"));
}

#[test]
fn batch_mode_aggregates_a_directory_deterministically() {
    // `snailqc transpile <dir>`: every .qasm file routed in parallel with
    // deterministic per-file seeds, one aggregated JSON report.
    let dir = std::env::temp_dir().join(format!("snailqc-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, qubits) in [("ghz6", 6), ("ghz9", 9)] {
        let body: String = (1..qubits)
            .map(|q| format!("cx q[{}], q[{}];\n", q - 1, q))
            .collect();
        std::fs::write(
            dir.join(format!("{name}.qasm")),
            format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{qubits}];\nh q[0];\n{body}"),
        )
        .unwrap();
    }
    // A non-QASM file must be ignored, not break the batch.
    std::fs::write(dir.join("notes.txt"), "not a circuit").unwrap();

    let run = || {
        let output = snailqc(&[
            "transpile",
            dir.to_str().unwrap(),
            "--topology=tree-20",
            "--basis=sqrt-iswap",
            "--seed=5",
            "--json",
        ]);
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "batch output must be deterministic");

    let json = serde_json::from_str(&first).expect("valid aggregated JSON");
    let summary = json.get("summary").expect("summary block");
    assert_eq!(summary.get("files").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(summary.get("transpiled").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(summary.get("failed").and_then(|v| v.as_u64()), Some(0));
    let files = json.get("files").and_then(|v| v.as_array()).expect("files");
    assert_eq!(files.len(), 2);
    // Sorted by file name, each with its own derived seed and a report.
    assert_eq!(
        files[0].get("file").and_then(|v| v.as_str()),
        Some("ghz6.qasm")
    );
    assert_eq!(
        files[1].get("file").and_then(|v| v.as_str()),
        Some("ghz9.qasm")
    );
    let seeds: Vec<u64> = files
        .iter()
        .map(|f| f.get("seed").and_then(|v| v.as_u64()).expect("seed"))
        .collect();
    assert_ne!(seeds[0], seeds[1], "per-file seeds must differ");
    for f in files {
        assert!(f.get("report").map(|r| r.get("swap_count").is_some()) == Some(true));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transpile_auto_detects_the_qasm3_example_end_to_end() {
    // The acceptance scenario: `snailqc transpile examples/qaoa12_v3.qasm`
    // succeeds via header auto-detection, and produces the same report as
    // the equivalent v2 file.
    let run = |file: &str| {
        let output = snailqc(&[
            "transpile",
            file,
            "--topology=corral11-16",
            "--basis=sqrt-iswap",
            "--seed=7",
            "--json",
        ]);
        assert!(
            output.status.success(),
            "{file} stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).expect("valid JSON")
    };
    let v2 = run("examples/qaoa12.qasm");
    let v3 = run("examples/qaoa12_v3.qasm");
    assert_eq!(
        v2.get("report"),
        v3.get("report"),
        "both dialects of the same circuit must transpile identically"
    );
}

#[test]
fn parse_reports_the_detected_version() {
    let output = snailqc(&["parse", "examples/qaoa12_v3.qasm", "--json"]);
    assert!(output.status.success());
    let json: serde_json::Value =
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).unwrap();
    assert_eq!(json.get("version").and_then(|v| v.as_str()), Some("3.0"));
    assert_eq!(json.get("qubits").and_then(|v| v.as_u64()), Some(12));

    let output = snailqc(&["parse", "examples/qaoa12.qasm", "--json"]);
    let json: serde_json::Value =
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).unwrap();
    assert_eq!(json.get("version").and_then(|v| v.as_str()), Some("2.0"));
}

#[test]
fn emit_qasm3_and_convert_round_trip_byte_identically() {
    let dir = std::env::temp_dir().join(format!("snailqc-v3-pipe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_str().unwrap().to_string();

    // emit --qasm3 produces a v3 header + v3 declarations.
    let output = snailqc(&[
        "emit",
        "qft",
        "--qubits",
        "6",
        "--qasm3",
        "--measure-all",
        "-o",
        &p("qft6_v3.qasm"),
    ]);
    assert!(output.status.success());
    let text = std::fs::read_to_string(p("qft6_v3.qasm")).unwrap();
    assert!(text.starts_with("OPENQASM 3.0;"), "{text}");
    assert!(text.contains("qubit[6] q;"), "{text}");
    assert!(text.contains("c = measure q;"), "{text}");

    // v2 → v3 → v2 through `convert` is byte-identical (the CI smoke pipe).
    assert!(
        snailqc(&["emit", "qft", "--qubits", "6", "-o", &p("qft6.qasm")])
            .status
            .success()
    );
    assert!(snailqc(&[
        "convert",
        &p("qft6.qasm"),
        "--qasm3",
        "-o",
        &p("pipe_v3.qasm")
    ])
    .status
    .success());
    assert!(
        snailqc(&["convert", &p("pipe_v3.qasm"), "-o", &p("pipe_back.qasm")])
            .status
            .success()
    );
    assert_eq!(
        std::fs::read_to_string(p("qft6.qasm")).unwrap(),
        std::fs::read_to_string(p("pipe_back.qasm")).unwrap(),
        "v2 → v3 → v2 must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn convert_preserves_full_register_measurement_and_warns_on_partial() {
    let dir = std::env::temp_dir().join(format!("snailqc-convert-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| dir.join(name).to_str().unwrap().to_string();

    // A full-register measurement survives conversion in both directions.
    std::fs::write(
        p("bell.qasm"),
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
         h q[0];\ncx q[0],q[1];\nmeasure q -> c;\n",
    )
    .unwrap();
    let output = snailqc(&["convert", &p("bell.qasm"), "--qasm3"]);
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("bit[2] c;"), "{text}");
    assert!(text.contains("c = measure q;"), "{text}");
    let back = snailqc(&["convert", &p("bell.qasm")]);
    let text = String::from_utf8(back.stdout).unwrap();
    assert!(text.contains("measure q -> c;"), "{text}");

    // A partial measurement cannot be represented: dropped with a warning.
    std::fs::write(
        p("partial.qasm"),
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[1];\n\
         h q[0];\nmeasure q[0] -> c[0];\n",
    )
    .unwrap();
    let output = snailqc(&["convert", &p("partial.qasm"), "--qasm3"]);
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(!text.contains("measure"), "{text}");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("partial measurements"),
        "stderr must warn: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_mode_walks_recursively_over_mixed_dialects() {
    let dir = std::env::temp_dir().join(format!("snailqc-batch-mixed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("nested")).unwrap();
    // One v2 file at the top level, one v3 file in a subdirectory.
    std::fs::write(
        dir.join("bell_v2.qasm"),
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("nested/bell_v3.qasm"),
        "OPENQASM 3.0;\ninclude \"stdgates.inc\";\nqubit[2] q;\nh q[0];\nctrl @ x q[0],q[1];\n",
    )
    .unwrap();

    let output = snailqc(&[
        "transpile",
        dir.to_str().unwrap(),
        "--topology=tree-20",
        "--seed=5",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let json: serde_json::Value =
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).unwrap();
    let summary = json.get("summary").unwrap();
    assert_eq!(summary.get("files").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(summary.get("transpiled").and_then(|v| v.as_u64()), Some(2));
    let files = json.get("files").and_then(|v| v.as_array()).unwrap();
    let names: Vec<&str> = files
        .iter()
        .map(|f| f.get("file").and_then(|v| v.as_str()).unwrap())
        .collect();
    assert_eq!(names, vec!["bell_v2.qasm", "nested/bell_v3.qasm"]);
    // Identical circuits (the v3 `ctrl @ x` lowers to the same cx), so the
    // reports differ only through their per-file seeds.
    for f in files {
        let report = f.get("report").expect("report present");
        assert_eq!(
            report.get("input_two_qubit_gates").and_then(|v| v.as_u64()),
            Some(1)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_store_replays_cached_cells_on_the_second_run() {
    let dir = std::env::temp_dir().join(format!("snailqc-batch-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, qubits) in [("ghz5", 5), ("ghz8", 8)] {
        let body: String = (1..qubits)
            .map(|q| format!("cx q[{}], q[{}];\n", q - 1, q))
            .collect();
        std::fs::write(
            dir.join(format!("{name}.qasm")),
            format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{qubits}];\nh q[0];\n{body}"),
        )
        .unwrap();
    }
    let store = dir.join("cache.jsonl");

    let run = || {
        let output = snailqc(&[
            "transpile",
            dir.to_str().unwrap(),
            "--topology=tree-20",
            "--basis=sqrt-iswap",
            "--seed=5",
            &format!("--store={}", store.display()),
            "--json",
        ]);
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).expect("valid JSON")
    };
    let first = run();
    let second = run();

    let hits = |json: &serde_json::Value| {
        json.get("summary")
            .and_then(|s| s.get("cache_hits"))
            .and_then(|v| v.as_u64())
            .expect("cache_hits in summary")
    };
    // `cache.jsonl` itself is not a .qasm file, so the walk skips it; the
    // first run routes everything, the second replays every cell.
    assert_eq!(hits(&first), 0);
    assert_eq!(hits(&second), 2, "second run must replay both cells");
    let cached_flags = |json: &serde_json::Value| -> Vec<bool> {
        json.get("files")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .map(|f| f.get("cached") == Some(&serde_json::Value::Bool(true)))
            .collect()
    };
    assert_eq!(cached_flags(&first), vec![false, false]);
    assert_eq!(cached_flags(&second), vec![true, true]);
    // Replayed reports are identical to the originally-routed ones.
    let reports = |json: &serde_json::Value| -> Vec<(serde_json::Value, serde_json::Value)> {
        json.get("files")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .map(|f| {
                (
                    f.get("file").expect("file name").clone(),
                    f.get("report").expect("report").clone(),
                )
            })
            .collect()
    };
    assert_eq!(reports(&first), reports(&second));

    // Changing any pipeline knob — here the layout strategy — misses the
    // cache instead of replaying stale reports.
    let relayout = snailqc(&[
        "transpile",
        dir.to_str().unwrap(),
        "--topology=tree-20",
        "--basis=sqrt-iswap",
        "--seed=5",
        "--layout=trivial",
        &format!("--store={}", store.display()),
        "--json",
    ]);
    assert!(relayout.status.success());
    let relayout: serde_json::Value =
        serde_json::from_str(&String::from_utf8(relayout.stdout).unwrap()).unwrap();
    assert_eq!(hits(&relayout), 0, "a different layout must not replay");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_mode_surfaces_per_file_errors_without_aborting() {
    let dir = std::env::temp_dir().join(format!("snailqc-batch-err-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("good.qasm"),
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\nh q[0];\ncx q[0], q[1];\n",
    )
    .unwrap();
    std::fs::write(dir.join("broken.qasm"), "OPENQASM 2.0;\nqreg q[").unwrap();

    let output = snailqc(&[
        "transpile",
        dir.to_str().unwrap(),
        "--topology=hypercube-16",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "a partial batch still succeeds: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let json =
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).expect("valid JSON");
    let summary = json.get("summary").unwrap();
    assert_eq!(summary.get("transpiled").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(summary.get("failed").and_then(|v| v.as_u64()), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_mode_emit_dir_mirrors_routed_qasm_next_to_the_report() {
    // `snailqc transpile <dir> --emit-dir <out>`: every file's routed
    // circuit lands under <out> at its directory-relative path, parseable
    // and device-respecting, alongside the aggregated JSON report.
    let dir = std::env::temp_dir().join(format!("snailqc-batch-emit-{}", std::process::id()));
    let out = std::env::temp_dir().join(format!("snailqc-batch-emit-out-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(dir.join("sub")).unwrap();
    let circuit = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[6];\nh q[0];\ncx q[0], q[5];\ncx q[1], q[4];\n";
    std::fs::write(dir.join("top.qasm"), circuit).unwrap();
    std::fs::write(dir.join("sub").join("nested.qasm"), circuit).unwrap();

    let output = snailqc(&[
        "transpile",
        dir.to_str().unwrap(),
        "--topology=square-lattice-16",
        "--emit-dir",
        out.to_str().unwrap(),
        "--seed=9",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let json =
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).expect("valid JSON");
    let files = json.get("files").and_then(|v| v.as_array()).expect("files");
    assert_eq!(files.len(), 2);
    for f in files {
        let emitted = f
            .get("emitted")
            .and_then(|v| v.as_str())
            .expect("emitted path");
        assert!(std::path::Path::new(emitted).exists(), "{emitted} missing");
    }

    // The mirrored layout: top.qasm and sub/nested.qasm under <out>. (Their
    // contents may differ — per-file router seeds key on the relative path.)
    let top = std::fs::read_to_string(out.join("top.qasm")).expect("top.qasm emitted");
    std::fs::read_to_string(out.join("sub").join("nested.qasm")).expect("nested emitted");

    // Emitted QASM is parseable and every 2Q gate sits on a device edge.
    let program = snailqc::qasm::parse(&top).expect("emitted QASM parses");
    let graph = snailqc::topology::catalog::by_name("square-lattice-16").unwrap();
    for inst in program.circuit.instructions() {
        if inst.is_two_qubit() {
            assert!(
                graph.has_edge(inst.qubits[0], inst.qubits[1]),
                "emitted gate on non-adjacent qubits {:?}",
                inst.qubits
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn trace_out_and_metrics_json_capture_the_pipeline_run() {
    // `--trace-out` writes a Chrome trace-event JSON with the pipeline-stage
    // spans nested under `pipeline.run`, and `--metrics-json` a snapshot
    // whose counters include the router work and cache statistics.
    let dir = std::env::temp_dir().join(format!("snailqc-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.json");

    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology=corral11-16",
        "--basis=sqrt-iswap",
        &format!("--trace-out={}", trace_path.display()),
        &format!("--metrics-json={}", metrics_path.display()),
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // The transpile report itself is unchanged by the observability flags.
    let report: serde_json::Value =
        serde_json::from_str(&String::from_utf8(output.stdout).unwrap()).expect("valid JSON");
    assert!(report.get("report").is_some());

    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap())
            .expect("trace file is valid JSON");
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace must contain spans");
    let span_id = |event: &serde_json::Value, field: &str| {
        event
            .get("args")
            .and_then(|a| a.get(field))
            .and_then(|v| v.as_u64())
            .expect("span ids in args")
    };
    let by_name = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("span `{name}` missing from trace"))
    };
    let run = by_name("pipeline.run");
    for stage in [
        "pipeline.layout",
        "pipeline.routing",
        "pipeline.translation",
    ] {
        assert_eq!(
            span_id(by_name(stage), "parent"),
            span_id(run, "id"),
            "{stage} must nest under pipeline.run"
        );
    }
    by_name("router.trial");

    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap())
            .expect("metrics file is valid JSON");
    let counters = metrics.get("counters").expect("counters block");
    let counter = |name: &str| {
        counters
            .get(name)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("counter `{name}` missing"))
    };
    assert!(counter("router.trials_run") >= 4, "default 4 trials");
    assert!(counter("router.swap_candidates_scored") > 0);
    assert!(counter("routing_cache.misses") > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_mode_records_per_file_latency_histograms() {
    let dir = std::env::temp_dir().join(format!("snailqc-obs-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, qubits) in [("ghz4", 4), ("ghz7", 7)] {
        let body: String = (1..qubits)
            .map(|q| format!("cx q[{}], q[{}];\n", q - 1, q))
            .collect();
        std::fs::write(
            dir.join(format!("{name}.qasm")),
            format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{qubits}];\nh q[0];\n{body}"),
        )
        .unwrap();
    }
    let metrics_path = dir.join("metrics.json");
    let trace_path = dir.join("trace.json");

    let output = snailqc(&[
        "transpile",
        dir.to_str().unwrap(),
        "--topology=tree-20",
        "--seed=5",
        &format!("--trace-out={}", trace_path.display()),
        &format!("--metrics-json={}", metrics_path.display()),
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    let latency = metrics
        .get("histograms")
        .and_then(|h| h.get("batch.file_micros"))
        .expect("per-file latency histogram");
    assert_eq!(latency.get("count").and_then(|v| v.as_u64()), Some(2));
    assert!(latency.get("p99").and_then(|v| v.as_u64()).is_some());

    // One `batch.file` span per input, annotated with the file name.
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    let file_spans: Vec<&serde_json::Value> = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("batch.file"))
        .collect();
    assert_eq!(file_spans.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Device specs: --device, devices list/show/validate, device-gen
// ---------------------------------------------------------------------------

/// Extracts `routed_digest` from a successful `--json` transpile run.
fn routed_digest_of(args: &[&str]) -> String {
    let output = snailqc(args);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let value: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&output.stdout)).unwrap();
    value
        .get("routed_digest")
        .and_then(|v| v.as_str())
        .expect("routed_digest present")
        .to_string()
}

#[test]
fn device_flag_accepts_builtins_and_matches_topology_flag() {
    let via_topology = routed_digest_of(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "tree-20",
        "--json",
    ]);
    let via_device = routed_digest_of(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--device",
        "tree-20",
        "--json",
    ]);
    assert_eq!(via_topology, via_device);

    let both = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--device=tree-20",
        "--topology=tree-20",
    ]);
    assert!(!both.status.success());
    assert!(
        String::from_utf8_lossy(&both.stderr).contains("mutually exclusive"),
        "{}",
        String::from_utf8_lossy(&both.stderr)
    );
}

#[test]
fn device_file_inherits_the_spec_basis_and_transpiles() {
    let output = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--device",
        "devices/ibm_heavy_hex_127.json",
        "--json",
    ]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let value: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&output.stdout)).unwrap();
    assert_eq!(
        value.get("topology").and_then(|v| v.as_str()),
        Some("IBM Heavy-Hex 127")
    );
    // The spec pins cnot; with no --basis flag the device keeps it.
    assert_eq!(value.get("basis").and_then(|v| v.as_str()), Some("CX"));
    assert!(value.get("basis_digest").and_then(|v| v.as_str()).is_some());

    // `--basis none` strips the spec's basis again.
    let stripped = snailqc(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--device",
        "devices/ibm_heavy_hex_127.json",
        "--basis",
        "none",
        "--json",
    ]);
    assert!(stripped.status.success());
    let value: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&stripped.stdout)).unwrap();
    assert!(matches!(value.get("basis"), Some(serde_json::Value::Null)));
}

#[test]
fn device_gen_spec_feeds_back_with_identical_routed_digest() {
    let dir = std::env::temp_dir().join(format!("snailqc-device-gen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("tree20.json");
    let generated = snailqc(&[
        "device-gen",
        "tree",
        "--levels",
        "1",
        "-o",
        spec.to_str().unwrap(),
    ]);
    assert!(
        generated.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&generated.stderr)
    );
    // A generated spec mirroring the built-in tree-20 routes identically.
    let builtin = routed_digest_of(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--topology",
        "tree-20",
        "--json",
    ]);
    let from_spec = routed_digest_of(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--device",
        spec.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(builtin, from_spec);

    // --expand emits an explicit edge list that still routes identically.
    let expanded = dir.join("tree20_expanded.json");
    let output = snailqc(&[
        "device-gen",
        "tree",
        "--levels",
        "1",
        "--expand",
        "-o",
        expanded.to_str().unwrap(),
    ]);
    assert!(output.status.success());
    let text = std::fs::read_to_string(&expanded).unwrap();
    assert!(text.contains("\"edges\""), "{text}");
    let from_expanded = routed_digest_of(&[
        "transpile",
        "examples/qaoa12.qasm",
        "--device",
        expanded.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(builtin, from_expanded);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn devices_list_merges_builtins_and_spec_files() {
    let output = snailqc(&["devices", "--json"]);
    assert!(output.status.success());
    let rows: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&output.stdout)).unwrap();
    let rows = rows.as_array().unwrap();
    let source_of = |name: &str| {
        rows.iter()
            .find(|r| r.get("name").and_then(|v| v.as_str()) == Some(name))
            .and_then(|r| r.get("source"))
            .and_then(|v| v.as_str())
            .map(str::to_string)
    };
    assert_eq!(source_of("tree-20").as_deref(), Some("builtin"));
    assert_eq!(
        source_of("ibm_heavy_hex_127").as_deref(),
        Some("devices/ibm_heavy_hex_127.json")
    );

    // `topologies` stays as an alias with identical output.
    let alias = snailqc(&["topologies", "--json"]);
    assert!(alias.status.success());
    assert_eq!(output.stdout, alias.stdout);
}

#[test]
fn devices_validate_passes_shipped_and_fails_broken_specs() {
    let good = snailqc(&["devices", "validate", "devices/"]);
    assert!(
        good.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&good.stdout)
    );

    let dir = std::env::temp_dir().join(format!("snailqc-validate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("broken.json"),
        r#"{"snailqc_device": 1, "name": "b", "topology": {"generator": "moebius", "params": {"qubits": 4}}}"#,
    )
    .unwrap();
    let bad = snailqc(&["devices", "validate", dir.to_str().unwrap()]);
    assert!(!bad.status.success());
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("unknown generator `moebius`"), "{stdout}");
    assert!(stdout.contains("line 1, column"), "spans surface: {stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn emit_sizes_workload_from_the_device() {
    let output = snailqc(&["emit", "ghz", "--device", "devices/ion_trap_32.json"]);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let qasm = String::from_utf8_lossy(&output.stdout);
    assert!(qasm.contains("qreg q[32];"), "{qasm}");
}
