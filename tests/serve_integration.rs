//! End-to-end tests of the `snailqc serve` daemon: the wire protocol over
//! real sockets, digest parity with the one-shot CLI, cache behaviour
//! visible through the `stats` RPC, graceful drain, and the shared store
//! surviving daemon restarts.

use serde::Value;
use snailqc::serve::protocol::{object, Client};
use snailqc::serve::{Bind, BoundAddr, ServeConfig, Server};
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "snailqc-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_tcp(store: Option<PathBuf>) -> (Server, String) {
    let server = Server::spawn(ServeConfig {
        bind: Bind::Tcp("127.0.0.1:0".into()),
        workers: 2,
        queue_capacity: 16,
        store,
    })
    .expect("server spawns");
    let addr = match server.addr() {
        BoundAddr::Tcp(addr) => addr.to_string(),
        #[allow(unreachable_patterns)]
        _ => unreachable!("tcp bind"),
    };
    (server, addr)
}

fn qaoa12_source() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/qaoa12.qasm");
    std::fs::read_to_string(path).expect("example circuit exists")
}

fn transpile_params(source: &str) -> Value {
    object(vec![
        ("source", Value::String(source.to_string())),
        ("topology", Value::String("corral11-16".to_string())),
    ])
}

fn str_field<'a>(value: &'a Value, name: &str) -> &'a str {
    value
        .get(name)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("response field `{name}` missing in {value:?}"))
}

#[test]
fn serve_matches_one_shot_cli_and_surfaces_cache_hits_in_stats() {
    let dir = temp_dir("parity");
    let store_path = dir.join("store.jsonl");
    let (server, addr) = spawn_tcp(Some(store_path.clone()));
    let source = qaoa12_source();

    // The reproducibility contract: the daemon's routed digest for the
    // default configuration must be bitwise-identical to what the one-shot
    // CLI reports for the same file and flags.
    let cli = Command::new(env!("CARGO_BIN_EXE_snailqc"))
        .args([
            "transpile",
            "examples/qaoa12.qasm",
            "--topology",
            "corral11-16",
            "--json",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("one-shot CLI runs");
    assert!(
        cli.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let cli_json = serde_json::from_str(&String::from_utf8(cli.stdout).unwrap())
        .expect("CLI emits valid JSON");
    let cli_digest = str_field(&cli_json, "routed_digest").to_string();

    let mut client = Client::connect_tcp(&addr).expect("client connects");
    let ping = client.call("ping", object(vec![])).expect("ping works");
    assert_eq!(ping.get("ok"), Some(&Value::Bool(true)));

    let first = client
        .call("transpile", transpile_params(&source))
        .expect("first transpile");
    assert_eq!(str_field(&first, "routed_digest"), cli_digest);
    assert_eq!(str_field(&first, "cached"), "none");
    assert!(first
        .get("report")
        .and_then(|r| r.get("swap_count"))
        .is_some());

    // Parallel clients, same request: every response must carry the same
    // digest regardless of which worker served it.
    let digests: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let source = source.clone();
                scope.spawn(move || {
                    let mut client = Client::connect_tcp(&addr).expect("client connects");
                    let response = client
                        .call("transpile", transpile_params(&source))
                        .expect("parallel transpile");
                    str_field(&response, "routed_digest").to_string()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for digest in &digests {
        assert_eq!(digest, &cli_digest, "digest drifted under concurrency");
    }

    // The repeats were cache hits, visible through `stats`: the shared
    // store was probed and hit, and the memory cache replayed the digest.
    let second = client
        .call("transpile", transpile_params(&source))
        .expect("repeat transpile");
    assert_eq!(str_field(&second, "cached"), "memory");
    assert_eq!(str_field(&second, "routed_digest"), cli_digest);

    let stats = client.call("stats", object(vec![])).expect("stats RPC");
    let cache = stats.get("cache").expect("stats.cache");
    let count = |v: Option<&Value>| v.and_then(Value::as_u64).unwrap_or(0);
    assert!(count(cache.get("memory_hits")) >= 5, "stats: {stats:?}");
    let store_stats = cache.get("store").expect("stats.cache.store");
    assert!(count(store_stats.get("hits")) >= 5, "stats: {stats:?}");
    assert_eq!(count(store_stats.get("entries")), 1, "stats: {stats:?}");
    for field in ["p50", "p90", "p99", "count", "mean", "max"] {
        assert!(
            stats
                .get("latency_micros")
                .and_then(|l| l.get(field))
                .is_some(),
            "latency_micros.{field} missing: {stats:?}"
        );
    }
    assert!(
        count(stats.get("requests").and_then(|r| r.get("completed"))) >= 6,
        "stats: {stats:?}"
    );
    assert!(count(stats.get("devices_warm")) >= 1);

    // Malformed frames and unknown methods get structured errors, not a
    // dropped connection.
    let failure = client
        .call("no_such_method", object(vec![]))
        .expect_err("unknown method is an error");
    assert_eq!(failure.code, "bad_request");
    let failure = client
        .call(
            "transpile",
            object(vec![("topology", Value::String("corral11-16".into()))]),
        )
        .expect_err("missing source is an error");
    assert_eq!(failure.code, "bad_request");

    // Graceful drain via the shutdown RPC: the response still arrives, the
    // server winds down, and the store file holds the persisted cell.
    let drain = client
        .call("shutdown", object(vec![]))
        .expect("shutdown RPC");
    assert_eq!(drain.get("draining"), Some(&Value::Bool(true)));
    server.join().expect("drain completes");
    let persisted = snailqc::core::store::SweepStore::open(&store_path);
    assert_eq!(persisted.len(), 1, "store persisted across the drain");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warm_store_is_replayed_by_a_restarted_daemon() {
    let dir = temp_dir("restart");
    let store_path = dir.join("store.jsonl");
    let source = qaoa12_source();

    let (server, addr) = spawn_tcp(Some(store_path.clone()));
    let mut client = Client::connect_tcp(&addr).expect("client connects");
    let first = client
        .call("transpile", transpile_params(&source))
        .expect("cold transpile");
    assert_eq!(str_field(&first, "cached"), "none");
    let swaps = first
        .get("report")
        .and_then(|r| r.get("swap_count"))
        .and_then(Value::as_u64)
        .expect("swap count");
    server.shutdown();
    server.join().expect("first daemon drains");

    // A fresh daemon has a cold memory cache but the shared store file: the
    // same request replays the persisted report without re-routing.
    let (server, addr) = spawn_tcp(Some(store_path));
    let mut client = Client::connect_tcp(&addr).expect("client reconnects");
    let replayed = client
        .call("transpile", transpile_params(&source))
        .expect("warm transpile");
    assert_eq!(str_field(&replayed, "cached"), "store");
    assert_eq!(
        replayed
            .get("report")
            .and_then(|r| r.get("swap_count"))
            .and_then(Value::as_u64),
        Some(swaps),
        "replayed report must match the original"
    );
    server.shutdown();
    server.join().expect("second daemon drains");
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip_and_cleanup() {
    let dir = temp_dir("unix");
    let socket = dir.join("snailqc.sock");
    let server = Server::spawn(ServeConfig {
        bind: Bind::Unix(socket.clone()),
        workers: 1,
        queue_capacity: 4,
        store: None,
    })
    .expect("unix server spawns");
    let mut client = Client::connect_unix(&socket).expect("unix client connects");
    let ping = client.call("ping", object(vec![])).expect("ping over unix");
    assert_eq!(ping.get("ok"), Some(&Value::Bool(true)));
    let response = client
        .call("transpile", transpile_params(&qaoa12_source()))
        .expect("transpile over unix");
    assert!(!str_field(&response, "routed_digest").is_empty());
    server.shutdown();
    server.join().expect("unix drain");
    assert!(!socket.exists(), "socket file removed on drain");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn file_backed_devices_match_the_cli_and_are_never_served_stale() {
    let dir = temp_dir("device");
    let spec_path = dir.join("bench.json");
    std::fs::write(
        &spec_path,
        r#"{"snailqc_device": 1, "name": "bench", "topology": {"generator": "tree", "params": {"levels": 1}}}"#,
    )
    .unwrap();
    let source = qaoa12_source();
    let (server, addr) = spawn_tcp(None);
    let mut client = Client::connect_tcp(&addr).expect("client connects");

    let device_params = |path: &PathBuf| {
        object(vec![
            ("source", Value::String(source.clone())),
            ("device", Value::String(path.display().to_string())),
        ])
    };

    // Digest parity with the one-shot CLI for the same spec file.
    let cli = Command::new(env!("CARGO_BIN_EXE_snailqc"))
        .args([
            "transpile",
            "examples/qaoa12.qasm",
            "--device",
            spec_path.to_str().unwrap(),
            "--json",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("one-shot CLI runs");
    assert!(
        cli.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let cli_json: Value = serde_json::from_str(&String::from_utf8(cli.stdout).unwrap()).unwrap();
    let cli_digest = str_field(&cli_json, "routed_digest").to_string();

    let first = client
        .call("transpile", device_params(&spec_path))
        .expect("file-backed transpile");
    assert_eq!(str_field(&first, "routed_digest"), cli_digest);
    assert_eq!(str_field(&first, "cached"), "none");
    let repeat = client
        .call("transpile", device_params(&spec_path))
        .expect("repeat transpile");
    assert_eq!(str_field(&repeat, "cached"), "memory");
    assert_eq!(str_field(&repeat, "routed_digest"), cli_digest);

    // Editing the spec between requests must change the answer: the daemon
    // re-reads the file and keys its warm pool and caches by content, so the
    // stale tree-shaped result cannot replay for the new ring topology.
    std::fs::write(
        &spec_path,
        r#"{"snailqc_device": 1, "name": "bench", "topology": {"generator": "ring", "params": {"qubits": 20}}}"#,
    )
    .unwrap();
    let edited = client
        .call("transpile", device_params(&spec_path))
        .expect("transpile after edit");
    assert_eq!(str_field(&edited, "cached"), "none", "stale cache replay");
    assert_ne!(
        str_field(&edited, "routed_digest"),
        cli_digest,
        "edited spec must route differently"
    );

    // A spec passed inline as a JSON object behaves like the file contents.
    let inline = client
        .call(
            "transpile",
            object(vec![
                ("source", Value::String(source.clone())),
                (
                    "device",
                    serde_json::from_str(&std::fs::read_to_string(&spec_path).unwrap()).unwrap(),
                ),
            ]),
        )
        .expect("inline spec transpile");
    assert_eq!(
        str_field(&inline, "routed_digest"),
        str_field(&edited, "routed_digest"),
        "inline spec must match the file it mirrors"
    );

    // `device` and `topology` together is a structured error.
    let conflict = client
        .call(
            "transpile",
            object(vec![
                ("source", Value::String(source.clone())),
                ("device", Value::String(spec_path.display().to_string())),
                ("topology", Value::String("tree-20".into())),
            ]),
        )
        .expect_err("conflicting params are rejected");
    assert_eq!(conflict.code, "bad_request");

    server.shutdown();
    server.join().expect("drain completes");
    std::fs::remove_dir_all(&dir).ok();
}
