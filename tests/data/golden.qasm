// Golden test program: a hand-written OpenQASM 2.0 file exercising
// user-defined gates, gate-definition expansion, register broadcasting,
// parameter expressions, barriers and measurement.
OPENQASM 2.0;
include "qelib1.inc";

gate majority a,b,c {
  cx c,b;
  cx c,a;
  ccx a,b,c;
}

gate phase_kick(theta) a,b {
  h b;
  cu1(theta/2) a,b;
  h b;
}

qreg q[4];
creg c[4];

x q[0];
x q[2];
h q;
barrier q;
phase_kick(pi/4) q[0],q[1];
majority q[1],q[2],q[3];
rz(-pi/2) q[3];
cx q[2],q[3];
measure q -> c;
