//! PR-3 API-redesign equivalence suite, exercised through the façade crate:
//!
//! * the option-driven `Pipeline::from_options` path is bitwise-identical
//!   to the `Device`-driven path on every catalog topology (frozen-baseline
//!   regression, formerly pinned against the since-removed `transpile()`
//!   shim);
//! * `Device::from_machine` round-trips with `Machine`;
//! * the sweep store replays cells bitwise.

use snailqc::prelude::*;
use snailqc::topology::catalog;

fn same_instructions(a: &Circuit, b: &Circuit) -> bool {
    a.len() == b.len()
        && a.instructions()
            .iter()
            .zip(b.instructions())
            .all(|(x, y)| x.gate == y.gate && x.qubits == y.qubits)
}

#[test]
fn device_pipeline_matches_the_options_pipeline_on_every_catalog_topology() {
    // Acceptance criterion: for any (graph, options) the Device-driven
    // Pipeline output is bitwise-identical to the plain option-driven run
    // across all 16 catalog topologies — the two ways consumers reach the
    // same staged flow.
    let names = catalog::names();
    assert_eq!(names.len(), 16);
    let circuit = Workload::Qft.generate(12, 7);
    for name in names {
        let graph = catalog::by_name(name).unwrap();
        for basis in [None, Some(BasisGate::SqrtISwap)] {
            let options = TranspileOptions {
                basis,
                ..TranspileOptions::default()
            }
            .with_seed(19);
            let from_options = Pipeline::from_options(&options).run(&circuit, &graph);

            let mut device = Device::from_catalog(name).unwrap();
            if let Some(basis) = basis {
                device = device.with_basis(basis);
            }
            let staged = device.transpile(&circuit, &Pipeline::builder().seed(19).build());

            assert_eq!(
                from_options.report, staged.report,
                "{name} basis {basis:?}: report drifted"
            );
            assert!(
                same_instructions(&from_options.routed.circuit, &staged.routed.circuit),
                "{name} basis {basis:?}: routed circuit drifted"
            );
        }
    }
}

#[test]
fn device_round_trips_with_machine_for_both_lineups() {
    for machine in Machine::figure13_lineup()
        .into_iter()
        .chain(Machine::figure14_lineup())
    {
        let device = Device::from_machine(machine);
        assert_eq!(device.machine(), Some(machine));
        assert_eq!(device.basis(), Some(machine.basis));
        assert_eq!(device.label(), machine.label());
        assert_eq!(device.graph(), &machine.graph());
        // And back: the recorded machine rebuilds the identical device.
        let rebuilt = Device::from_machine(device.machine().unwrap());
        assert_eq!(rebuilt, device);
    }
}

#[test]
fn sweep_store_replays_cells_bitwise_through_the_facade() {
    let path = std::env::temp_dir().join(format!(
        "snailqc-api-redesign-store-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let devices = vec![
        Device::from_catalog("corral11-16").unwrap(),
        Device::from_machine(Machine::ibm_baseline(SizeClass::Small)),
    ];
    let config = SweepConfig::smoke();

    let mut store = SweepStore::open(&path);
    let first = run_sweep_with_store(&devices, &config, Some(&mut store));
    let mut store = SweepStore::open(&path);
    let second = run_sweep_with_store(&devices, &config, Some(&mut store));
    assert_eq!(store.hits(), first.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.basis, b.basis);
        assert_eq!(a.report, b.report);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn pass_trace_orders_stages_and_reconciles_with_the_report() {
    let circuit = Workload::QuantumVolume.generate(10, 5);
    let device = Device::from_catalog("tree-20")
        .unwrap()
        .with_basis(BasisGate::SqrtISwap);
    let result = device.transpile(&circuit, &Pipeline::default());
    let names: Vec<&str> = result.trace.stages.iter().map(|s| s.stage).collect();
    assert_eq!(names, ["layout", "routing", "translation", "analysis"]);
    assert_eq!(result.trace.swaps_inserted(), result.report.swap_count);
    assert_eq!(
        result.trace.stage("translation").unwrap().two_qubit_out,
        result.report.basis_gate_count
    );
}
