//! QASM interchange round-trip guarantees, exercised end to end through the
//! façade crate:
//!
//! * `parse(emit(c))` preserves the exact gate sequence for random circuits
//!   over the full representable alphabet (including lossless `unitary2`
//!   matrix encoding);
//! * emitted programs are statevector-equivalent to their sources for
//!   simulable sizes (≤ 10 qubits), including `Unitary1` → `u3` rewrites;
//! * every built-in workload generator exports QASM that reproduces its
//!   circuit;
//! * a hand-written golden file parses to the expected program.

use proptest::prelude::*;
use snailqc::circuit::{simulate, Circuit, Gate};
use snailqc::math::gates;
use snailqc::prelude::*;
use snailqc::qasm;

/// Random circuits over every gate kind the emitter round-trips exactly.
fn arb_circuit(max_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (
        2..=max_qubits,
        proptest::collection::vec(
            (0..24u8, 0..1000u32, 0..1000u32, 0.0..std::f64::consts::TAU),
            1..max_gates,
        ),
    )
        .prop_map(|(n, ops)| {
            let mut c = Circuit::new(n);
            for (kind, a, b, angle) in ops {
                let q0 = a as usize % n;
                let mut q1 = b as usize % n;
                if q1 == q0 {
                    q1 = (q0 + 1) % n;
                }
                match kind {
                    0 => c.push(Gate::I, &[q0]),
                    1 => c.x(q0),
                    2 => c.push(Gate::Y, &[q0]),
                    3 => c.push(Gate::Z, &[q0]),
                    4 => c.h(q0),
                    5 => c.push(Gate::S, &[q0]),
                    6 => c.push(Gate::Sdg, &[q0]),
                    7 => c.push(Gate::T, &[q0]),
                    8 => c.push(Gate::SX, &[q0]),
                    9 => c.rx(angle, q0),
                    10 => c.push(Gate::RY(angle), &[q0]),
                    11 => c.rz(angle, q0),
                    12 => c.push(Gate::P(angle), &[q0]),
                    13 => c.push(Gate::U3(angle, angle / 2.0, -angle), &[q0]),
                    14 => c.cx(q0, q1),
                    15 => c.push(Gate::CZ, &[q0, q1]),
                    16 => c.cp(angle, q0, q1),
                    17 => c.swap(q0, q1),
                    18 => c.push(Gate::ISwap, &[q0, q1]),
                    19 => c.push(Gate::SqrtISwap, &[q0, q1]),
                    20 => c.push(Gate::Syc, &[q0, q1]),
                    21 => c.push(Gate::Fsim(angle, angle / 3.0), &[q0, q1]),
                    22 => c.rzz(angle, q0, q1),
                    23 => c.push(
                        Gate::Unitary2(gates::fsim(angle, 0.4) * gates::rzz(angle / 2.0)),
                        &[q0, q1],
                    ),
                    _ => unreachable!(),
                }
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emit_parse_preserves_gate_sequences(c in arb_circuit(8, 60)) {
        let text = qasm::emit(&c);
        let back = qasm::parse_circuit(&text).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn emit_parse_is_statevector_equivalent(c in arb_circuit(6, 30)) {
        let back = qasm::parse_circuit(&qasm::emit(&c)).unwrap();
        let fidelity = simulate(&c).fidelity(&simulate(&back));
        prop_assert!((fidelity - 1.0).abs() < 1e-9, "fidelity = {}", fidelity);
    }

    #[test]
    fn transpiled_circuits_export_and_reimport(c in arb_circuit(6, 25)) {
        // Route + translate onto a catalog device, emit the result, re-parse
        // it, and check the physical circuit survives the trip intact.
        let device = Device::from_catalog("corral11-16")
            .unwrap()
            .with_basis(BasisGate::SqrtISwap);
        let result = device.transpile(&c, &Pipeline::builder().seed(5).build());
        let translated = result.translated.as_ref().unwrap();
        let back = qasm::parse_circuit(&qasm::emit(translated)).unwrap();
        prop_assert_eq!(&back, translated);
    }
}

#[test]
fn unitary1_exports_as_equivalent_u3() {
    let mut c = Circuit::new(3);
    c.push(
        Gate::Unitary1(gates::h() * gates::t() * gates::rx(0.7)),
        &[0],
    );
    c.cx(0, 1);
    c.push(Gate::Unitary1(gates::sdg() * gates::ry(1.1)), &[2]);
    let back = qasm::parse_circuit(&qasm::emit(&c)).unwrap();
    assert_eq!(back.len(), c.len());
    assert_eq!(back.gate_counts()["u3"], 2);
    let fidelity = simulate(&c).fidelity(&simulate(&back));
    assert!((fidelity - 1.0).abs() < 1e-9, "fidelity = {fidelity}");
}

#[test]
fn every_workload_round_trips_through_qasm() {
    for workload in Workload::all() {
        for size in [4, 7, 10] {
            let direct = workload.generate(size, 11);
            let text = workload.emit_qasm(size, 11);
            let parsed =
                qasm::parse(&text).unwrap_or_else(|e| panic!("{} @ {size}: {e}", workload.label()));
            assert_eq!(parsed.circuit, direct, "{} @ {size}", workload.label());
            let fidelity = simulate(&direct).fidelity(&simulate(&parsed.circuit));
            assert!(
                (fidelity - 1.0).abs() < 1e-9,
                "{} @ {size}: fidelity = {fidelity}",
                workload.label()
            );
        }
    }
}

#[test]
fn every_workload_is_statevector_equivalent_across_dialects() {
    // The acceptance criterion: every catalog workload emits valid QASM3
    // that parses back to a circuit statevector-equivalent to its QASM2
    // form.
    for workload in Workload::all() {
        for size in [4, 7, 10] {
            let from_v2 = qasm::parse_circuit(&workload.emit_qasm(size, 11))
                .unwrap_or_else(|e| panic!("{} @ {size} (v2): {e}", workload.label()));
            let from_v3 = qasm::parse3_circuit(&workload.emit_qasm_v3(size, 11))
                .unwrap_or_else(|e| panic!("{} @ {size} (v3): {e}", workload.label()));
            assert_eq!(from_v2, from_v3, "{} @ {size}", workload.label());
            let fidelity = simulate(&from_v2).fidelity(&simulate(&from_v3));
            assert!(
                (fidelity - 1.0).abs() < 1e-9,
                "{} @ {size}: fidelity = {fidelity}",
                workload.label()
            );
        }
    }
}

#[test]
fn reimported_circuits_route_and_verify_across_dialects() {
    // The verification engine closes the interchange loop: a circuit that
    // goes out as QASM (either dialect), comes back in, and is routed onto
    // a catalog device must still be provably equivalent to the original
    // generator output. GHZ exercises the stabilizer engine, QFT the dense
    // engine (16 physical qubits is exactly the dense ceiling).
    use snailqc::topology::catalog;
    use snailqc::transpiler::route;
    let graph = catalog::by_name("square-lattice-16").unwrap();
    for version in [QasmVersion::V2, QasmVersion::V3] {
        for (workload, size) in [(Workload::Ghz, 12), (Workload::Qft, 8)] {
            let direct = workload.generate(size, 11);
            let text = workload.emit_qasm_versioned(size, 11, version);
            let reimported = qasm::parse_any(&text).unwrap().circuit;
            let layout = LayoutStrategy::Dense.compute(&reimported, &graph);
            let routed = route(
                &reimported,
                &graph,
                &layout,
                &RouterConfig::deterministic(11),
            );
            let verdict = verify_equivalent(&direct, &routed);
            assert!(
                verdict.is_equivalent(),
                "{} ({version}): {verdict}",
                workload.label()
            );
        }
    }
}

#[test]
fn large_clifford_interchange_is_stabilizer_verified() {
    // Interchange at a scale no dense simulator reaches: a 60-qubit random
    // Clifford circuit survives emit → parse (both dialects) → routing onto
    // a 64-qubit grid, with the stabilizer engine proving exact equivalence.
    use snailqc::topology::builders;
    use snailqc::transpiler::route;
    let direct = snailqc::workloads::random_clifford_circuit(60, 300, 19);
    let graph = builders::square_lattice(8, 8);
    for version in [QasmVersion::V2, QasmVersion::V3] {
        let text = emit_qasm_versioned(&direct, version);
        let reimported = qasm::parse_any(&text).unwrap().circuit;
        assert_eq!(reimported, direct, "{version}: interchange drifted");
        let layout = LayoutStrategy::Dense.compute(&reimported, &graph);
        let routed = route(
            &reimported,
            &graph,
            &layout,
            &RouterConfig::deterministic(19),
        );
        let verdict = verify_equivalent(&direct, &routed);
        assert!(verdict.is_equivalent(), "{version}: {verdict}");
    }
}

/// Per-workload QASM3 golden files: emission is byte-stable, and every
/// golden re-parses to the generator's circuit. Regenerate with
/// `snailqc emit <w> --qubits 6 --seed 7 --qasm3 -o tests/data/<w>_6_v3.qasm`
/// if the emitter format changes intentionally.
#[test]
fn v3_golden_files_match_emission_and_reparse() {
    let goldens: [(Workload, &str); 6] = [
        (
            Workload::QuantumVolume,
            include_str!("data/quantum_volume_6_v3.qasm"),
        ),
        (Workload::Qft, include_str!("data/qft_6_v3.qasm")),
        (
            Workload::QaoaVanilla,
            include_str!("data/qaoa_vanilla_6_v3.qasm"),
        ),
        (
            Workload::TimHamiltonian,
            include_str!("data/tim_hamiltonian_6_v3.qasm"),
        ),
        (Workload::Adder, include_str!("data/adder_6_v3.qasm")),
        (Workload::Ghz, include_str!("data/ghz_6_v3.qasm")),
    ];
    for (workload, golden) in goldens {
        let emitted = workload.emit_qasm_v3(6, 7);
        assert_eq!(
            emitted,
            golden,
            "{} drifted from its golden",
            workload.label()
        );
        let program =
            qasm::parse_any(golden).unwrap_or_else(|e| panic!("{} golden: {e}", workload.label()));
        assert_eq!(program.version, QasmVersion::V3, "{}", workload.label());
        assert_eq!(
            program.circuit,
            workload.generate(6, 7),
            "{}",
            workload.label()
        );
    }
}

#[test]
fn qaoa12_v3_example_matches_its_v2_source() {
    let v2 = qasm::parse_any(include_str!("../examples/qaoa12.qasm")).unwrap();
    let v3 = qasm::parse_any(include_str!("../examples/qaoa12_v3.qasm")).unwrap();
    assert_eq!(v2.version, QasmVersion::V2);
    assert_eq!(v3.version, QasmVersion::V3);
    assert_eq!(v2.circuit, v3.circuit);
}

#[test]
fn malformed_v3_reports_span_carrying_errors_through_the_facade() {
    // Zero-width register.
    let err =
        qasm::parse_any("OPENQASM 3.0;\ninclude \"stdgates.inc\";\nqubit[0] q;\n").unwrap_err();
    assert!(err.message.contains("at least one qubit"), "{err}");
    assert!(err.line >= 3, "span must point into the body: {err}");

    // Unterminated modifier chain.
    let err = qasm::parse_any("OPENQASM 3;\nqubit[2] q;\nctrl @\n").unwrap_err();
    assert!(err.message.contains("unterminated modifier chain"), "{err}");

    // v3 syntax under a v2 header.
    let err = qasm::parse_any("OPENQASM 2.0;\nqubit[2] q;\n").unwrap_err();
    assert!(err.message.contains("OpenQASM 3 syntax"), "{err}");
    assert_eq!((err.line, err.col), (2, 1));
}

#[test]
fn golden_file_parses_to_the_expected_program() {
    let source = include_str!("data/golden.qasm");
    let program = qasm::parse(source).expect("golden file must parse");
    assert_eq!(program.qregs, vec![("q".to_string(), 4)]);
    assert_eq!(program.cregs, vec![("c".to_string(), 4)]);
    assert_eq!(program.measurements, 4);
    assert_eq!(program.barriers, 1);

    let c = &program.circuit;
    // x,x + broadcast h(4) + phase_kick(3) + majority(2 + 15-gate ccx) + rz + cx.
    assert_eq!(c.len(), 28);
    assert_eq!(c.two_qubit_count(), 10);
    assert_eq!(c.gate_counts()["h"], 4 + 2 + 2);
    assert_eq!(c.gate_counts()["cx"], 2 + 6 + 1);
    assert_eq!(c.gate_counts()["cp"], 1);

    // The program is equivalent to building the same circuit by hand.
    let mut reference = Circuit::new(4);
    reference.x(0);
    reference.x(2);
    for q in 0..4 {
        reference.h(q);
    }
    let theta = std::f64::consts::PI / 4.0;
    reference.h(1);
    reference.cp(theta / 2.0, 0, 1);
    reference.h(1);
    // majority q[1],q[2],q[3] expands with q[3] as both control of the CNOTs
    // and target of the Toffoli.
    reference.cx(3, 2);
    reference.cx(3, 1);
    let ccx_body: [(&str, usize); 15] = [
        ("h", 3),
        ("cx", 23),
        ("tdg", 3),
        ("cx", 13),
        ("t", 3),
        ("cx", 23),
        ("tdg", 3),
        ("cx", 13),
        ("t", 2),
        ("t", 3),
        ("h", 3),
        ("cx", 12),
        ("t", 1),
        ("tdg", 2),
        ("cx", 12),
    ];
    for (name, qubits) in ccx_body {
        let (a, b) = (qubits / 10, qubits % 10);
        match name {
            "h" => reference.h(b),
            "t" => reference.push(Gate::T, &[b]),
            "tdg" => reference.push(Gate::Tdg, &[b]),
            "cx" => reference.cx(a, b),
            _ => unreachable!(),
        }
    }
    reference.rz(-std::f64::consts::PI / 2.0, 3);
    reference.cx(2, 3);
    assert_eq!(c, &reference);
}
