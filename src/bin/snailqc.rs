//! The `snailqc` command-line driver.
//!
//! Exposes the topology catalog, the workload generators and the full Fig. 10
//! transpilation pipeline (placement → routing → basis translation) over
//! OpenQASM 2.0 files, with optional machine-readable JSON output:
//!
//! ```text
//! snailqc transpile circuit.qasm --topology corral11-16 --basis sqrt-iswap --json
//! snailqc transpile circuit.qasm --topology corral11-16 --error-model calibrated --json
//! snailqc emit qaoa-vanilla --qubits 12 --seed 7 -o qaoa12.qasm
//! snailqc parse circuit.qasm
//! snailqc topologies --json
//! snailqc workloads
//! ```

use snailqc::core::fidelity::{
    estimate_fidelity, estimate_fidelity_edges, estimate_fidelity_routed, FidelityEstimate,
};
use snailqc::core::noise::ErrorModelSpec;
use snailqc::decompose::BasisGate;
use snailqc::prelude::*;
use snailqc::topology::catalog;
use snailqc::transpiler::TranspileReport;
use std::io::Read;
use std::process::ExitCode;

const USAGE: &str = "snailqc — SNAIL co-design transpilation toolkit (HPCA 2023 reproduction)

USAGE:
    snailqc <COMMAND> [OPTIONS]

COMMANDS:
    transpile <file.qasm>   Run the Fig. 10 pipeline on an OpenQASM 2.0 file
        --topology <name>   Target device from the catalog (required)
        --basis <gate>      cnot | syc | sqrt-iswap | none   [default: none]
        --layout <strategy> dense | trivial                  [default: dense]
        --trials <N>        Stochastic routing trials        [default: 4]
        --seed <N>          Router RNG seed                  [default: 11]
        --error-model <m>   default | control | decoherence | calibrated,
                            or a JSON file with per-edge rates; enables
                            noise-aware routing + fidelity estimates
        --error-weight <w>  Fidelity weight of the SWAP scoring
                            [default: 1 with --error-model, else 0]
        -o, --out <file>    Write the transpiled circuit as QASM
        --json              Print the TranspileReport as JSON

    emit <workload>         Export a built-in workload as OpenQASM 2.0
        --qubits <N>        Problem size in qubits (required)
        --seed <N>          Generator seed                   [default: 7]
        --measure-all       Append a full-register measurement
        -o, --out <file>    Write to a file instead of stdout

    parse <file.qasm>       Parse a file and print circuit statistics
        --json              Print the statistics as JSON

    topologies              List the topology catalog with Table 1/2 metrics
        --json              Print the catalog as JSON

    workloads               List the built-in workload generators

    help                    Show this message

Use `-` as <file.qasm> to read from stdin.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "transpile" => cmd_transpile(rest),
        "emit" => cmd_emit(rest),
        "parse" => cmd_parse(rest),
        "topologies" => cmd_topologies(rest),
        "workloads" => cmd_workloads(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `snailqc help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Argument plumbing
// ---------------------------------------------------------------------------

/// Splits `args` into flags (with values) and positional arguments.
struct Options {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Options {
    /// `value_flags` name the options that consume a following value;
    /// `bool_flags` the valueless switches. Anything else errors out instead
    /// of being silently ignored.
    fn parse(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if a.starts_with('-') && a != "-" {
                let name = a.trim_start_matches('-').to_string();
                let canonical = if name == "o" { "out".to_string() } else { name };
                if value_flags.contains(&canonical.as_str()) {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| format!("--{canonical} needs a value"))?
                        .clone();
                    flags.push((canonical, Some(value)));
                    i += 2;
                } else if bool_flags.contains(&canonical.as_str()) {
                    flags.push((canonical, None));
                    i += 1;
                } else {
                    return Err(format!("unknown option `{a}` (try `snailqc help`)"));
                }
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Ok(Self { positional, flags })
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn numeric<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: invalid value `{v}`")),
        }
    }
}

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buffer)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))
    }
}

fn parse_basis(name: &str) -> Result<Option<BasisGate>, String> {
    Ok(Some(match snailqc_util::normalize_name(name).as_str() {
        "none" => return Ok(None),
        "cnot" | "cx" => BasisGate::Cnot,
        "syc" | "sycamore" => BasisGate::Syc,
        "sqrtiswap" | "siswap" => BasisGate::SqrtISwap,
        _ => {
            return Err(format!(
                "unknown basis `{name}` (cnot | syc | sqrt-iswap | none)"
            ))
        }
    }))
}

fn emit_output(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("writing `{path}`: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// transpile
// ---------------------------------------------------------------------------

#[derive(serde::Serialize)]
struct TranspileOutput {
    file: String,
    topology: String,
    layout: String,
    basis: Option<&'static str>,
    trials: usize,
    seed: u64,
    error_model: Option<ErrorModelSpec>,
    error_weight: f64,
    report: TranspileReport,
    fidelity: Option<FidelityComparison>,
}

/// Noise-blind vs noise-aware routing under the same calibrated device.
#[derive(serde::Serialize)]
struct FidelityComparison {
    /// Edge-aware estimate for the circuit the noise-blind router produced.
    noise_blind: FidelityEstimate,
    /// Edge-aware estimate for the circuit the noise-aware router produced.
    noise_aware: FidelityEstimate,
    /// Uniform-rate estimate (ignores per-edge calibration) of the
    /// noise-aware circuit, for reference.
    uniform: FidelityEstimate,
    /// `(1 − F_blind) / (1 − F_aware)`; > 1 means noise-aware routing
    /// reduced the estimated infidelity.
    infidelity_improvement: f64,
}

fn cmd_transpile(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(
        args,
        &[
            "topology",
            "basis",
            "layout",
            "trials",
            "seed",
            "error-model",
            "error-weight",
            "out",
        ],
        &["json"],
    )?;
    let [file] = opts.positional.as_slice() else {
        return Err("transpile needs exactly one <file.qasm> argument".into());
    };
    let topology_name = opts
        .value("topology")
        .ok_or("transpile needs --topology <name> (see `snailqc topologies`)")?;
    let mut graph = catalog::by_name(topology_name).ok_or_else(|| {
        format!(
            "unknown topology `{topology_name}`; available: {}",
            catalog::names().join(", ")
        )
    })?;
    let error_model = opts
        .value("error-model")
        .map(ErrorModelSpec::parse)
        .transpose()?;
    let error_weight: f64 = opts.numeric(
        "error-weight",
        if error_model.is_some() { 1.0 } else { 0.0 },
    )?;
    if error_weight < 0.0 {
        return Err("--error-weight must be non-negative".into());
    }
    if let Some(spec) = &error_model {
        spec.apply(&mut graph)?;
    }
    let basis = parse_basis(opts.value("basis").unwrap_or("none"))?;
    let layout = match opts.value("layout").unwrap_or("dense") {
        "dense" => LayoutStrategy::Dense,
        "trivial" => LayoutStrategy::Trivial,
        other => return Err(format!("unknown layout `{other}` (dense | trivial)")),
    };
    let trials: usize = opts.numeric("trials", 4)?;
    let seed: u64 = opts.numeric("seed", 11)?;

    let source = read_source(file)?;
    let program = snailqc::qasm::parse(&source).map_err(|e| e.to_string())?;
    if program.circuit.num_qubits() > graph.num_qubits() {
        return Err(format!(
            "circuit has {} qubits but `{}` only has {}",
            program.circuit.num_qubits(),
            graph.name(),
            graph.num_qubits()
        ));
    }

    let options = TranspileOptions {
        layout,
        router: RouterConfig {
            trials,
            seed,
            error_weight,
            ..RouterConfig::default()
        },
        basis,
    };
    let result = transpile(&program.circuit, &graph, &options);

    // With an error model, also run the noise-blind router on the same
    // calibrated device so the output surfaces both fidelity estimates. On a
    // uniform device (or with zero weight) the noise-aware run is provably
    // identical to the noise-blind one, so reuse its report instead of
    // routing twice.
    let fidelity = error_model.as_ref().map(|spec| {
        let blind_report = if error_weight == 0.0 || graph.edge_errors_uniform() {
            result.report
        } else {
            let blind_options = TranspileOptions {
                router: RouterConfig {
                    error_weight: 0.0,
                    ..options.router
                },
                ..options
            };
            transpile(&program.circuit, &graph, &blind_options).report
        };
        let estimate = |report: &TranspileReport| estimate_fidelity_edges(report, &spec.model);
        let uniform = match basis {
            Some(_) => estimate_fidelity(&result.report, &spec.model),
            None => estimate_fidelity_routed(&result.report, &spec.model),
        };
        let noise_blind = estimate(&blind_report);
        let noise_aware = estimate(&result.report);
        let infidelity_improvement = (1.0 - noise_blind.total_fidelity)
            / (1.0 - noise_aware.total_fidelity).max(f64::MIN_POSITIVE);
        FidelityComparison {
            noise_blind,
            noise_aware,
            uniform,
            infidelity_improvement,
        }
    });

    if let Some(out) = opts.value("out") {
        let circuit = result.translated.as_ref().unwrap_or(&result.routed.circuit);
        emit_output(&snailqc::qasm::emit(circuit), Some(out))?;
    }

    if opts.has("json") {
        let output = TranspileOutput {
            file: file.clone(),
            topology: graph.name().to_string(),
            layout: format!("{layout:?}"),
            basis: basis.map(|b| b.label()),
            trials,
            seed,
            error_model,
            error_weight,
            report: result.report,
            fidelity,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&output).map_err(|e| e.to_string())?
        );
    } else {
        let r = &result.report;
        println!("== transpile {file} onto {} ==", graph.name());
        println!("  logical qubits        {}", r.logical_qubits);
        println!("  physical qubits       {}", r.physical_qubits);
        println!("  input 2Q gates        {}", r.input_two_qubit_gates);
        println!("  SWAPs inserted        {}", r.swap_count);
        println!("  critical-path SWAPs   {}", r.swap_depth);
        println!("  routed 2Q gates       {}", r.routed_two_qubit_gates);
        println!("  routed 2Q depth       {}", r.routed_two_qubit_depth);
        match basis {
            Some(b) => {
                println!("  basis                 {}", b.label());
                println!("  basis gate count      {}", r.basis_gate_count);
                println!("  basis gate depth      {}", r.basis_gate_depth);
            }
            None => println!("  basis                 (routing only)"),
        }
        if let Some(f) = &fidelity {
            println!("  -- fidelity (error-weight {error_weight}) --");
            println!(
                "  noise-blind routing   {:.6}",
                f.noise_blind.total_fidelity
            );
            println!(
                "  noise-aware routing   {:.6}",
                f.noise_aware.total_fidelity
            );
            println!("  uniform-rate estimate {:.6}", f.uniform.total_fidelity);
            println!("  infidelity improved   {:.3}x", f.infidelity_improvement);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// emit
// ---------------------------------------------------------------------------

fn cmd_emit(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args, &["qubits", "seed", "out"], &["measure-all"])?;
    let [workload_name] = opts.positional.as_slice() else {
        return Err("emit needs exactly one <workload> argument (see `snailqc workloads`)".into());
    };
    let workload = Workload::by_name(workload_name).ok_or_else(|| {
        format!(
            "unknown workload `{workload_name}`; available: {}",
            Workload::names().join(", ")
        )
    })?;
    let qubits: usize = opts
        .value("qubits")
        .ok_or("emit needs --qubits <N>")?
        .parse()
        .map_err(|_| "--qubits: invalid value".to_string())?;
    if qubits == 0 {
        return Err("--qubits must be at least 1".into());
    }
    let seed: u64 = opts.numeric("seed", 7)?;
    let circuit = workload.generate(qubits, seed);
    let emit_opts = snailqc::qasm::EmitOptions {
        measure_all: opts.has("measure-all"),
        ..Default::default()
    };
    emit_output(
        &snailqc::qasm::emit_with(&circuit, &emit_opts),
        opts.value("out"),
    )
}

// ---------------------------------------------------------------------------
// parse
// ---------------------------------------------------------------------------

#[derive(serde::Serialize)]
struct ParseOutput {
    file: String,
    qubits: usize,
    gates: usize,
    two_qubit_gates: usize,
    depth: usize,
    two_qubit_depth: usize,
    swap_count: usize,
    measurements: usize,
    barriers: usize,
    gate_counts: std::collections::BTreeMap<&'static str, usize>,
}

fn cmd_parse(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args, &[], &["json"])?;
    let [file] = opts.positional.as_slice() else {
        return Err("parse needs exactly one <file.qasm> argument".into());
    };
    let source = read_source(file)?;
    let program = snailqc::qasm::parse(&source).map_err(|e| e.to_string())?;
    let c = &program.circuit;
    let output = ParseOutput {
        file: file.clone(),
        qubits: c.num_qubits(),
        gates: c.len(),
        two_qubit_gates: c.two_qubit_count(),
        depth: c.depth(),
        two_qubit_depth: c.two_qubit_depth(),
        swap_count: c.swap_count(),
        measurements: program.measurements,
        barriers: program.barriers,
        gate_counts: c.gate_counts(),
    };
    if opts.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&output).map_err(|e| e.to_string())?
        );
    } else {
        println!("== {file} ==");
        println!("  qubits          {}", output.qubits);
        println!("  gates           {}", output.gates);
        println!("  2Q gates        {}", output.two_qubit_gates);
        println!("  depth           {}", output.depth);
        println!("  2Q depth        {}", output.two_qubit_depth);
        println!("  SWAPs           {}", output.swap_count);
        println!("  measurements    {}", output.measurements);
        println!("  barriers        {}", output.barriers);
        let histogram: Vec<String> = output
            .gate_counts
            .iter()
            .map(|(name, count)| format!("{name}:{count}"))
            .collect();
        println!("  histogram       {}", histogram.join(" "));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// topologies / workloads
// ---------------------------------------------------------------------------

#[derive(serde::Serialize)]
struct TopologyRow {
    name: &'static str,
    display: String,
    qubits: usize,
    diameter: usize,
    avg_distance: f64,
    avg_connectivity: f64,
}

fn cmd_topologies(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args, &[], &["json"])?;
    let rows: Vec<TopologyRow> = catalog::names()
        .into_iter()
        .map(|name| {
            let graph = catalog::by_name(name).expect("registry names resolve");
            let metrics = graph.metrics();
            TopologyRow {
                name,
                display: graph.name().to_string(),
                qubits: metrics.qubits,
                diameter: metrics.diameter,
                avg_distance: metrics.avg_distance,
                avg_connectivity: metrics.avg_connectivity,
            }
        })
        .collect();
    if opts.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{:<26} {:>6} {:>9} {:>8} {:>8}",
            "name", "qubits", "diameter", "avgD", "avgC"
        );
        for row in rows {
            println!(
                "{:<26} {:>6} {:>9} {:>8.2} {:>8.2}",
                row.name, row.qubits, row.diameter, row.avg_distance, row.avg_connectivity
            );
        }
    }
    Ok(())
}

fn cmd_workloads(_args: &[String]) -> Result<(), String> {
    println!("{:<16} description", "name");
    for (name, workload) in Workload::names().iter().zip(Workload::all()) {
        println!("{:<16} {}", name, workload.label());
    }
    Ok(())
}
