//! The `snailqc` command-line driver.
//!
//! Exposes the topology catalog, the workload generators and the full Fig. 10
//! staged pipeline (layout → routing → translation → analysis) over OpenQASM
//! files — version 2.0 or 3.0, auto-detected from the `OPENQASM` header —
//! with optional machine-readable JSON output. Every transpile flows through
//! one `Device` (graph + noise + native basis) and one `Pipeline`:
//!
//! ```text
//! snailqc transpile circuit.qasm --topology corral11-16 --basis sqrt-iswap --json
//! snailqc transpile circuit.qasm --topology=corral11-16 --error-model=calibrated --json
//! snailqc transpile qasm_dir/ --topology tree-84 --seed 7 --store cache.jsonl --json
//! snailqc emit qaoa-vanilla --qubits 12 --seed 7 --qasm3 -o qaoa12_v3.qasm
//! snailqc convert circuit.qasm --qasm3
//! snailqc parse circuit_v3.qasm
//! snailqc topologies --json
//! snailqc workloads
//! ```

use rayon::prelude::*;
use snailqc::core::device::Device;
use snailqc::core::fidelity::{
    estimate_fidelity, estimate_fidelity_edges, estimate_fidelity_routed, FidelityEstimate,
};
use snailqc::core::noise::ErrorModelSpec;
use snailqc::core::registry::{DeviceRegistry, DeviceSource};
use snailqc::decompose::BasisGate;
use snailqc::devices::{basis_name, DeviceSpec, GeneratorSpec, TopologySource};
use snailqc::prelude::*;
use snailqc::topology::catalog;
use snailqc::transpiler::{TranspileReport, TranspileResult};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "snailqc — SNAIL co-design transpilation toolkit (HPCA 2023 reproduction)

USAGE:
    snailqc <COMMAND> [OPTIONS]

Options take either `--flag value` or `--flag=value` form.

COMMANDS:
    transpile <file.qasm|dir>  Run the staged pipeline on an OpenQASM 2.0 or
                            3.0 file (dialect auto-detected from the header),
                            or on every .qasm file under a directory,
                            recursively (batch mode: parallel, deterministic
                            per-file seeds, one aggregated JSON report)
        --device <arg>      Target device: a spec-file path, a built-in
                            catalog name, or the name of a spec found on
                            SNAILQC_DEVICE_PATH / ./devices
                            (see `snailqc devices`)
        --topology <name>   Target device from the built-in catalog only
                            (exactly one of --device / --topology)
        --basis <gate>      cnot | syc | sqrt-iswap | none
                            [default: the spec's basis, else none]
        --layout <strategy> dense | trivial                  [default: dense]
        --trials <N>        Stochastic routing trials        [default: 4]
        --seed <N>          Router RNG seed                  [default: 11]
        --error-model <m>   default | control | decoherence | calibrated,
                            or a JSON file with per-edge rates; enables
                            noise-aware routing + fidelity estimates
        --error-weight <w>  Fidelity weight of the SWAP scoring
                            [default: 1 with --error-model, else 0]
        --store <file>      Batch mode: JSON-lines report cache; repeated
                            runs replay cached cells instead of re-routing
        --emit-dir <dir>    Batch mode: write each file's routed (and
                            basis-translated, if any) circuit as QASM under
                            <dir>, mirroring the input directory layout;
                            implies re-routing every file (bypasses --store
                            reads)
        --trace-out <file>  Write a Chrome trace-event JSON of the run's
                            pipeline/router spans (open in Perfetto or
                            chrome://tracing)
        --metrics-json <f>  Write the metrics snapshot (counters, gauges,
                            histogram quantiles) as JSON
        --qasm3             Write -o output as OpenQASM 3.0
        -o, --out <file>    Write the transpiled circuit as QASM
                            (batch mode: write the aggregated JSON report)
        --json              Print the report as JSON

    emit <workload>         Export a built-in workload as OpenQASM
        --qubits <N>        Problem size in qubits (required unless --device)
        --device <arg>      Size the workload to fill this device
        --seed <N>          Generator seed                   [default: 7]
        --qasm3             Emit OpenQASM 3.0 instead of 2.0
        --measure-all       Append a full-register measurement
        -o, --out <file>    Write to a file instead of stdout

    convert <file.qasm>     Re-emit a circuit in either dialect (input
                            dialect auto-detected from the header)
        --qasm3             Emit OpenQASM 3.0 instead of 2.0
        -o, --out <file>    Write to a file instead of stdout

    parse <file.qasm>       Parse a file (either dialect) and print circuit
                            statistics
        --json              Print the statistics as JSON

    serve                   Run the transpile daemon: line-delimited JSON-RPC
                            over TCP or a Unix socket, keeping warm devices
                            and routing caches resident across requests (see
                            README § Serving for the protocol)
        --tcp <addr>        TCP listen address      [default: 127.0.0.1:7878]
        --unix <path>       Listen on a Unix-domain socket instead of TCP
        --workers <N>       Worker threads; 0 = available cores [default: 0]
        --queue <N>         Bounded job-queue capacity; a full queue answers
                            structured `busy` errors         [default: 64]
        --store <file>      Shared JSON-lines report cache — same file and
                            cache keys as `transpile --store`, safe for
                            concurrent writers

    devices [list]          List the device catalog — built-in topologies
                            plus every spec file on SNAILQC_DEVICE_PATH and
                            in ./devices — with Table 1/2 metrics
        --json              Print the catalog as JSON
    devices show <arg>      Show one device (name or spec file) in detail
        --json              Print the details as JSON
    devices validate <p>... Validate spec files (or directories of them);
                            exits non-zero if any fails  [default: devices/]

    device-gen <family>     Emit a device-spec JSON for a topology family:
                            line | ring | complete | star | grid |
                            grid-diagonals | hex | heavy-hex | hypercube |
                            tree | tree-rr | corral
        --qubits <N>        Size (line/ring/complete/star/hypercube)
        --rows/--cols <N>   Size (grid/grid-diagonals/hex/heavy-hex)
        --levels <N>        Size (tree); --round-robin for the RR variant
        --posts <N>         Size (corral); --stride-a/--stride-b [default: 1]
        --truncate <N>      Boundary-truncate to N qubits (heavy-hex 127…)
        --name <s>          Spec name       [default: <family>_<qubits>]
        --display-name <s>  Human-readable label
        --description <s>   Free-text provenance note
        --basis <gate>      Pin the native two-qubit basis
        --error-model <m>   Attach a named error-model preset
        --expand            Freeze the generator into an explicit edge list
        -o, --out <file>    Write to a file instead of stdout

    topologies              Alias of `devices list`
        --json              Print the catalog as JSON

    workloads               List the built-in workload generators

    help                    Show this message

Use `-` as <file.qasm> to read from stdin.

Setting SNAILQC_TRACE=1 enables the observability layer for any transpile
run; without --trace-out/--metrics-json the metrics summary table is
printed to stderr.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "transpile" => cmd_transpile(rest),
        "serve" => cmd_serve(rest),
        "emit" => cmd_emit(rest),
        "convert" => cmd_convert(rest),
        "parse" => cmd_parse(rest),
        "devices" => cmd_devices(rest),
        "device-gen" => cmd_device_gen(rest),
        "topologies" => cmd_topologies(rest),
        "workloads" => cmd_workloads(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `snailqc help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Argument plumbing
// ---------------------------------------------------------------------------

/// Splits `args` into flags (with values) and positional arguments.
struct Options {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Options {
    /// `value_flags` name the options that consume a value — either inline
    /// (`--flag=value`) or as the following argument (`--flag value`);
    /// `bool_flags` the valueless switches. Anything else errors out instead
    /// of being silently ignored.
    fn parse(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if a.starts_with('-') && a != "-" {
                let body = a.trim_start_matches('-');
                let (name, inline) = match body.split_once('=') {
                    Some((name, value)) => (name.to_string(), Some(value.to_string())),
                    None => (body.to_string(), None),
                };
                let canonical = if name == "o" { "out".to_string() } else { name };
                if value_flags.contains(&canonical.as_str()) {
                    let value = match inline {
                        Some(value) => value,
                        None => {
                            i += 1;
                            args.get(i)
                                .ok_or_else(|| format!("--{canonical} needs a value"))?
                                .clone()
                        }
                    };
                    flags.push((canonical, Some(value)));
                } else if bool_flags.contains(&canonical.as_str()) {
                    if inline.is_some() {
                        return Err(format!("--{canonical} does not take a value"));
                    }
                    flags.push((canonical, None));
                } else {
                    return Err(format!("unknown option `{a}` (try `snailqc help`)"));
                }
                i += 1;
            } else {
                positional.push(a.clone());
                i += 1;
            }
        }
        Ok(Self { positional, flags })
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn numeric<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: invalid value `{v}`")),
        }
    }
}

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buffer)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))
    }
}

fn parse_basis(name: &str) -> Result<Option<BasisGate>, String> {
    BasisGate::by_name(name)
}

/// Resolves the target device from `--device` (a spec file, a built-in
/// catalog name, or the name of a spec on the `SNAILQC_DEVICE_PATH` search
/// path) or the historical `--topology` (catalog names only) — exactly one
/// of the two.
fn resolve_device(opts: &Options) -> Result<Device, String> {
    match (opts.value("device"), opts.value("topology")) {
        (Some(_), Some(_)) => Err("--device and --topology are mutually exclusive".into()),
        (Some(arg), None) => DeviceRegistry::with_default_paths().resolve(arg),
        (None, Some(name)) => Device::from_catalog(name),
        (None, None) => Err(
            "transpile needs --device <file-or-name> or --topology <name> (see `snailqc devices`)"
                .into(),
        ),
    }
}

/// The QASM dialect selected by the presence of `--qasm3`.
fn output_version(opts: &Options) -> snailqc::qasm::QasmVersion {
    if opts.has("qasm3") {
        snailqc::qasm::QasmVersion::V3
    } else {
        snailqc::qasm::QasmVersion::V2
    }
}

fn emit_output(text: &str, out: Option<&str>) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("writing `{path}`: {e}"))?;
            eprintln!("wrote {path}");
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// transpile
// ---------------------------------------------------------------------------

/// The device and pipeline a `transpile` invocation resolved from its flags —
/// the single entry point both the one-file and the batch paths share.
struct TranspileSetup {
    device: Device,
    pipeline: Pipeline,
}

impl TranspileSetup {
    fn from_options(opts: &Options) -> Result<Self, String> {
        let mut device = resolve_device(opts)?;
        let error_model = opts
            .value("error-model")
            .map(ErrorModelSpec::parse)
            .transpose()?;
        // A spec file can ship its own error model; noise-aware scoring is
        // the right default whenever the device ends up calibrated, however
        // the calibration arrived.
        let device_has_noise = error_model.is_some() || device.error_model().is_some();
        let error_weight: f64 =
            opts.numeric("error-weight", if device_has_noise { 1.0 } else { 0.0 })?;
        if error_weight < 0.0 {
            return Err("--error-weight must be non-negative".into());
        }
        if let Some(spec) = error_model {
            device = device.with_error_model(spec)?;
        }
        // An explicit `--basis` always wins over a spec-declared native
        // basis (`--basis none` strips it); with no flag the spec's stands.
        if let Some(name) = opts.value("basis") {
            device = match parse_basis(name)? {
                Some(basis) => device.with_basis(basis),
                None => device.without_basis(),
            };
        }
        let layout = match opts.value("layout").unwrap_or("dense") {
            "dense" => LayoutStrategy::Dense,
            "trivial" => LayoutStrategy::Trivial,
            other => return Err(format!("unknown layout `{other}` (dense | trivial)")),
        };
        let trials: usize = opts.numeric("trials", 4)?;
        let seed: u64 = opts.numeric("seed", 11)?;
        let pipeline = Pipeline::builder()
            .layout(layout)
            .router(RouterConfig {
                trials,
                seed,
                error_weight,
                ..RouterConfig::default()
            })
            .build();
        Ok(Self { device, pipeline })
    }

    fn layout(&self) -> LayoutStrategy {
        self.pipeline.layout()
    }

    fn trials(&self) -> usize {
        self.pipeline.router().trials
    }

    fn seed(&self) -> u64 {
        self.pipeline.router().seed
    }

    fn error_weight(&self) -> f64 {
        self.pipeline.router().error_weight
    }

    fn parse_circuit(&self, name: &str, source: &str) -> Result<Circuit, String> {
        let program = snailqc::qasm::parse_any(source).map_err(|e| e.to_string())?;
        if !self.device.fits(&program.circuit) {
            return Err(format!(
                "circuit `{name}` has {} qubits but `{}` only has {}",
                program.circuit.num_qubits(),
                self.device.graph().name(),
                self.device.num_qubits()
            ));
        }
        Ok(program.circuit)
    }
}

#[derive(serde::Serialize)]
struct TranspileOutput {
    file: String,
    topology: String,
    layout: String,
    basis: Option<&'static str>,
    trials: usize,
    seed: u64,
    error_model: Option<ErrorModelSpec>,
    error_weight: f64,
    report: TranspileReport,
    /// FNV-1a digest of the routed circuit's canonical QASM emission; equal
    /// digests mean gate-for-gate identical circuits, so this is what the
    /// serve daemon's reproducibility contract is checked against.
    routed_digest: String,
    /// Digest of the basis-translated circuit (`--basis` runs only).
    basis_digest: Option<String>,
    fidelity: Option<FidelityComparison>,
}

/// Noise-blind vs noise-aware routing under the same calibrated device.
#[derive(serde::Serialize)]
struct FidelityComparison {
    /// Edge-aware estimate for the circuit the noise-blind router produced.
    noise_blind: FidelityEstimate,
    /// Edge-aware estimate for the circuit the noise-aware router produced.
    noise_aware: FidelityEstimate,
    /// Uniform-rate estimate (ignores per-edge calibration) of the
    /// noise-aware circuit, for reference.
    uniform: FidelityEstimate,
    /// `(1 − F_blind) / (1 − F_aware)`; > 1 means noise-aware routing
    /// reduced the estimated infidelity.
    infidelity_improvement: f64,
}

fn cmd_transpile(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(
        args,
        &[
            "device",
            "topology",
            "basis",
            "layout",
            "trials",
            "seed",
            "error-model",
            "error-weight",
            "store",
            "emit-dir",
            "out",
            "trace-out",
            "metrics-json",
        ],
        &["json", "qasm3"],
    )?;
    let [file] = opts.positional.as_slice() else {
        return Err("transpile needs exactly one <file.qasm | directory> argument".into());
    };
    let setup = TranspileSetup::from_options(&opts)?;
    let observed = obs_setup(&opts);
    if file != "-" && Path::new(file).is_dir() {
        transpile_directory(file, &setup, &opts)?;
    } else {
        transpile_one_file(file, &setup, &opts)?;
    }
    if observed {
        obs_finish(&opts)?;
    }
    Ok(())
}

/// Turns on the workspace observability layer when the run asked for it —
/// via `--trace-out`, `--metrics-json`, or the `SNAILQC_TRACE` environment
/// variable. Returns whether it was enabled, so the caller knows to drain.
fn obs_setup(opts: &Options) -> bool {
    let wanted = opts.value("trace-out").is_some()
        || opts.value("metrics-json").is_some()
        || snailqc::obs::env_requests_tracing();
    if wanted {
        snailqc::obs::enable();
    }
    wanted
}

/// Drains the spans and metrics collected during the run: writes the Chrome
/// trace-event JSON and/or the metrics snapshot where requested, and falls
/// back to a human-readable summary table on stderr for env-only runs so
/// `SNAILQC_TRACE=1` alone still shows something.
fn obs_finish(opts: &Options) -> Result<(), String> {
    let spans = snailqc::obs::take_spans();
    let metrics = snailqc::obs::snapshot();
    if let Some(path) = opts.value("trace-out") {
        std::fs::write(path, snailqc::obs::chrome_trace(&spans))
            .map_err(|e| format!("writing trace `{path}`: {e}"))?;
    }
    if let Some(path) = opts.value("metrics-json") {
        std::fs::write(path, snailqc::obs::metrics_json(&metrics))
            .map_err(|e| format!("writing metrics `{path}`: {e}"))?;
    }
    if opts.value("trace-out").is_none() && opts.value("metrics-json").is_none() {
        eprint!("{}", snailqc::obs::summary_table(&metrics));
    }
    Ok(())
}

fn transpile_one_file(file: &str, setup: &TranspileSetup, opts: &Options) -> Result<(), String> {
    let source = read_source(file)?;
    let circuit = setup.parse_circuit(file, &source)?;
    let device = &setup.device;
    let result = device
        .try_transpile(&circuit, &setup.pipeline)
        .map_err(|e| format!("`{file}`: {e}"))?;

    // With an error model, also run the noise-blind router on the same
    // calibrated device so the output surfaces both fidelity estimates. On a
    // uniform device (or with zero weight) the noise-aware run is provably
    // identical to the noise-blind one, so reuse its report instead of
    // routing twice.
    let fidelity = device.error_model().map(|spec| {
        let blind_report = if setup.error_weight() == 0.0 || device.graph().edge_errors_uniform() {
            result.report
        } else {
            let blind = Pipeline::builder()
                .layout(setup.layout())
                .router(RouterConfig {
                    error_weight: 0.0,
                    ..*setup.pipeline.router()
                })
                .build();
            device.transpile(&circuit, &blind).report
        };
        let estimate = |report: &TranspileReport| estimate_fidelity_edges(report, &spec.model);
        let uniform = match device.basis() {
            Some(_) => estimate_fidelity(&result.report, &spec.model),
            None => estimate_fidelity_routed(&result.report, &spec.model),
        };
        let noise_blind = estimate(&blind_report);
        let noise_aware = estimate(&result.report);
        let infidelity_improvement = (1.0 - noise_blind.total_fidelity)
            / (1.0 - noise_aware.total_fidelity).max(f64::MIN_POSITIVE);
        FidelityComparison {
            noise_blind,
            noise_aware,
            uniform,
            infidelity_improvement,
        }
    });

    if let Some(out) = opts.value("out") {
        let circuit = result.translated.as_ref().unwrap_or(&result.routed.circuit);
        emit_output(
            &snailqc::qasm::emit_versioned(circuit, output_version(opts)),
            Some(out),
        )?;
    }

    if opts.has("json") {
        let output = TranspileOutput {
            file: file.to_string(),
            topology: device.graph().name().to_string(),
            layout: format!("{:?}", setup.layout()),
            basis: device.basis().map(|b| b.label()),
            trials: setup.trials(),
            seed: setup.seed(),
            error_model: device.error_model().cloned(),
            error_weight: setup.error_weight(),
            report: result.report,
            routed_digest: snailqc::serve::circuit_digest(&result.routed.circuit),
            basis_digest: result
                .translated
                .as_ref()
                .map(snailqc::serve::circuit_digest),
            fidelity,
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&output).map_err(|e| e.to_string())?
        );
    } else {
        print_human_report(
            file,
            device,
            &result,
            setup.error_weight(),
            fidelity.as_ref(),
        );
    }
    Ok(())
}

fn print_human_report(
    file: &str,
    device: &Device,
    result: &TranspileResult,
    error_weight: f64,
    fidelity: Option<&FidelityComparison>,
) {
    let r = &result.report;
    println!("== transpile {file} onto {} ==", device.graph().name());
    println!("  logical qubits        {}", r.logical_qubits);
    println!("  physical qubits       {}", r.physical_qubits);
    println!("  input 2Q gates        {}", r.input_two_qubit_gates);
    println!("  SWAPs inserted        {}", r.swap_count);
    println!("  critical-path SWAPs   {}", r.swap_depth);
    println!("  routed 2Q gates       {}", r.routed_two_qubit_gates);
    println!("  routed 2Q depth       {}", r.routed_two_qubit_depth);
    match device.basis() {
        Some(b) => {
            println!("  basis                 {}", b.label());
            println!("  basis gate count      {}", r.basis_gate_count);
            println!("  basis gate depth      {}", r.basis_gate_depth);
        }
        None => println!("  basis                 (routing only)"),
    }
    if let Some(f) = fidelity {
        println!("  -- fidelity (error-weight {error_weight}) --");
        println!(
            "  noise-blind routing   {:.6}",
            f.noise_blind.total_fidelity
        );
        println!(
            "  noise-aware routing   {:.6}",
            f.noise_aware.total_fidelity
        );
        println!("  uniform-rate estimate {:.6}", f.uniform.total_fidelity);
        println!("  infidelity improved   {:.3}x", f.infidelity_improvement);
    }
    println!("  -- pass trace --");
    for stage in &result.trace.stages {
        let delta = stage.two_qubit_out as i64 - stage.two_qubit_in as i64;
        let delta = if delta == 0 {
            String::new()
        } else {
            format!("  ({delta:+} 2Q gates)")
        };
        println!("  {:<12}{:>10.1} µs{delta}", stage.stage, stage.micros);
    }
}

// ---------------------------------------------------------------------------
// transpile (batch mode)
// ---------------------------------------------------------------------------

#[derive(serde::Serialize)]
struct BatchFileOutput {
    file: String,
    /// Router seed used for this file (base seed ⊕ FNV-1a of the file's
    /// directory-relative path).
    seed: u64,
    /// True when the report was replayed from the `--store` cache instead of
    /// being re-routed.
    cached: bool,
    /// Path the routed QASM was written to (`--emit-dir` runs only).
    emitted: Option<String>,
    error: Option<String>,
    report: Option<TranspileReport>,
}

#[derive(serde::Serialize)]
struct BatchSummary {
    files: usize,
    transpiled: usize,
    failed: usize,
    /// Cells replayed from the `--store` cache.
    cache_hits: usize,
    /// Corrupt lines skipped while loading the `--store` cache (typically
    /// a tail truncated by a killed run); 0 without `--store`.
    store_skipped_corrupt: usize,
    total_swaps: usize,
    total_routed_two_qubit_gates: usize,
    total_basis_gates: usize,
}

#[derive(serde::Serialize)]
struct BatchOutput {
    directory: String,
    topology: String,
    layout: String,
    basis: Option<&'static str>,
    trials: usize,
    base_seed: u64,
    error_model: Option<ErrorModelSpec>,
    error_weight: f64,
    summary: BatchSummary,
    files: Vec<BatchFileOutput>,
}

/// Recursively collects every `.qasm` file under `dir`.
fn collect_qasm_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in
        std::fs::read_dir(dir).map_err(|e| format!("reading directory `{}`: {e}", dir.display()))?
    {
        let path = entry
            .map_err(|e| format!("reading directory `{}`: {e}", dir.display()))?
            .path();
        if path.is_dir() {
            collect_qasm_files(&path, out)?;
        } else if path.is_file() && path.extension().and_then(|e| e.to_str()) == Some("qasm") {
            out.push(path);
        }
    }
    Ok(())
}

/// The cache key of one batch cell. Delegates to the workspace-wide
/// [`source_cell_key`](snailqc::core::store::source_cell_key) so the batch
/// CLI and the `snailqc serve` daemon address the *same* store entries for
/// the same (source, seed, configuration) — a cell transpiled by one is a
/// cache hit for the other. (The old private `batch-v1` key also omitted
/// the store's version fingerprint, so stale entries could survive a
/// format-breaking upgrade.)
fn batch_cell_key(source: &str, seed: u64, setup: &TranspileSetup) -> String {
    snailqc::core::store::source_cell_key(source, seed, &setup.device, &setup.pipeline)
}

/// Batch mode: transpile every `.qasm` file under `dir` — recursively — in
/// parallel and emit one aggregated report. Each file's router seed is
/// derived from the base seed and the file's directory-relative path alone,
/// so results are independent of worker threads, directory enumeration
/// order, and which other files are present. With `--store <file>`, reports
/// are cached in a `SweepStore` keyed by file contents + device + routing
/// config, and repeated runs replay cached cells instead of re-routing.
fn transpile_directory(dir: &str, setup: &TranspileSetup, opts: &Options) -> Result<(), String> {
    let root = Path::new(dir);
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_qasm_files(root, &mut paths)?;
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .qasm files under `{dir}`"));
    }
    let mut store = opts.value("store").map(SweepStore::open);
    let emit_dir = opts.value("emit-dir").map(PathBuf::from);

    // Sequential cheap phase: read each file and probe the cache (the store
    // is single-threaded); parsing and routing — the expensive part — run in
    // parallel below for every cache miss. An `--emit-dir` run needs the
    // routed circuit, which the store does not keep, so it transpiles every
    // file (cache writes still happen).
    enum Prepared {
        Failed(String),
        Cached(TranspileReport),
        Work(String, String), // source, cache key
    }
    let prepared: Vec<(String, u64, Prepared)> = paths
        .iter()
        .map(|path| {
            let name = path
                .strip_prefix(root)
                .map(|p| p.to_string_lossy().into_owned())
                .unwrap_or_else(|_| path.display().to_string());
            let seed = setup.seed() ^ snailqc_util::fnv1a_64(name.as_bytes());
            let outcome = std::fs::read_to_string(path)
                .map(|source| {
                    let key = batch_cell_key(&source, seed, setup);
                    let cached = if emit_dir.is_some() {
                        None
                    } else {
                        store.as_mut().and_then(|s| s.get(&key))
                    };
                    match cached {
                        Some(report) => Prepared::Cached(report),
                        None => Prepared::Work(source, key),
                    }
                })
                .map_err(|e| format!("reading `{}`: {e}", path.display()));
            match outcome {
                Ok(prepared) => (name, seed, prepared),
                Err(error) => (name, seed, Prepared::Failed(error)),
            }
        })
        .collect();

    let routed: Vec<(BatchFileOutput, Option<String>)> = prepared
        .par_iter()
        .map(|(name, seed, prepared)| {
            let _file_span = if snailqc::obs::is_enabled() {
                Some(snailqc::obs::span_with("batch.file", name.clone()))
            } else {
                None
            };
            let timer = snailqc::obs::is_enabled().then(std::time::Instant::now);
            let (name, seed) = (name.clone(), *seed);
            let outcome = match prepared {
                Prepared::Failed(error) => (
                    BatchFileOutput {
                        file: name,
                        seed,
                        cached: false,
                        emitted: None,
                        error: Some(error.clone()),
                        report: None,
                    },
                    None,
                ),
                Prepared::Cached(report) => (
                    BatchFileOutput {
                        file: name,
                        seed,
                        cached: true,
                        emitted: None,
                        error: None,
                        report: Some(*report),
                    },
                    None,
                ),
                Prepared::Work(source, key) => {
                    let outcome = setup.parse_circuit(&name, source).and_then(|circuit| {
                        let pipeline = setup.pipeline.to_builder().seed(seed).build();
                        let result = setup
                            .device
                            .try_transpile(&circuit, &pipeline)
                            .map_err(|e| e.to_string())?;
                        let emitted = match &emit_dir {
                            None => None,
                            Some(dir) => {
                                let target = dir.join(&name);
                                let circuit =
                                    result.translated.as_ref().unwrap_or(&result.routed.circuit);
                                let qasm =
                                    snailqc::qasm::emit_versioned(circuit, output_version(opts));
                                if let Some(parent) = target.parent() {
                                    std::fs::create_dir_all(parent).map_err(|e| {
                                        format!("creating `{}`: {e}", parent.display())
                                    })?;
                                }
                                std::fs::write(&target, qasm)
                                    .map_err(|e| format!("writing `{}`: {e}", target.display()))?;
                                Some(target.display().to_string())
                            }
                        };
                        Ok((result.report, emitted))
                    });
                    match outcome {
                        Ok((report, emitted)) => (
                            BatchFileOutput {
                                file: name,
                                seed,
                                cached: false,
                                emitted,
                                error: None,
                                report: Some(report),
                            },
                            Some(key.clone()),
                        ),
                        Err(error) => (
                            BatchFileOutput {
                                file: name,
                                seed,
                                cached: false,
                                emitted: None,
                                error: Some(error),
                                report: None,
                            },
                            None,
                        ),
                    }
                }
            };
            if let Some(timer) = timer {
                snailqc::obs::histogram_record(
                    "batch.file_micros",
                    timer.elapsed().as_micros() as u64,
                );
            }
            outcome
        })
        .collect();
    let mut files = Vec::with_capacity(routed.len());
    for (output, key) in routed {
        if let (Some(store), Some(key), Some(report)) = (store.as_mut(), key, output.report) {
            store.insert(key, report);
        }
        files.push(output);
    }
    if let Some(store) = &mut store {
        store
            .flush()
            .map_err(|e| format!("writing store `{}`: {e}", store.path().display()))?;
    }

    let cache_hits = files.iter().filter(|f| f.cached).count();
    let transpiled: Vec<&TranspileReport> =
        files.iter().filter_map(|f| f.report.as_ref()).collect();
    let summary = BatchSummary {
        files: files.len(),
        transpiled: transpiled.len(),
        failed: files.len() - transpiled.len(),
        cache_hits,
        store_skipped_corrupt: store.as_ref().map_or(0, |s| s.skipped_corrupt()),
        total_swaps: transpiled.iter().map(|r| r.swap_count).sum(),
        total_routed_two_qubit_gates: transpiled.iter().map(|r| r.routed_two_qubit_gates).sum(),
        total_basis_gates: transpiled.iter().map(|r| r.basis_gate_count).sum(),
    };
    let output = BatchOutput {
        directory: dir.to_string(),
        topology: setup.device.graph().name().to_string(),
        layout: format!("{:?}", setup.layout()),
        basis: setup.device.basis().map(|b| b.label()),
        trials: setup.trials(),
        base_seed: setup.seed(),
        error_model: setup.device.error_model().cloned(),
        error_weight: setup.error_weight(),
        summary,
        files,
    };

    let json = serde_json::to_string_pretty(&output).map_err(|e| e.to_string())?;
    if let Some(out) = opts.value("out") {
        emit_output(&format!("{json}\n"), Some(out))?;
    }
    if opts.has("json") {
        println!("{json}");
    } else {
        println!(
            "== transpile {} .qasm files from {dir} onto {} ==",
            output.summary.files,
            setup.device.graph().name()
        );
        println!(
            "  {:<28} {:>6} {:>8} {:>10} {:>10}",
            "file", "qubits", "SWAPs", "2Q gates", "basis 2Q"
        );
        for f in &output.files {
            match (&f.report, &f.error) {
                (Some(r), _) => println!(
                    "  {:<28} {:>6} {:>8} {:>10} {:>10}",
                    f.file,
                    r.logical_qubits,
                    r.swap_count,
                    r.routed_two_qubit_gates,
                    r.basis_gate_count
                ),
                (None, Some(e)) => println!("  {:<28} error: {e}", f.file),
                (None, None) => unreachable!("file produced neither report nor error"),
            }
        }
        println!(
            "  -- total: {} SWAPs, {} routed 2Q gates, {} basis gates; {} failed, {} cached --",
            output.summary.total_swaps,
            output.summary.total_routed_two_qubit_gates,
            output.summary.total_basis_gates,
            output.summary.failed,
            output.summary.cache_hits
        );
        if output.summary.store_skipped_corrupt > 0 {
            println!(
                "  warning: skipped {} corrupt line(s) in the --store cache",
                output.summary.store_skipped_corrupt
            );
        }
        if let Some(dir) = &emit_dir {
            let emitted = output.files.iter().filter(|f| f.emitted.is_some()).count();
            println!(
                "  wrote {emitted} routed QASM file(s) under {}",
                dir.display()
            );
        }
    }
    if output.summary.failed > 0 && output.summary.transpiled == 0 {
        return Err("every file in the batch failed".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

/// `snailqc serve`: the long-running transpile daemon (see `snailqc::serve`).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args, &["tcp", "unix", "workers", "queue", "store"], &[])?;
    if !opts.positional.is_empty() {
        return Err("serve takes no positional arguments".into());
    }
    let bind = match (opts.value("unix"), opts.value("tcp")) {
        (Some(_), Some(_)) => return Err("--tcp and --unix are mutually exclusive".into()),
        (Some(path), None) => {
            #[cfg(unix)]
            {
                snailqc::serve::Bind::Unix(PathBuf::from(path))
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err("--unix sockets are not supported on this platform".into());
            }
        }
        (None, addr) => snailqc::serve::Bind::Tcp(addr.unwrap_or("127.0.0.1:7878").to_string()),
    };
    let config = snailqc::serve::ServeConfig {
        bind,
        workers: opts.numeric("workers", 0usize)?,
        queue_capacity: opts.numeric("queue", 64usize)?,
        store: opts.value("store").map(PathBuf::from),
    };
    snailqc::serve::run(config)
}

// ---------------------------------------------------------------------------
// emit
// ---------------------------------------------------------------------------

fn cmd_emit(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(
        args,
        &["qubits", "seed", "out", "device"],
        &["measure-all", "qasm3"],
    )?;
    let [workload_name] = opts.positional.as_slice() else {
        return Err("emit needs exactly one <workload> argument (see `snailqc workloads`)".into());
    };
    let workload = Workload::by_name(workload_name).ok_or_else(|| {
        format!(
            "unknown workload `{workload_name}`; available: {}",
            Workload::names().join(", ")
        )
    })?;
    // `--device` sizes the workload to fill a machine; an explicit
    // `--qubits` still wins (e.g. a 12-qubit circuit aimed at a 127-qubit
    // device).
    let qubits: usize = match (opts.value("qubits"), opts.value("device")) {
        (Some(v), _) => v
            .parse()
            .map_err(|_| "--qubits: invalid value".to_string())?,
        (None, Some(arg)) => DeviceRegistry::with_default_paths()
            .resolve(arg)?
            .num_qubits(),
        (None, None) => return Err("emit needs --qubits <N> (or --device <file-or-name>)".into()),
    };
    if qubits == 0 {
        return Err("--qubits must be at least 1".into());
    }
    let seed: u64 = opts.numeric("seed", 7)?;
    let circuit = workload.generate(qubits, seed);
    let emit_opts = snailqc::qasm::EmitOptions {
        measure_all: opts.has("measure-all"),
        version: output_version(&opts),
        ..Default::default()
    };
    emit_output(
        &snailqc::qasm::emit_with(&circuit, &emit_opts),
        opts.value("out"),
    )
}

// ---------------------------------------------------------------------------
// convert
// ---------------------------------------------------------------------------

/// Re-emits a parsed circuit in the selected dialect: the QASM version
/// up/down-converter (`v2 → v3 → v2` is byte-identical, which the CI smoke
/// job asserts).
///
/// The circuit IR is unitary-only, so a full-register measurement is
/// re-emitted as `measure_all`; partial measurements (and barriers) cannot
/// be represented and are dropped with a warning on stderr.
fn cmd_convert(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args, &["out"], &["qasm3"])?;
    let [file] = opts.positional.as_slice() else {
        return Err("convert needs exactly one <file.qasm> argument".into());
    };
    let source = read_source(file)?;
    let program = snailqc::qasm::parse_any(&source).map_err(|e| e.to_string())?;
    let measure_all =
        program.measurements > 0 && program.measurements == program.circuit.num_qubits();
    if program.measurements > 0 && !measure_all {
        eprintln!(
            "warning: `{file}` measures {} of {} qubits; partial measurements are not \
             representable and were dropped",
            program.measurements,
            program.circuit.num_qubits()
        );
    }
    if program.barriers > 0 {
        eprintln!(
            "warning: `{file}` contains {} barrier(s), which are not representable and \
             were dropped",
            program.barriers
        );
    }
    let emit_opts = snailqc::qasm::EmitOptions {
        measure_all,
        version: output_version(&opts),
        ..Default::default()
    };
    emit_output(
        &snailqc::qasm::emit_with(&program.circuit, &emit_opts),
        opts.value("out"),
    )
}

// ---------------------------------------------------------------------------
// parse
// ---------------------------------------------------------------------------

#[derive(serde::Serialize)]
struct ParseOutput {
    file: String,
    /// The dialect declared by the `OPENQASM` header (`"2.0"` or `"3.0"`).
    version: &'static str,
    qubits: usize,
    gates: usize,
    two_qubit_gates: usize,
    depth: usize,
    two_qubit_depth: usize,
    swap_count: usize,
    measurements: usize,
    barriers: usize,
    gate_counts: std::collections::BTreeMap<&'static str, usize>,
}

fn cmd_parse(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args, &[], &["json"])?;
    let [file] = opts.positional.as_slice() else {
        return Err("parse needs exactly one <file.qasm> argument".into());
    };
    let source = read_source(file)?;
    let program = snailqc::qasm::parse_any(&source).map_err(|e| e.to_string())?;
    let c = &program.circuit;
    let output = ParseOutput {
        file: file.clone(),
        version: program.version.header(),
        qubits: c.num_qubits(),
        gates: c.len(),
        two_qubit_gates: c.two_qubit_count(),
        depth: c.depth(),
        two_qubit_depth: c.two_qubit_depth(),
        swap_count: c.swap_count(),
        measurements: program.measurements,
        barriers: program.barriers,
        gate_counts: c.gate_counts(),
    };
    if opts.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&output).map_err(|e| e.to_string())?
        );
    } else {
        println!("== {file} ==");
        println!("  OPENQASM        {}", output.version);
        println!("  qubits          {}", output.qubits);
        println!("  gates           {}", output.gates);
        println!("  2Q gates        {}", output.two_qubit_gates);
        println!("  depth           {}", output.depth);
        println!("  2Q depth        {}", output.two_qubit_depth);
        println!("  SWAPs           {}", output.swap_count);
        println!("  measurements    {}", output.measurements);
        println!("  barriers        {}", output.barriers);
        let histogram: Vec<String> = output
            .gate_counts
            .iter()
            .map(|(name, count)| format!("{name}:{count}"))
            .collect();
        println!("  histogram       {}", histogram.join(" "));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// devices / topologies / workloads
// ---------------------------------------------------------------------------

#[derive(serde::Serialize)]
struct DeviceRow {
    name: String,
    display: String,
    qubits: usize,
    diameter: usize,
    avg_distance: f64,
    avg_connectivity: f64,
    /// `"builtin"` for catalog topologies, the spec-file path otherwise.
    source: String,
}

/// `snailqc devices [list|show|validate]` — the device catalog: the built-in
/// topologies merged with every spec file on the search path.
fn cmd_devices(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("show") => devices_show(&args[1..]),
        Some("validate") => devices_validate(&args[1..]),
        Some("list") => devices_list(&args[1..]),
        // Bare `snailqc devices [--json]` lists, like `topologies` always did.
        _ => devices_list(args),
    }
}

/// `snailqc topologies` — kept as an alias of `snailqc devices list`.
fn cmd_topologies(args: &[String]) -> Result<(), String> {
    devices_list(args)
}

fn devices_list(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args, &[], &["json"])?;
    let registry = DeviceRegistry::with_default_paths();
    let mut rows = Vec::new();
    for entry in registry.entries() {
        let (device, source) = match &entry.source {
            DeviceSource::Builtin => (Device::from_catalog(&entry.name)?, "builtin".to_string()),
            DeviceSource::File(path) => match Device::from_spec_file(path) {
                Ok(device) => (device, path.display().to_string()),
                Err(e) => {
                    eprintln!("warning: skipping `{}`: {e}", path.display());
                    continue;
                }
            },
        };
        let metrics = device.graph().metrics();
        rows.push(DeviceRow {
            name: entry.name,
            display: device.label().to_string(),
            qubits: metrics.qubits,
            diameter: metrics.diameter,
            avg_distance: metrics.avg_distance,
            avg_connectivity: metrics.avg_connectivity,
            source,
        });
    }
    if opts.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{:<26} {:>6} {:>9} {:>8} {:>8}  source",
            "name", "qubits", "diameter", "avgD", "avgC"
        );
        for row in rows {
            println!(
                "{:<26} {:>6} {:>9} {:>8.2} {:>8.2}  {}",
                row.name,
                row.qubits,
                row.diameter,
                row.avg_distance,
                row.avg_connectivity,
                row.source
            );
        }
    }
    Ok(())
}

#[derive(serde::Serialize)]
struct DeviceShow {
    name: String,
    label: String,
    qubits: usize,
    edges: usize,
    diameter: usize,
    avg_distance: f64,
    avg_connectivity: f64,
    basis: Option<&'static str>,
    default_edge_error: f64,
    error_model: Option<ErrorModelSpec>,
    /// FNV-1a digest over the per-edge error rates — the routing-cache /
    /// store key component that changes when calibration changes.
    noise_digest: String,
    source: String,
}

fn devices_show(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args, &[], &["json"])?;
    let [arg] = opts.positional.as_slice() else {
        return Err("devices show needs exactly one <name-or-file> argument".into());
    };
    let registry = DeviceRegistry::with_default_paths();
    let device = registry.resolve(arg)?;
    let source = if arg.contains('/') || arg.ends_with(".json") || Path::new(arg).is_file() {
        arg.clone()
    } else if catalog::by_name(arg).is_some() {
        "builtin".to_string()
    } else {
        registry
            .find_spec(arg)
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "builtin".to_string())
    };
    let metrics = device.graph().metrics();
    let output = DeviceShow {
        name: arg.clone(),
        label: device.label().to_string(),
        qubits: metrics.qubits,
        edges: device.graph().edges().count(),
        diameter: metrics.diameter,
        avg_distance: metrics.avg_distance,
        avg_connectivity: metrics.avg_connectivity,
        basis: device.basis().map(basis_name),
        default_edge_error: device.graph().default_edge_error(),
        error_model: device.error_model().cloned(),
        noise_digest: format!("{:016x}", device.noise_digest()),
        source,
    };
    if opts.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&output).map_err(|e| e.to_string())?
        );
    } else {
        println!("== {} ==", output.label);
        println!("  source          {}", output.source);
        println!("  qubits          {}", output.qubits);
        println!("  edges           {}", output.edges);
        println!("  diameter        {}", output.diameter);
        println!("  avg distance    {:.2}", output.avg_distance);
        println!("  avg connectivity {:.2}", output.avg_connectivity);
        println!("  basis           {}", output.basis.unwrap_or("none"));
        println!(
            "  edge error      {:.2e} (default)",
            output.default_edge_error
        );
        println!("  noise digest    {}", output.noise_digest);
    }
    Ok(())
}

/// `snailqc devices validate <file-or-dir>...` — load every spec end-to-end
/// (parse, build the graph, resolve basis and error model) and report per
/// file; exits non-zero if any spec fails.
fn devices_validate(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args, &[], &[])?;
    let targets = if opts.positional.is_empty() {
        vec!["devices".to_string()]
    } else {
        opts.positional.clone()
    };
    let mut files = Vec::new();
    for target in &targets {
        let path = Path::new(target);
        if path.is_dir() {
            let mut found: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("reading `{target}`: {e}"))?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "json"))
                .collect();
            found.sort();
            files.extend(found);
        } else {
            files.push(PathBuf::from(target));
        }
    }
    if files.is_empty() {
        return Err(format!(
            "no .json specs found under: {}",
            targets.join(", ")
        ));
    }
    let mut failures = 0usize;
    for file in &files {
        match Device::from_spec_file(file) {
            Ok(device) => println!(
                "ok    {}  ({}, {} qubits)",
                file.display(),
                device.label(),
                device.num_qubits()
            ),
            Err(e) => {
                failures += 1;
                println!("FAIL  {}: {e}", file.display());
            }
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} device spec(s) failed validation",
            files.len()
        ));
    }
    println!("{} device spec(s) valid", files.len());
    Ok(())
}

// ---------------------------------------------------------------------------
// device-gen
// ---------------------------------------------------------------------------

/// `snailqc device-gen <family>` — emit a device-spec JSON file for a
/// parameterized topology family, ready to edit or feed back to `--device`.
fn cmd_device_gen(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(
        args,
        &[
            "qubits",
            "rows",
            "cols",
            "levels",
            "posts",
            "stride-a",
            "stride-b",
            "name",
            "display-name",
            "description",
            "basis",
            "error-model",
            "truncate",
            "out",
        ],
        &["round-robin", "expand"],
    )?;
    let [family] = opts.positional.as_slice() else {
        return Err(format!(
            "device-gen needs exactly one <family> argument ({GEN_FAMILIES})"
        ));
    };
    let generator = generator_from_flags(family, &opts)?;
    let full = generator
        .checked_qubits()
        .map_err(|e| format!("device-gen: {e}"))?;
    let truncate: Option<usize> = match opts.value("truncate") {
        None => None,
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| "--truncate: invalid value".to_string())?;
            if n == 0 || n > full {
                return Err(format!(
                    "--truncate must be in 1..={full} (the generated size), got {n}"
                ));
            }
            Some(n)
        }
    };
    let qubits = truncate.unwrap_or(full);
    let name = opts
        .value("name")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{}_{}", generator.spec_name().replace('-', "_"), qubits));
    let basis = match opts.value("basis") {
        Some(n) => parse_basis(n)?,
        None => None,
    };
    let mut spec = DeviceSpec {
        name,
        display_name: opts.value("display-name").map(str::to_string),
        description: opts.value("description").map(str::to_string),
        basis,
        topology: TopologySource::Generator {
            generator,
            qubits: truncate,
        },
        error_model: opts
            .value("error-model")
            .map(|m| snailqc::devices::ErrorModelRef::Preset(m.to_string())),
        error_model_at: None,
    };
    // `--expand` freezes the generator into an explicit edge list (with the
    // calibrated per-edge rates, if any), so the file stands alone.
    if opts.has("expand") {
        let graph = spec.build_graph().map_err(|e| e.to_string())?;
        let mut expanded = DeviceSpec::from_graph(spec.name.clone(), &graph);
        expanded.display_name = spec.display_name.clone().or(expanded.display_name);
        expanded.description = spec.description.clone();
        expanded.basis = spec.basis;
        if spec.error_model.is_some() {
            expanded.error_model = spec.error_model.clone();
        }
        spec = expanded;
    }
    // Self-check: whatever we emit must load back as a device (this is also
    // what validates an `--error-model` preset name).
    let text = spec.to_json();
    Device::from_spec_str(&text).map_err(|e| format!("generated spec failed validation: {e}"))?;
    emit_output(&text, opts.value("out"))
}

const GEN_FAMILIES: &str =
    "line | ring | complete | star | grid | grid-diagonals | hex | heavy-hex | hypercube | \
     tree | tree-rr | corral";

/// Maps a family name plus its sizing flags onto a validated generator,
/// accepting the same forgiving spellings as spec files.
fn generator_from_flags(family: &str, opts: &Options) -> Result<GeneratorSpec, String> {
    let need = |flag: &str| -> Result<usize, String> {
        opts.value(flag)
            .ok_or_else(|| format!("device-gen {family} needs --{flag} <N>"))?
            .parse::<usize>()
            .map_err(|_| format!("--{flag}: invalid value"))
    };
    let spec = match snailqc_util::normalize_name(family).as_str() {
        "line" => GeneratorSpec::Line {
            qubits: need("qubits")?,
        },
        "ring" => GeneratorSpec::Ring {
            qubits: need("qubits")?,
        },
        "complete" | "alltoall" | "fullyconnected" => GeneratorSpec::Complete {
            qubits: need("qubits")?,
        },
        "star" => GeneratorSpec::Star {
            qubits: need("qubits")?,
        },
        "grid" | "square" | "squarelattice" => GeneratorSpec::Grid {
            rows: need("rows")?,
            cols: need("cols")?,
        },
        "griddiagonals" | "latticealtdiagonals" => GeneratorSpec::GridDiagonals {
            rows: need("rows")?,
            cols: need("cols")?,
        },
        "hex" | "hexlattice" => GeneratorSpec::Hex {
            rows: need("rows")?,
            cols: need("cols")?,
        },
        "heavyhex" => GeneratorSpec::HeavyHex {
            rows: need("rows")?,
            cols: need("cols")?,
        },
        "hypercube" => GeneratorSpec::Hypercube {
            qubits: need("qubits")?,
        },
        "tree" => GeneratorSpec::Tree {
            levels: need("levels")?,
            round_robin: opts.has("round-robin"),
        },
        "treerr" => GeneratorSpec::Tree {
            levels: need("levels")?,
            round_robin: true,
        },
        "corral" => GeneratorSpec::Corral {
            posts: need("posts")?,
            stride_a: opts.numeric("stride-a", 1usize)?,
            stride_b: opts.numeric("stride-b", 1usize)?,
        },
        _ => return Err(format!("unknown family `{family}` ({GEN_FAMILIES})")),
    };
    Ok(spec)
}

fn cmd_workloads(_args: &[String]) -> Result<(), String> {
    println!("{:<16} description", "name");
    for (name, workload) in Workload::names().iter().zip(Workload::all()) {
        println!("{:<16} {}", name, workload.label());
    }
    Ok(())
}
