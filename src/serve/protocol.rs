//! Wire protocol of `snailqc serve`: line-delimited JSON-RPC.
//!
//! One request per line, one response per line, both UTF-8 JSON objects —
//! trivially scriptable from any language (`nc`, a Python `socket`, …) and
//! hand-rolled on the workspace's vendored `serde_json`, so the daemon adds
//! no dependencies.
//!
//! ## Frames
//!
//! Request: `{"id": <any JSON value>, "method": "<name>", "params": {…}}`.
//! The `id` is echoed verbatim in the response, so pipelined clients can
//! match responses arriving out of order (the server answers each request
//! as soon as its worker finishes, not in submission order).
//!
//! Success: `{"id": …, "result": {…}}`.
//! Failure: `{"id": …, "error": {"code": "<machine-readable>", "message": "<human>"}}`.
//!
//! Error codes: `bad_request` (unparseable frame or invalid params), `busy`
//! (job queue full — backpressure, retry later), `shutting_down` (drain in
//! progress), `transpile_failed` (the submitted circuit was rejected).

use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Builds a JSON object value from `(key, value)` pairs.
pub fn object(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A parsed request frame.
#[derive(Debug)]
pub struct Request {
    /// Client-chosen request id, echoed verbatim in the response.
    pub id: Value,
    /// Method name: `transpile`, `stats`, `ping` or `shutdown`.
    pub method: String,
    /// Method parameters; `{}` when omitted.
    pub params: Value,
}

/// Parses one request line. The error string is ready for a `bad_request`
/// response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let method = value
        .get("method")
        .and_then(Value::as_str)
        .ok_or("missing string field `method`")?
        .to_string();
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let params = match value.get("params") {
        None => Value::Object(vec![]),
        Some(p @ Value::Object(_)) => p.clone(),
        Some(_) => return Err("`params` must be an object".into()),
    };
    Ok(Request { id, method, params })
}

/// Renders a success response line (no trailing newline).
pub fn ok_response(id: &Value, result: Value) -> String {
    render(object(vec![("id", id.clone()), ("result", result)]))
}

/// Renders an error response line (no trailing newline).
pub fn error_response(id: &Value, code: &str, message: &str) -> String {
    render(object(vec![
        ("id", id.clone()),
        (
            "error",
            object(vec![
                ("code", Value::String(code.to_string())),
                ("message", Value::String(message.to_string())),
            ]),
        ),
    ]))
}

/// Renders a response value, degrading to a serialization-error frame
/// instead of panicking if the value is unrenderable (e.g. a non-finite
/// float smuggled into a report).
fn render(value: Value) -> String {
    serde_json::to_string(&value).unwrap_or_else(|e| {
        format!(
            r#"{{"id":null,"error":{{"code":"internal","message":"response serialization: {e}"}}}}"#
        )
    })
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// An RPC failure reported by the server (or a dead connection).
#[derive(Debug, Clone, PartialEq)]
pub struct RpcFailure {
    /// Machine-readable code (`busy`, `bad_request`, …); `transport` for
    /// connection-level failures.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for RpcFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// A blocking line-protocol client, used by `snailqc bench-serve`, the
/// integration tests, and available to library consumers.
pub struct Client {
    reader: BufReader<Box<dyn std::io::Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
}

impl Client {
    /// Connects over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Self::from_parts(Box::new(reader), Box::new(stream)))
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> std::io::Result<Self> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(Self::from_parts(Box::new(reader), Box::new(stream)))
    }

    fn from_parts(reader: Box<dyn std::io::Read + Send>, writer: Box<dyn Write + Send>) -> Self {
        Self {
            reader: BufReader::new(reader),
            writer,
            next_id: 0,
        }
    }

    /// Sends one request and blocks for its response, returning the
    /// `result` value or the server's error. Requests are issued serially
    /// per client, so the next line is always this request's response.
    pub fn call(&mut self, method: &str, params: Value) -> Result<Value, RpcFailure> {
        self.next_id += 1;
        let frame = object(vec![
            ("id", Value::UInt(self.next_id)),
            ("method", Value::String(method.to_string())),
            ("params", params),
        ]);
        let transport = |e: String| RpcFailure {
            code: "transport".into(),
            message: e,
        };
        let line = serde_json::to_string(&frame).map_err(|e| transport(e.to_string()))?;
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| transport(format!("send: {e}")))?;
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => Err(transport("server closed the connection".into())),
            Ok(_) => {
                let value =
                    serde_json::from_str(response.trim()).map_err(|e| transport(e.to_string()))?;
                if let Some(result) = value.get("result") {
                    return Ok(result.clone());
                }
                let error = value.get("error");
                let field = |name: &str| {
                    error
                        .and_then(|e| e.get(name))
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                Err(RpcFailure {
                    code: field("code"),
                    message: field("message"),
                })
            }
            Err(e) => Err(transport(format!("recv: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject_bad_frames() {
        let req = parse_request(r#"{"id": 3, "method": "ping", "params": {"a": 1}}"#).unwrap();
        assert_eq!(req.method, "ping");
        assert_eq!(req.id, Value::UInt(3));
        assert_eq!(req.params.get("a").and_then(Value::as_u64), Some(1));
        // Missing params defaults to {}; id defaults to null.
        let bare = parse_request(r#"{"method": "stats"}"#).unwrap();
        assert_eq!(bare.id, Value::Null);
        assert_eq!(bare.params, Value::Object(vec![]));
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"method": 3}"#,
            r#"{"method": "x", "params": 1}"#,
        ] {
            assert!(parse_request(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn responses_round_trip() {
        let ok = ok_response(&Value::UInt(7), object(vec![("ok", Value::Bool(true))]));
        let parsed = serde_json::from_str(&ok).unwrap();
        assert_eq!(parsed.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(
            parsed.get("result").and_then(|r| r.get("ok")),
            Some(&Value::Bool(true))
        );
        let err = error_response(&Value::Null, "busy", "queue full");
        let parsed = serde_json::from_str(&err).unwrap();
        let error = parsed.get("error").unwrap();
        assert_eq!(error.get("code").and_then(Value::as_str), Some("busy"));
    }
}
