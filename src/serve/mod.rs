//! `snailqc serve` — the warm-cache transpile daemon.
//!
//! The PR-5 [`RoutingCache`](snailqc_transpiler::RoutingCache) and the PR-3
//! [`SweepStore`] only pay off while the
//! process lives across requests; this module keeps it alive. A long-running
//! server speaks the line-delimited JSON-RPC protocol of [`protocol`] over
//! TCP or a Unix-domain socket and transpiles submitted OpenQASM (2.0 or
//! 3.0, auto-detected) on demand, keeping a pool of warm
//! [`Device`]s — with their routing caches resident — across requests.
//!
//! Production shape:
//!
//! * **Bounded job queue with backpressure.** Transpile jobs flow through a
//!   `sync_channel` of configurable capacity; when it is full the request is
//!   rejected immediately with a structured `busy` error instead of queueing
//!   unboundedly. Clients retry with their own policy.
//! * **Worker pool.** A fixed pool of worker threads (default: available
//!   parallelism) drains the queue. The vendored rayon stand-in offers only
//!   scoped fork-join parallelism, so the daemon's persistent pool is plain
//!   OS threads; rayon still parallelizes *inside* a single routing call
//!   (best-of-trials fan-out).
//! * **Bitwise reproducibility.** Every request carries (or defaults) a
//!   router seed, and the same (source, seed, configuration) produces a
//!   routed-instruction digest bitwise-identical to one-shot
//!   `snailqc transpile` — the caches never change results, they only skip
//!   recomputing them.
//! * **Metrics.** Every request is timed into the `snailqc-obs` registry;
//!   the `stats` RPC surfaces p50/p90/p99 latency, queue depth, cache hit
//!   rates (memory, `RoutingCache`, `SweepStore`) and request counters.
//! * **Shared store.** With a store file configured, reports persist across
//!   daemon restarts and are shared with the batch CLI — both sides key
//!   cells with [`source_cell_key`], and the store's append-only flush (PR
//!   7) makes the file safe for concurrent writers.
//! * **Graceful drain.** A `shutdown` RPC or SIGTERM/SIGINT stops accepting
//!   work, finishes every queued job, delivers the responses, flushes the
//!   store and exits.
//!
//! ```text
//! snailqc serve --tcp 127.0.0.1:7878 --workers 8 --store cache.jsonl
//! printf '%s\n' '{"id":1,"method":"transpile","params":{"source":"...","topology":"tree-20","seed":7}}' | nc 127.0.0.1 7878
//! ```

pub mod protocol;

use protocol::{error_response, object, ok_response, parse_request, Request};
use serde::Value;
use snailqc_circuit::Circuit;
use snailqc_core::device::Device;
use snailqc_core::noise::ErrorModelSpec;
use snailqc_core::registry::DeviceRegistry;
use snailqc_core::store::{source_cell_key, SweepStore};
use snailqc_decompose::BasisGate;
use snailqc_obs as obs;
use snailqc_qasm::QasmVersion;
use snailqc_topology::catalog;
use snailqc_transpiler::{LayoutStrategy, Pipeline, RouterConfig, TranspileReport};
use std::collections::HashMap;
use std::io::BufRead;
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Warm in-memory response entries kept before the cache is wholesale
/// cleared; bounds daemon memory on unbounded distinct-request streams.
const MEMORY_CACHE_CAP: usize = 4096;

/// Warm `Device`s kept in the pool; beyond this, devices are rebuilt per
/// request (correct, just cold).
const DEVICE_POOL_CAP: usize = 64;

/// Accept-loop poll interval (the listener runs non-blocking so drain
/// requests are noticed promptly).
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection read timeout; bounds how long a drain waits on an idle
/// client holding its connection open.
const READ_POLL: Duration = Duration::from_millis(100);

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// A TCP socket (`host:port`; port 0 picks an ephemeral port).
    Tcp(String),
    /// A Unix-domain socket at this path (removed on drain).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon configuration (see the CLI's `serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listening address.
    pub bind: Bind,
    /// Worker threads; 0 means available parallelism.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue rejects with `busy`.
    pub queue_capacity: usize,
    /// Optional shared `SweepStore` file (same format and keys as the batch
    /// CLI's `--store`).
    pub store: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            bind: Bind::Tcp("127.0.0.1:7878".into()),
            workers: 0,
            queue_capacity: 64,
            store: None,
        }
    }
}

/// The address a spawned server actually bound (useful with port 0).
#[derive(Debug, Clone)]
pub enum BoundAddr {
    /// Bound TCP socket address.
    Tcp(SocketAddr),
    /// Bound Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl std::fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundAddr::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            BoundAddr::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

// ---------------------------------------------------------------------------
// Digests
// ---------------------------------------------------------------------------

/// The canonical digest of a circuit's instruction stream: FNV-1a over its
/// OpenQASM 2.0 emission (which is deterministic and total for every routed
/// or translated circuit). Two circuits share a digest exactly when they
/// are gate-for-gate identical, so comparing the daemon's digest against a
/// one-shot `snailqc transpile` digest proves bitwise reproducibility.
pub fn circuit_digest(circuit: &Circuit) -> String {
    format!(
        "{:016x}",
        snailqc_util::fnv1a_64(snailqc_qasm::emit(circuit).as_bytes())
    )
}

// ---------------------------------------------------------------------------
// Request resolution
// ---------------------------------------------------------------------------

/// A fully resolved transpile request: device (from the warm pool), pipeline
/// (seed baked in), source text and output options.
struct TranspileSpec {
    source: String,
    device: Device,
    pipeline: Pipeline,
    seed: u64,
    emit: Option<QasmVersion>,
}

/// Canonical form of the `error_model` parameter, also the device-pool key
/// component for it.
enum ErrorModelParam {
    None,
    /// A named preset (`default`, `control`, `decoherence`, `calibrated`).
    Preset(String),
    /// An inline JSON object (rendered compactly for the pool key).
    Inline(String),
}

impl ErrorModelParam {
    fn canon(&self) -> &str {
        match self {
            ErrorModelParam::None => "",
            ErrorModelParam::Preset(name) => name,
            ErrorModelParam::Inline(json) => json,
        }
    }

    fn spec(&self) -> Result<Option<ErrorModelSpec>, String> {
        match self {
            ErrorModelParam::None => Ok(None),
            ErrorModelParam::Preset(name) => ErrorModelSpec::preset(name)
                .map(Some)
                .ok_or_else(|| format!("unknown error-model preset `{name}`")),
            ErrorModelParam::Inline(json) => ErrorModelSpec::from_json(json).map(Some),
        }
    }
}

fn param_u64(params: &Value, name: &str, default: u64) -> Result<u64, String> {
    match params.get(name) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{name}` must be a non-negative integer")),
    }
}

fn param_f64(params: &Value, name: &str, default: f64) -> Result<f64, String> {
    match params.get(name) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("`{name}` must be a number")),
    }
}

fn param_str<'a>(params: &'a Value, name: &str) -> Result<Option<&'a str>, String> {
    match params.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("`{name}` must be a string")),
    }
}

fn parse_basis(name: &str) -> Result<Option<BasisGate>, String> {
    BasisGate::by_name(name)
}

/// The machine a request targets: a built-in catalog topology (pooled by
/// normalized name) or device-spec JSON (pooled by content digest, so an
/// edited spec file is never served stale).
enum DeviceTarget<'a> {
    /// A built-in catalog name.
    Catalog(&'a str),
    /// Device-spec text — from a file, a search-path name, or an inline
    /// request object — plus the FNV-1a digest of that exact text.
    Spec { digest: u64, text: String },
}

impl DeviceTarget<'_> {
    /// The pool-key component identifying the machine.
    fn pool_id(&self) -> String {
        match self {
            DeviceTarget::Catalog(name) => snailqc_util::normalize_name(name),
            DeviceTarget::Spec { digest, .. } => format!("spec:{digest:016x}"),
        }
    }

    fn build(&self) -> Result<Device, String> {
        match self {
            DeviceTarget::Catalog(name) => Device::from_catalog(name),
            DeviceTarget::Spec { text, .. } => Device::from_spec_str(text),
        }
    }
}

/// Resolves the `device` / `topology` request params into a target.
/// `topology` (and a `device` naming a built-in) pools by name; anything
/// spec-backed is re-read on every request and pooled by content digest, so
/// editing a spec file on disk invalidates its warm entry automatically.
fn resolve_device_target(params: &Value) -> Result<DeviceTarget<'_>, String> {
    let device = params.get("device");
    let topology = param_str(params, "topology")?;
    let from_text = |text: String| {
        let digest = snailqc_util::fnv1a_64(text.as_bytes());
        DeviceTarget::Spec { digest, text }
    };
    match (device, topology) {
        (Some(_), Some(_)) => Err("`device` and `topology` are mutually exclusive".into()),
        (None, Some(name)) => Ok(DeviceTarget::Catalog(name)),
        (None, None) => {
            Err("transpile needs `device` or `topology` (see `snailqc devices`)".into())
        }
        (Some(Value::String(arg)), None) => {
            let path_like = arg.contains('/')
                || arg.ends_with(".json")
                || std::path::Path::new(arg.as_str()).is_file();
            if !path_like && catalog::by_name(arg).is_some() {
                return Ok(DeviceTarget::Catalog(arg));
            }
            let path = if path_like {
                PathBuf::from(arg.as_str())
            } else {
                DeviceRegistry::with_default_paths()
                    .find_spec(arg)
                    .ok_or_else(|| format!("unknown device `{arg}` (see `snailqc devices`)"))?
            };
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading device spec `{}`: {e}", path.display()))?;
            Ok(from_text(text))
        }
        (Some(inline @ Value::Object(_)), None) => {
            let text = serde_json::to_string(inline).map_err(|e| format!("device: {e}"))?;
            Ok(from_text(text))
        }
        (Some(_), None) => {
            Err("`device` must be a name, a spec-file path, or a spec object".into())
        }
    }
}

/// Resolves `transpile` params into a spec, pulling the device from the warm
/// pool (or building and pooling it). Mirrors the one-shot CLI's flag
/// resolution — same defaults, same derived error-weight — so the daemon and
/// `snailqc transpile` agree on every configuration axis.
fn resolve_spec(state: &ServerState, params: &Value) -> Result<TranspileSpec, String> {
    let source = param_str(params, "source")?
        .ok_or("transpile needs `source` (the QASM text)")?
        .to_string();
    let target = resolve_device_target(params)?;
    // Tri-state: absent inherits the spec's native basis; an explicit
    // `"none"` strips it; a gate name sets it.
    let basis = match param_str(params, "basis")? {
        None => None,
        Some(name) => Some(parse_basis(name)?),
    };
    let error_model = match params.get("error_model") {
        None | Some(Value::Null) => ErrorModelParam::None,
        Some(Value::String(name)) => ErrorModelParam::Preset(name.clone()),
        Some(inline @ Value::Object(_)) => ErrorModelParam::Inline(
            serde_json::to_string(inline).map_err(|e| format!("error_model: {e}"))?,
        ),
        Some(_) => return Err("`error_model` must be a preset name or an object".into()),
    };
    let device = state.warm_device(&target, basis, &error_model)?;
    // A spec can ship its own calibration; noise-aware scoring is the right
    // default whenever the device ends up carrying an error model.
    let has_error_model =
        !matches!(error_model, ErrorModelParam::None) || device.error_model().is_some();
    let error_weight = param_f64(
        params,
        "error_weight",
        if has_error_model { 1.0 } else { 0.0 },
    )?;
    if error_weight.is_nan() || error_weight < 0.0 {
        return Err("`error_weight` must be non-negative".into());
    }
    let layout = match param_str(params, "layout")?.unwrap_or("dense") {
        "dense" => LayoutStrategy::Dense,
        "trivial" => LayoutStrategy::Trivial,
        other => return Err(format!("unknown layout `{other}` (dense | trivial)")),
    };
    let trials = param_u64(params, "trials", 4)? as usize;
    let seed = param_u64(params, "seed", 11)?;
    let emit = match param_str(params, "emit")? {
        None => None,
        Some("qasm2") => Some(QasmVersion::V2),
        Some("qasm3") => Some(QasmVersion::V3),
        Some(other) => return Err(format!("unknown emit dialect `{other}` (qasm2 | qasm3)")),
    };

    let pipeline = Pipeline::builder()
        .layout(layout)
        .router(RouterConfig {
            trials,
            seed,
            error_weight,
            ..RouterConfig::default()
        })
        .build();
    Ok(TranspileSpec {
        source,
        device,
        pipeline,
        seed,
        emit,
    })
}

// ---------------------------------------------------------------------------
// Server state
// ---------------------------------------------------------------------------

/// A memoized transpile outcome (report + digests; the circuit itself is
/// not kept, so `emit` requests bypass this cache).
#[derive(Clone)]
struct CachedResult {
    report: TranspileReport,
    routed_digest: String,
    basis_digest: Option<String>,
}

/// One queued transpile job.
struct Job {
    id: Value,
    spec: TranspileSpec,
    /// The owning connection's response channel.
    reply: Sender<String>,
}

/// Everything shared between the acceptor, connections and workers.
struct ServerState {
    shutdown: AtomicBool,
    /// Job-queue sender; taken (and dropped) to start the drain, which
    /// closes the channel and lets workers exit after the backlog.
    queue: Mutex<Option<SyncSender<Job>>>,
    depth: AtomicUsize,
    queue_capacity: usize,
    workers: usize,
    devices: Mutex<HashMap<String, Device>>,
    memory: Mutex<HashMap<String, CachedResult>>,
    store: Option<Mutex<SweepStore>>,
    started: Instant,
    received: AtomicU64,
    completed: AtomicU64,
    busy_rejected: AtomicU64,
    failed: AtomicU64,
    memory_hits: AtomicU64,
    store_replayed: AtomicU64,
    active_connections: AtomicUsize,
}

impl ServerState {
    /// Starts the drain: stop accepting, close the job queue (workers finish
    /// the backlog, then exit). Idempotent.
    fn begin_drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        drop(self.queue.lock().expect("queue lock").take());
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Enqueues a job, or returns it with the error code to reply with.
    /// (The rejected job rides back in the `Err` so the caller can answer
    /// on its reply channel — the "large" variant is the point.)
    #[allow(clippy::result_large_err)]
    fn try_enqueue(&self, job: Job) -> Result<(), (Job, &'static str)> {
        let guard = self.queue.lock().expect("queue lock");
        match guard.as_ref() {
            None => Err((job, "shutting_down")),
            Some(tx) => {
                // Counted before the send: a worker may dequeue (and
                // decrement) the instant `try_send` returns, so the reverse
                // order would transiently underflow the gauge.
                self.depth.fetch_add(1, Ordering::SeqCst);
                match tx.try_send(job) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        self.depth.fetch_sub(1, Ordering::SeqCst);
                        match e {
                            TrySendError::Full(job) => Err((job, "busy")),
                            TrySendError::Disconnected(job) => Err((job, "shutting_down")),
                        }
                    }
                }
            }
        }
    }

    /// Fetches (or builds and pools) the warm device for a request. Pool
    /// hits share the device's `RoutingCache`, which is the daemon's whole
    /// reason to exist.
    fn warm_device(
        &self,
        target: &DeviceTarget<'_>,
        basis: Option<Option<BasisGate>>,
        error_model: &ErrorModelParam,
    ) -> Result<Device, String> {
        let basis_key = match basis {
            None => "inherit".to_string(),
            Some(explicit) => format!("{explicit:?}"),
        };
        let key = format!("{}|{}|{}", target.pool_id(), basis_key, error_model.canon());
        if let Some(device) = self.devices.lock().expect("device pool lock").get(&key) {
            obs::counter_add("serve.device_pool.hits", 1);
            return Ok(device.clone());
        }
        obs::counter_add("serve.device_pool.misses", 1);
        let mut device = target.build()?;
        if let Some(spec) = error_model.spec()? {
            device = device.with_error_model(spec)?;
        }
        match basis {
            None => {}
            Some(Some(gate)) => device = device.with_basis(gate),
            Some(None) => device = device.without_basis(),
        }
        let mut pool = self.devices.lock().expect("device pool lock");
        if pool.len() < DEVICE_POOL_CAP {
            pool.insert(key, device.clone());
        }
        Ok(device)
    }

    /// The `stats` RPC payload.
    fn stats_value(&self) -> Value {
        let snapshot = obs::snapshot();
        let latency = snapshot.histogram("serve.request_micros");
        let counter = |name: &str| Value::UInt(snapshot.counter(name).unwrap_or(0));
        let latency_micros = object(vec![
            ("count", Value::UInt(latency.map_or(0, |h| h.count))),
            ("mean", Value::Float(latency.map_or(0.0, |h| h.mean))),
            ("p50", Value::UInt(latency.map_or(0, |h| h.p50))),
            ("p90", Value::UInt(latency.map_or(0, |h| h.p90))),
            ("p99", Value::UInt(latency.map_or(0, |h| h.p99))),
            ("max", Value::UInt(latency.map_or(0, |h| h.max))),
        ]);
        let store = match &self.store {
            None => Value::Null,
            Some(store) => {
                let store = store.lock().expect("store lock");
                object(vec![
                    ("entries", Value::UInt(store.len() as u64)),
                    ("hits", Value::UInt(store.hits() as u64)),
                    ("misses", Value::UInt(store.misses() as u64)),
                    ("inserted", Value::UInt(store.inserted() as u64)),
                    (
                        "skipped_corrupt",
                        Value::UInt(store.skipped_corrupt() as u64),
                    ),
                ])
            }
        };
        object(vec![
            (
                "uptime_secs",
                Value::Float(self.started.elapsed().as_secs_f64()),
            ),
            ("workers", Value::UInt(self.workers as u64)),
            (
                "queue",
                object(vec![
                    (
                        "depth",
                        Value::UInt(self.depth.load(Ordering::SeqCst) as u64),
                    ),
                    ("capacity", Value::UInt(self.queue_capacity as u64)),
                ]),
            ),
            (
                "requests",
                object(vec![
                    (
                        "received",
                        Value::UInt(self.received.load(Ordering::SeqCst)),
                    ),
                    (
                        "completed",
                        Value::UInt(self.completed.load(Ordering::SeqCst)),
                    ),
                    (
                        "busy_rejected",
                        Value::UInt(self.busy_rejected.load(Ordering::SeqCst)),
                    ),
                    ("failed", Value::UInt(self.failed.load(Ordering::SeqCst))),
                ]),
            ),
            ("latency_micros", latency_micros),
            (
                "cache",
                object(vec![
                    (
                        "memory_entries",
                        Value::UInt(self.memory.lock().expect("memory lock").len() as u64),
                    ),
                    (
                        "memory_hits",
                        Value::UInt(self.memory_hits.load(Ordering::SeqCst)),
                    ),
                    (
                        "store_replayed",
                        Value::UInt(self.store_replayed.load(Ordering::SeqCst)),
                    ),
                    ("routing_cache_hits", counter("routing_cache.hits")),
                    ("routing_cache_misses", counter("routing_cache.misses")),
                    ("sweep_store_hits", counter("sweep_store.hits")),
                    ("sweep_store_misses", counter("sweep_store.misses")),
                    ("store", store),
                ]),
            ),
            (
                "devices_warm",
                Value::UInt(self.devices.lock().expect("device pool lock").len() as u64),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

/// Runs one transpile job to a response line. The cache ladder is: probe the
/// shared store (counts its hit/miss), then the in-memory digest cache, then
/// route for real — inserting into both caches and flushing the store.
fn handle_transpile(state: &ServerState, job: &Job) -> String {
    let started = Instant::now();
    let spec = &job.spec;
    let key = source_cell_key(&spec.source, spec.seed, &spec.device, &spec.pipeline);

    // Store probe first (even though the memory cache is cheaper) so shared-
    // store hit rates in `stats` reflect every replayable request.
    let store_report: Option<TranspileReport> = state
        .store
        .as_ref()
        .and_then(|store| store.lock().expect("store lock").get(&key));
    let memory_cached = if spec.emit.is_none() {
        state.memory.lock().expect("memory lock").get(&key).cloned()
    } else {
        // An `emit` request needs the routed circuit, which neither cache
        // keeps — recompute (identical output, just not skipped).
        None
    };

    let (report, routed_digest, basis_digest, qasm, cached) = if let Some(hit) = memory_cached {
        state.memory_hits.fetch_add(1, Ordering::SeqCst);
        obs::counter_add("serve.cache.memory_hits", 1);
        (
            hit.report,
            Some(hit.routed_digest),
            hit.basis_digest,
            None,
            "memory",
        )
    } else if let (Some(report), None) = (store_report, &spec.emit) {
        // Warm store, cold memory: a cell transpiled by the batch CLI or a
        // previous daemon run. The digest is not persisted, so it is omitted
        // here; resubmitting after this response stays a memory miss but
        // keeps replaying the store.
        state.store_replayed.fetch_add(1, Ordering::SeqCst);
        obs::counter_add("serve.cache.store_replayed", 1);
        (report, None, None, None, "store")
    } else {
        let outcome = snailqc_qasm::parse_any(&spec.source)
            .map_err(|e| e.to_string())
            .and_then(|program| {
                if spec.device.fits(&program.circuit) {
                    Ok(program.circuit)
                } else {
                    Err(format!(
                        "circuit has {} qubits but `{}` only has {}",
                        program.circuit.num_qubits(),
                        spec.device.graph().name(),
                        spec.device.num_qubits()
                    ))
                }
            });
        let circuit = match outcome {
            Ok(circuit) => circuit,
            Err(message) => {
                state.failed.fetch_add(1, Ordering::SeqCst);
                obs::counter_add("serve.requests.failed", 1);
                return error_response(&job.id, "transpile_failed", &message);
            }
        };
        let result = match spec.device.try_transpile(&circuit, &spec.pipeline) {
            Ok(result) => result,
            Err(e) => {
                state.failed.fetch_add(1, Ordering::SeqCst);
                obs::counter_add("serve.requests.failed", 1);
                return error_response(&job.id, "transpile_failed", &e.to_string());
            }
        };
        let routed_digest = circuit_digest(&result.routed.circuit);
        let basis_digest = result.translated.as_ref().map(circuit_digest);
        let qasm = spec.emit.map(|version| {
            let circuit = result.translated.as_ref().unwrap_or(&result.routed.circuit);
            snailqc_qasm::emit_versioned(circuit, version)
        });
        {
            let mut memory = state.memory.lock().expect("memory lock");
            if memory.len() >= MEMORY_CACHE_CAP {
                memory.clear();
            }
            memory.insert(
                key.clone(),
                CachedResult {
                    report: result.report,
                    routed_digest: routed_digest.clone(),
                    basis_digest: basis_digest.clone(),
                },
            );
        }
        if let Some(store) = &state.store {
            let mut store = store.lock().expect("store lock");
            store.insert(key.clone(), result.report);
            if let Err(err) = store.flush() {
                obs::counter_add("serve.store.write_errors", 1);
                eprintln!(
                    "snailqc serve: could not persist store {}: {err}",
                    store.path().display()
                );
            }
        }
        (
            result.report,
            Some(routed_digest),
            basis_digest,
            qasm,
            "none",
        )
    };

    let micros = started.elapsed().as_micros() as u64;
    obs::histogram_record("serve.request_micros", micros);
    state.completed.fetch_add(1, Ordering::SeqCst);
    obs::counter_add("serve.requests.completed", 1);
    let opt_string = |v: Option<String>| v.map(Value::String).unwrap_or(Value::Null);
    ok_response(
        &job.id,
        object(vec![
            ("report", serde_json::to_value(&report)),
            ("routed_digest", opt_string(routed_digest)),
            ("basis_digest", opt_string(basis_digest)),
            ("cached", Value::String(cached.to_string())),
            ("cache_key", Value::String(key)),
            ("seed", Value::UInt(spec.seed)),
            ("qasm", opt_string(qasm)),
            ("micros", Value::UInt(micros)),
        ]),
    )
}

/// Dispatches one request line from a connection.
fn handle_line(state: &Arc<ServerState>, line: &str, reply: &Sender<String>) {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(message) => {
            let _ = reply.send(error_response(&Value::Null, "bad_request", &message));
            return;
        }
    };
    state.received.fetch_add(1, Ordering::SeqCst);
    obs::counter_add("serve.requests.received", 1);
    let Request { id, method, params } = request;
    match method.as_str() {
        "ping" => {
            let _ = reply.send(ok_response(
                &id,
                object(vec![
                    ("ok", Value::Bool(true)),
                    (
                        "version",
                        Value::String(env!("CARGO_PKG_VERSION").to_string()),
                    ),
                ]),
            ));
        }
        "stats" => {
            let _ = reply.send(ok_response(&id, state.stats_value()));
        }
        "shutdown" => {
            let _ = reply.send(ok_response(
                &id,
                object(vec![("draining", Value::Bool(true))]),
            ));
            state.begin_drain();
        }
        "transpile" => match resolve_spec(state, &params) {
            Err(message) => {
                state.failed.fetch_add(1, Ordering::SeqCst);
                let _ = reply.send(error_response(&id, "bad_request", &message));
            }
            Ok(spec) => {
                let job = Job {
                    id,
                    spec,
                    reply: reply.clone(),
                };
                if let Err((job, code)) = state.try_enqueue(job) {
                    if code == "busy" {
                        state.busy_rejected.fetch_add(1, Ordering::SeqCst);
                        obs::counter_add("serve.requests.busy_rejected", 1);
                    }
                    let _ = reply.send(error_response(
                        &job.id,
                        code,
                        &format!("job queue rejected the request ({code})"),
                    ));
                }
            }
        },
        other => {
            let _ = reply.send(error_response(
                &id,
                "bad_request",
                &format!("unknown method `{other}` (transpile | stats | ping | shutdown)"),
            ));
        }
    }
}

/// Reads request lines from one connection until EOF, error, or drain.
/// Responses flow through `reply` to the connection's writer thread, so a
/// pipelining client gets each response as soon as its worker finishes.
fn connection_loop(
    state: Arc<ServerState>,
    mut reader: Box<dyn std::io::Read + Send>,
    reply: Sender<String>,
) {
    let mut reader = std::io::BufReader::new(&mut reader);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_line(&state, trimmed, &reply);
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Read timeout: `line` keeps any partial frame; just check
                // for a drain before blocking again.
                if state.draining() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Wires up the reader + writer thread pair for one accepted connection.
fn spawn_connection(
    state: &Arc<ServerState>,
    reader: Box<dyn std::io::Read + Send>,
    mut writer: Box<dyn std::io::Write + Send>,
) {
    state.active_connections.fetch_add(1, Ordering::SeqCst);
    let (reply_tx, reply_rx): (Sender<String>, Receiver<String>) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        // Exits when every sender (the reader below + any in-flight jobs)
        // is gone, so queued responses are always delivered before close.
        for response in reply_rx {
            if writer
                .write_all(format!("{response}\n").as_bytes())
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
        }
    });
    let state = Arc::clone(state);
    std::thread::spawn(move || {
        connection_loop(Arc::clone(&state), reader, reply_tx);
        state.active_connections.fetch_sub(1, Ordering::SeqCst);
    });
}

// ---------------------------------------------------------------------------
// Listeners
// ---------------------------------------------------------------------------

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(bind: &Bind) -> Result<(Self, BoundAddr), String> {
        match bind {
            Bind::Tcp(addr) => {
                let listener =
                    TcpListener::bind(addr).map_err(|e| format!("binding tcp `{addr}`: {e}"))?;
                let bound = listener.local_addr().map_err(|e| e.to_string())?;
                Ok((Listener::Tcp(listener), BoundAddr::Tcp(bound)))
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A dead previous daemon leaves the socket file behind;
                // binding over it needs the unlink first.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)
                    .map_err(|e| format!("binding unix socket `{}`: {e}", path.display()))?;
                Ok((
                    Listener::Unix(listener, path.clone()),
                    BoundAddr::Unix(path.clone()),
                ))
            }
        }
    }

    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(true),
        }
    }

    /// Accepts one connection, returning its split read/write halves.
    #[allow(clippy::type_complexity)]
    fn accept(
        &self,
    ) -> std::io::Result<(
        Box<dyn std::io::Read + Send>,
        Box<dyn std::io::Write + Send>,
    )> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(READ_POLL))?;
                let writer: TcpStream = stream.try_clone()?;
                Ok((Box::new(stream), Box::new(writer)))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(READ_POLL))?;
                let writer: UnixStream = stream.try_clone()?;
                Ok((Box::new(stream), Box::new(writer)))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A running daemon: the accept loop, worker pool and shared state. Obtain
/// one with [`Server::spawn`] (tests, embedding) or drive the whole
/// lifecycle with [`run`] (the CLI).
pub struct Server {
    state: Arc<ServerState>,
    addr: BoundAddr,
    acceptor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, starts the worker pool and the accept loop, and returns
    /// without blocking. The daemon enables the workspace observability
    /// layer — `stats` is metrics-backed.
    pub fn spawn(config: ServeConfig) -> Result<Self, String> {
        obs::enable();
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            config.workers
        };
        let queue_capacity = config.queue_capacity.max(1);
        let (listener, addr) = Listener::bind(&config.bind)?;
        listener
            .set_nonblocking()
            .map_err(|e| format!("listener nonblocking: {e}"))?;
        let (queue_tx, queue_rx) = sync_channel::<Job>(queue_capacity);
        let state = Arc::new(ServerState {
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(Some(queue_tx)),
            depth: AtomicUsize::new(0),
            queue_capacity,
            workers,
            devices: Mutex::new(HashMap::new()),
            memory: Mutex::new(HashMap::new()),
            store: config
                .store
                .as_ref()
                .map(|path| Mutex::new(SweepStore::open(path))),
            started: Instant::now(),
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            memory_hits: AtomicU64::new(0),
            store_replayed: AtomicU64::new(0),
            active_connections: AtomicUsize::new(0),
        });

        let queue_rx = Arc::new(Mutex::new(queue_rx));
        let worker_handles: Vec<_> = (0..workers)
            .map(|_| {
                let state = Arc::clone(&state);
                let queue_rx = Arc::clone(&queue_rx);
                std::thread::spawn(move || loop {
                    let job = queue_rx.lock().expect("queue rx lock").recv();
                    let Ok(job) = job else { break };
                    state.depth.fetch_sub(1, Ordering::SeqCst);
                    let response = handle_transpile(&state, &job);
                    let _ = job.reply.send(response);
                })
            })
            .collect();

        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                while !state.draining() {
                    match listener.accept() {
                        Ok((reader, writer)) => spawn_connection(&state, reader, writer),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => {
                            eprintln!("snailqc serve: accept error: {e}");
                            std::thread::sleep(ACCEPT_POLL);
                        }
                    }
                }
                // `listener` drops here, unlinking a Unix socket path.
            })
        };

        Ok(Self {
            state,
            addr,
            acceptor,
            workers: worker_handles,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// Requests a graceful drain (same effect as the `shutdown` RPC).
    pub fn shutdown(&self) {
        self.state.begin_drain();
    }

    /// True once a drain has been requested (RPC, signal, or
    /// [`Server::shutdown`]).
    pub fn draining(&self) -> bool {
        self.state.draining()
    }

    /// Blocks until a requested drain completes: the accept loop stops,
    /// workers finish the queued backlog, connections wind down and the
    /// store is flushed. Call [`Server::shutdown`] first (or let a
    /// `shutdown` RPC / signal do it).
    pub fn join(self) -> Result<(), String> {
        while !self.state.draining() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.state.begin_drain(); // idempotent; ensures the queue is closed
        self.acceptor
            .join()
            .map_err(|_| "accept thread panicked".to_string())?;
        for worker in self.workers {
            worker
                .join()
                .map_err(|_| "worker thread panicked".to_string())?;
        }
        // Connections notice the drain within one read-timeout tick; give
        // stragglers a bounded grace period rather than hanging forever.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.state.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        if let Some(store) = &self.state.store {
            let mut store = store.lock().expect("store lock");
            store
                .flush()
                .map_err(|e| format!("flushing store `{}`: {e}", store.path().display()))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Signals + blocking entry point
// ---------------------------------------------------------------------------

/// Set by the SIGTERM/SIGINT handler; polled by [`run`].
#[cfg(unix)]
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers that request a graceful drain. Calls
/// `signal(2)` through the C library std already links (the workspace
/// vendors no `libc` crate); the handler only stores to an atomic, which is
/// async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: installing an async-signal-safe handler (a single atomic
    // store) for signals whose default disposition is process death anyway.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Runs the daemon to completion: spawn, serve until a `shutdown` RPC or
/// SIGTERM/SIGINT, drain, exit. This is what `snailqc serve` calls.
pub fn run(config: ServeConfig) -> Result<(), String> {
    let server = Server::spawn(config)?;
    #[cfg(unix)]
    install_signal_handlers();
    eprintln!(
        "snailqc serve: listening on {} ({} workers, queue {})",
        server.addr(),
        server.state.workers,
        server.state.queue_capacity
    );
    loop {
        #[cfg(unix)]
        if SIGNALLED.load(Ordering::SeqCst) {
            eprintln!("snailqc serve: signal received, draining");
            server.shutdown();
            break;
        }
        if server.draining() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let completed = server.state.completed.load(Ordering::SeqCst);
    server.join()?;
    eprintln!("snailqc serve: drained after {completed} completed requests");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(queue_capacity: usize) -> (Arc<ServerState>, Receiver<Job>) {
        let (tx, rx) = sync_channel(queue_capacity);
        let state = Arc::new(ServerState {
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(Some(tx)),
            depth: AtomicUsize::new(0),
            queue_capacity,
            workers: 1,
            devices: Mutex::new(HashMap::new()),
            memory: Mutex::new(HashMap::new()),
            store: None,
            started: Instant::now(),
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            busy_rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            memory_hits: AtomicU64::new(0),
            store_replayed: AtomicU64::new(0),
            active_connections: AtomicUsize::new(0),
        });
        (state, rx)
    }

    fn test_job(state: &ServerState) -> Job {
        let params = protocol::object(vec![
            (
                "source",
                Value::String("OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n".into()),
            ),
            ("topology", Value::String("tree-20".into())),
        ]);
        let (reply, _keep) = std::sync::mpsc::channel();
        std::mem::forget(_keep); // keep the receiver alive for the test
        Job {
            id: Value::UInt(1),
            spec: resolve_spec(state, &params).unwrap(),
            reply,
        }
    }

    #[test]
    fn full_queue_rejects_with_busy_and_drain_with_shutting_down() {
        let (state, rx) = test_state(1);
        assert!(state.try_enqueue(test_job(&state)).is_ok());
        let (_, code) = state.try_enqueue(test_job(&state)).unwrap_err();
        assert_eq!(code, "busy");
        // Draining takes precedence over capacity.
        state.begin_drain();
        let (_, code) = state.try_enqueue(test_job(&state)).unwrap_err();
        assert_eq!(code, "shutting_down");
        drop(rx);
    }

    #[test]
    fn resolve_spec_mirrors_cli_defaults_and_rejects_bad_params() {
        let (state, _rx) = test_state(4);
        let params = protocol::object(vec![
            (
                "source",
                Value::String("OPENQASM 2.0;\nqreg q[2];\n".into()),
            ),
            ("topology", Value::String("tree-20".into())),
        ]);
        let spec = resolve_spec(&state, &params).unwrap();
        assert_eq!(spec.seed, 11);
        assert_eq!(spec.pipeline.router().trials, 4);
        assert_eq!(spec.pipeline.router().error_weight, 0.0);
        assert!(spec.emit.is_none());
        // An error model flips the default weight to 1.0, like the CLI.
        let noisy = protocol::object(vec![
            (
                "source",
                Value::String("OPENQASM 2.0;\nqreg q[2];\n".into()),
            ),
            ("topology", Value::String("tree-20".into())),
            ("error_model", Value::String("decoherence".into())),
        ]);
        let spec = resolve_spec(&state, &noisy).unwrap();
        assert_eq!(spec.pipeline.router().error_weight, 1.0);
        assert!(spec.device.error_model().is_some());
        for (name, value) in [
            ("topology", Value::String("no-such".into())),
            ("basis", Value::String("nope".into())),
            ("trials", Value::String("four".into())),
            ("layout", Value::String("spiral".into())),
            ("emit", Value::String("qasm4".into())),
            ("error_model", Value::UInt(3)),
        ] {
            let mut pairs = vec![
                (
                    "source".to_string(),
                    Value::String("OPENQASM 2.0;\nqreg q[2];\n".into()),
                ),
                ("topology".to_string(), Value::String("tree-20".into())),
            ];
            pairs.retain(|(k, _)| k != name);
            pairs.push((name.to_string(), value));
            let params = Value::Object(pairs);
            assert!(
                resolve_spec(&state, &params).is_err(),
                "bad `{name}` accepted"
            );
        }
    }

    #[test]
    fn warm_device_pool_shares_routing_caches() {
        let (state, _rx) = test_state(4);
        let a = state
            .warm_device(
                &DeviceTarget::Catalog("tree-20"),
                Some(Some(BasisGate::SqrtISwap)),
                &ErrorModelParam::None,
            )
            .unwrap();
        let b = state
            .warm_device(
                &DeviceTarget::Catalog("TREE_20"),
                Some(Some(BasisGate::SqrtISwap)),
                &ErrorModelParam::None,
            )
            .unwrap();
        // Forgiving name spellings normalize to one pool entry.
        assert_eq!(state.devices.lock().unwrap().len(), 1);
        assert_eq!(a, b);
    }
}
