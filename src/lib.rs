//! # snailqc
//!
//! A Rust reproduction of *"Co-Designed Architectures for Modular
//! Superconducting Quantum Computers"* (McKinney et al., HPCA 2023,
//! arXiv:2205.04387): SNAIL-enabled qubit topologies (modular 4-ary Trees,
//! Round-Robin Trees, Corrals), the `ⁿ√iSWAP` basis-gate family, and a full
//! transpilation / evaluation toolkit for comparing co-designed machines
//! against IBM-style (heavy-hex + CNOT) and Google-style (square lattice +
//! SYC) baselines.
//!
//! This crate is a façade that re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`math`] | `snailqc-math` | complex matrices, gate unitaries, Weyl-chamber/KAK analysis, Haar sampling |
//! | [`circuit`] | `snailqc-circuit` | circuit IR, cost metrics, statevector simulator |
//! | [`topology`] | `snailqc-topology` | coupling graphs and every topology of Tables 1–2 |
//! | [`workloads`] | `snailqc-workloads` | QV, QFT, QAOA, TIM, CDKM adder, GHZ generators |
//! | [`transpiler`] | `snailqc-transpiler` | the staged `Pipeline`: dense layout, stochastic SWAP routing, basis translation, `PassTrace` |
//! | [`decompose`] | `snailqc-decompose` | basis-gate counting, NuOp templates, decoherence model |
//! | [`devices`] | `snailqc-devices` | the declarative JSON device-spec format (topologies as data files) |
//! | [`qasm`] | `snailqc-qasm` | version-aware OpenQASM 2.0 / 3.0 parsers and emitter for external circuit interchange |
//! | [`sim`] | `snailqc-sim` | verification engines: bit-packed stabilizer tableau, Pauli propagation, routed-circuit equivalence checking |
//! | [`core`] | `snailqc-core` | `Device`, machines, sweeps, the sweep store and headline ratios |
//! | [`obs`] | `snailqc-obs` | tracing spans, metrics registry, Chrome-trace/JSON exporters |
//! | [`serve`] | (this crate) | the `snailqc serve` daemon: line-delimited JSON-RPC over TCP/Unix sockets with warm device/routing caches |
//!
//! ## Quick start
//!
//! A co-designed machine is one artifact — a topology, its calibrated noise
//! and its native basis gate — captured by [`Device`](core::device::Device).
//! Transpilation is a staged [`Pipeline`](transpiler::Pipeline) (layout →
//! routing → translation → analysis) whose translation stage defaults to
//! the device's native gate:
//!
//! ```
//! use snailqc::prelude::*;
//!
//! // A 12-qubit QFT on the SNAIL Corral with the native sqrt-iSWAP basis…
//! let circuit = Workload::Qft.generate(12, 7);
//! let corral = Device::from_catalog("corral12-16")
//!     .unwrap()
//!     .with_basis(BasisGate::SqrtISwap);
//! let pipeline = Pipeline::builder().seed(11).build();
//! let snail = corral.transpile(&circuit, &pipeline).report;
//!
//! // …versus the IBM-style baseline, built from the machine line-up.
//! let ibm_machine = Machine::ibm_baseline(SizeClass::Small);
//! let ibm = Device::from_machine(ibm_machine)
//!     .transpile(&circuit, &pipeline)
//!     .report;
//!
//! assert!(snail.swap_count <= ibm.swap_count);
//! ```
//!
//! Sweeps take a slice of devices ([`run_sweep`](core::sweep::run_sweep)),
//! and every run carries a [`PassTrace`](transpiler::PassTrace) with
//! per-stage timings and gate/SWAP deltas. For deeper introspection,
//! [`obs::enable`] turns on the workspace-wide observability layer: nested
//! tracing spans around every pipeline stage and routing trial, plus router
//! work counters and cache hit/miss metrics, exportable as Chrome
//! trace-event JSON ([`obs::chrome_trace`]) or a flat metrics snapshot
//! ([`obs::snapshot`]) — see the CLI's `--trace-out` / `--metrics-json`
//! flags and the README's Observability section.

#![warn(missing_docs)]

pub mod serve;

pub use snailqc_circuit as circuit;
pub use snailqc_core as core;
pub use snailqc_decompose as decompose;
pub use snailqc_devices as devices;
pub use snailqc_math as math;
pub use snailqc_obs as obs;
pub use snailqc_qasm as qasm;
pub use snailqc_sim as sim;
pub use snailqc_topology as topology;
pub use snailqc_transpiler as transpiler;
pub use snailqc_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use snailqc_circuit::{Circuit, Gate};
    pub use snailqc_core::device::Device;
    pub use snailqc_core::fidelity::{
        estimate_fidelity, estimate_fidelity_edges, ErrorModel, FidelityEstimate,
    };
    pub use snailqc_core::machine::{Machine, SizeClass};
    pub use snailqc_core::noise::ErrorModelSpec;
    pub use snailqc_core::store::SweepStore;
    pub use snailqc_core::sweep::{run_sweep, run_sweep_with_store, SweepConfig, SweepPoint};
    pub use snailqc_decompose::{BasisGate, NuOpDecomposer, StudyConfig};
    pub use snailqc_math::{weyl_coordinates, Matrix2, Matrix4, WeylCoordinates};
    pub use snailqc_qasm::{
        detect_version as detect_qasm_version, emit as emit_qasm, emit_v3 as emit_qasm_v3,
        emit_versioned as emit_qasm_versioned, parse as parse_qasm, parse3 as parse_qasm3,
        parse_any as parse_qasm_any, QasmProgram, QasmVersion,
    };
    pub use snailqc_sim::{verify_equivalent, Verdict};
    pub use snailqc_topology::{CouplingGraph, TopologyKind};
    pub use snailqc_transpiler::{
        BasisChoice, EdgeErrorSource, LayoutStrategy, PassTrace, Pipeline, RouterConfig,
        StageCounters, TranspileOptions,
    };
    pub use snailqc_workloads::Workload;
}
