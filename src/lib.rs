//! # snailqc
//!
//! A Rust reproduction of *"Co-Designed Architectures for Modular
//! Superconducting Quantum Computers"* (McKinney et al., HPCA 2023,
//! arXiv:2205.04387): SNAIL-enabled qubit topologies (modular 4-ary Trees,
//! Round-Robin Trees, Corrals), the `ⁿ√iSWAP` basis-gate family, and a full
//! transpilation / evaluation toolkit for comparing co-designed machines
//! against IBM-style (heavy-hex + CNOT) and Google-style (square lattice +
//! SYC) baselines.
//!
//! This crate is a façade that re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`math`] | `snailqc-math` | complex matrices, gate unitaries, Weyl-chamber/KAK analysis, Haar sampling |
//! | [`circuit`] | `snailqc-circuit` | circuit IR, cost metrics, statevector simulator |
//! | [`topology`] | `snailqc-topology` | coupling graphs and every topology of Tables 1–2 |
//! | [`workloads`] | `snailqc-workloads` | QV, QFT, QAOA, TIM, CDKM adder, GHZ generators |
//! | [`transpiler`] | `snailqc-transpiler` | dense layout, stochastic SWAP routing, basis translation |
//! | [`decompose`] | `snailqc-decompose` | basis-gate counting, NuOp templates, decoherence model |
//! | [`qasm`] | `snailqc-qasm` | OpenQASM 2.0 parser / emitter for external circuit interchange |
//! | [`core`] | `snailqc-core` | machines, sweeps and headline ratios (the co-design harness) |
//!
//! ## Quick start
//!
//! ```
//! use snailqc::prelude::*;
//!
//! // A 12-qubit QFT on the SNAIL Corral with the native sqrt-iSWAP basis…
//! let circuit = Workload::Qft.generate(12, 7);
//! let corral = snailqc::topology::catalog::corral12_16();
//! let options = TranspileOptions::with_basis(BasisGate::SqrtISwap);
//! let snail = transpile(&circuit, &corral, &options).report;
//!
//! // …versus the IBM-style baseline.
//! let heavy_hex = snailqc::topology::catalog::heavy_hex_20();
//! let ibm = transpile(&circuit, &heavy_hex, &TranspileOptions::with_basis(BasisGate::Cnot)).report;
//!
//! assert!(snail.swap_count <= ibm.swap_count);
//! ```

#![warn(missing_docs)]

pub use snailqc_circuit as circuit;
pub use snailqc_core as core;
pub use snailqc_decompose as decompose;
pub use snailqc_math as math;
pub use snailqc_qasm as qasm;
pub use snailqc_topology as topology;
pub use snailqc_transpiler as transpiler;
pub use snailqc_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use snailqc_circuit::{Circuit, Gate};
    pub use snailqc_core::fidelity::{
        estimate_fidelity, estimate_fidelity_edges, ErrorModel, FidelityEstimate,
    };
    pub use snailqc_core::machine::{Machine, SizeClass};
    pub use snailqc_core::noise::ErrorModelSpec;
    pub use snailqc_core::sweep::{run_codesign_sweep, run_swap_sweep, SweepConfig};
    pub use snailqc_decompose::{BasisGate, NuOpDecomposer, StudyConfig};
    pub use snailqc_math::{weyl_coordinates, Matrix2, Matrix4, WeylCoordinates};
    pub use snailqc_qasm::{emit as emit_qasm, parse as parse_qasm, QasmProgram};
    pub use snailqc_topology::{CouplingGraph, TopologyKind};
    pub use snailqc_transpiler::{
        transpile, EdgeErrorSource, LayoutStrategy, RouterConfig, TranspileOptions,
    };
    pub use snailqc_workloads::Workload;
}
