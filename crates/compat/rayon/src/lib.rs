//! Offline stand-in for `rayon`.
//!
//! Supplies the small parallel-iterator surface this workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` plus [`join`] — implemented
//! with `std::thread::scope` over contiguous chunks. `collect` preserves the
//! input order, so replacing a sequential `iter()` with `par_iter()` is
//! result-identical whenever the mapped function is deterministic per item.

use std::num::NonZeroUsize;

/// Number of worker threads (respects `RAYON_NUM_THREADS`, like the real
/// crate; defaults to the available parallelism).
fn num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join: worker panicked"))
    })
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator (the result of [`ParIter::map`]).
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each item through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let n = self.items.len();
        let threads = num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut results: Vec<Option<U>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let f = &self.f;
        std::thread::scope(|scope| {
            let mut rest = results.as_mut_slice();
            let mut offset = 0usize;
            while offset < n {
                let take = chunk.min(n - offset);
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let items = &self.items[offset..offset + take];
                scope.spawn(move || {
                    for (slot, item) in head.iter_mut().zip(items) {
                        *slot = Some(f(item));
                    }
                });
                offset += take;
            }
        });
        results
            .into_iter()
            .map(|slot| slot.expect("rayon: worker thread panicked"))
            .collect()
    }
}

/// Conversion of borrowed collections into parallel iterators.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: 'a;
    /// Starts a parallel iteration over borrowed items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let sequential: Vec<u64> = input.iter().map(|x| x * x + 1).collect();
        let parallel: Vec<u64> = input.par_iter().map(|x| x * x + 1).collect();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn par_map_handles_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }
}
