//! Offline stand-in for `serde_json`: JSON text rendering and parsing for
//! the vendored `serde` crate's [`Value`] tree.

pub use serde::Value;

/// Serialization / parse error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for Error {}

/// Maximum container nesting depth accepted by [`from_str`]; keeps malicious
/// or accidental deeply-nested input from overflowing the stack.
const MAX_DEPTH: usize = 128;

/// Parses JSON text into a [`Value`] tree (recursive descent; rejects
/// trailing garbage and nesting deeper than `MAX_DEPTH` levels).
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {}", c as char, *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error(format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos, depth + 1)? {
                    Value::String(s) => s,
                    _ => {
                        return Err(Error(format!(
                            "object key at byte {} must be a string",
                            *pos
                        )))
                    }
                };
                expect(bytes, pos, b':')?;
                entries.push((key, parse_value(bytes, pos, depth + 1)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {}", *pos))),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {}", *pos))),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let scalar = if (0xD800..0xDC00).contains(&code) {
                            // UTF-16 high surrogate: a `\uXXXX` low surrogate
                            // must follow; combine them into one scalar.
                            if bytes.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                return Err(Error("unpaired \\u surrogate".into()));
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error("invalid low \\u surrogate".into()));
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            code
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                        );
                    }
                    _ => return Err(Error(format!("invalid escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Reads the four hex digits of a `\uXXXX` escape starting at `at`.
fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, Error> {
    let hex = bytes
        .get(at..at + 4)
        .ok_or_else(|| Error("truncated \\u escape".into()))?;
    u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|_| Error("invalid \\u escape".into()))?,
        16,
    )
    .map_err(|_| Error("invalid \\u escape".into()))
}

/// Parses a number following the RFC 8259 grammar exactly:
/// `-? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?`.
///
/// Spec-invalid spellings that Rust's own `from_str` impls would happily
/// accept — a leading `+`, leading zeros, a bare trailing `.`/`e` — are
/// rejected here instead of leaking into round-tripped files. Numbers whose
/// `f64` value overflows to infinity (e.g. `1e999`) are rejected too: the
/// emitter has no representation for non-finite floats, so accepting them
/// would corrupt a parse → emit round trip.
fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    let mut i = *pos;
    if bytes.get(i) == Some(&b'-') {
        i += 1;
    }
    // Integer part: `0` alone or a nonzero digit run (no leading zeros).
    match bytes.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return Err(Error(format!("invalid number at byte {start}"))),
    }
    let mut is_float = false;
    if bytes.get(i) == Some(&b'.') {
        is_float = true;
        i += 1;
        if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
            return Err(Error(format!(
                "invalid number at byte {start}: expected digit after `.`"
            )));
        }
        while matches!(bytes.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    if matches!(bytes.get(i), Some(b'e' | b'E')) {
        is_float = true;
        i += 1;
        if matches!(bytes.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
            return Err(Error(format!(
                "invalid number at byte {start}: expected exponent digit"
            )));
        }
        while matches!(bytes.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..i]).expect("ascii number");
    *pos = i;
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        // Integers beyond 64 bits fall through to f64 below.
    }
    let f: f64 = text
        .parse()
        .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))?;
    if !f.is_finite() {
        return Err(Error(format!(
            "number `{text}` at byte {start} overflows f64 to a non-finite value"
        )));
    }
    Ok(Value::Float(f))
}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Renders `value` as compact JSON. Errors on non-finite floats (JSON has
/// no representation for them; emitting `null` instead used to silently
/// corrupt round-tripped store and metrics lines).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (two-space indent). Same
/// non-finite float policy as [`to_string`].
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format_float(*f));
            } else {
                return Err(Error(format!(
                    "non-finite float `{f}` has no JSON representation"
                )));
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
            for (i, item) in items.iter().enumerate() {
                sep(out, indent, depth + 1, i > 0);
                write_value(item, out, indent, depth + 1)?;
            }
            Ok(())
        })?,
        Value::Object(entries) => {
            write_seq(out, indent, depth, entries.is_empty(), '{', '}', |out| {
                for (i, (k, item)) in entries.iter().enumerate() {
                    sep(out, indent, depth + 1, i > 0);
                    write_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(item, out, indent, depth + 1)?;
                }
                Ok(())
            })?
        }
    }
    Ok(())
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if !empty {
        body(out)?;
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
    Ok(())
}

fn sep(out: &mut String, indent: Option<usize>, depth: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn format_float(f: f64) -> String {
    let s = format!("{f}");
    // `{}` prints integral floats without a decimal point; that is still
    // valid JSON, but keep the float-ness explicit for readability.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Span-carrying JSON parsing: the same strict RFC 8259 grammar as
/// [`from_str`], but every value — and every object key — records the byte
/// range it occupies in the source text. Higher layers (device-spec
/// validation) use the spans to report `line:col` diagnostics against
/// user-authored files instead of a bare "invalid spec".
pub mod spanned {
    use super::{skip_ws, Value, MAX_DEPTH};

    /// A parse error carrying the byte offset where it was detected; feed
    /// the offset to [`line_col`] to render a `line:col` position.
    #[derive(Debug)]
    pub struct SpanError {
        /// Human-readable description of what went wrong.
        pub message: String,
        /// Byte offset into the source text.
        pub at: usize,
    }

    impl std::fmt::Display for SpanError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }
    impl std::error::Error for SpanError {}

    fn err(message: impl Into<String>, at: usize) -> SpanError {
        SpanError {
            message: message.into(),
            at,
        }
    }

    /// A parsed JSON value annotated with its byte span `[start, end)` in
    /// the source text.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Spanned {
        /// The value itself (children of containers are themselves spanned).
        pub value: SpannedValue,
        /// Byte offset of the value's first character.
        pub start: usize,
        /// Byte offset one past the value's last character.
        pub end: usize,
    }

    /// The span-annotated analogue of [`Value`].
    #[derive(Debug, Clone, PartialEq)]
    pub enum SpannedValue {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A negative integer.
        Int(i64),
        /// A non-negative integer.
        UInt(u64),
        /// A finite float.
        Float(f64),
        /// A string.
        String(String),
        /// An array of spanned values.
        Array(Vec<Spanned>),
        /// Key/value entries in source order; keys carry their own spans.
        Object(Vec<(SpannedKey, Spanned)>),
    }

    /// An object key with the byte span of its (quoted) source text.
    #[derive(Debug, Clone, PartialEq)]
    pub struct SpannedKey {
        /// The decoded key string.
        pub name: String,
        /// Byte offset of the opening quote.
        pub start: usize,
        /// Byte offset one past the closing quote.
        pub end: usize,
    }

    impl Spanned {
        /// Strips the spans, yielding the plain [`Value`] tree — used when a
        /// validated subtree is handed on to span-unaware machinery.
        pub fn to_value(&self) -> Value {
            match &self.value {
                SpannedValue::Null => Value::Null,
                SpannedValue::Bool(b) => Value::Bool(*b),
                SpannedValue::Int(i) => Value::Int(*i),
                SpannedValue::UInt(u) => Value::UInt(*u),
                SpannedValue::Float(f) => Value::Float(*f),
                SpannedValue::String(s) => Value::String(s.clone()),
                SpannedValue::Array(items) => {
                    Value::Array(items.iter().map(Spanned::to_value).collect())
                }
                SpannedValue::Object(entries) => Value::Object(
                    entries
                        .iter()
                        .map(|(k, v)| (k.name.clone(), v.to_value()))
                        .collect(),
                ),
            }
        }

        /// The JSON type name of this value, for "expected X, found Y"
        /// diagnostics.
        pub fn type_name(&self) -> &'static str {
            match &self.value {
                SpannedValue::Null => "null",
                SpannedValue::Bool(_) => "boolean",
                SpannedValue::Int(_) | SpannedValue::UInt(_) => "integer",
                SpannedValue::Float(_) => "number",
                SpannedValue::String(_) => "string",
                SpannedValue::Array(_) => "array",
                SpannedValue::Object(_) => "object",
            }
        }
    }

    /// Parses JSON text into a span-annotated tree. Accepts exactly the
    /// inputs [`from_str`](super::from_str) accepts (same grammar, same
    /// depth limit, same trailing-garbage rejection).
    pub fn from_str(text: &str) -> Result<Spanned, SpanError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_spanned(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(format!("trailing characters at byte {pos}"), pos));
        }
        Ok(value)
    }

    /// Converts a byte offset into a 1-based `(line, column)` position.
    /// Columns count bytes within the line, which matches how editors
    /// address ASCII spec files. Offsets past the end clamp to the last
    /// position.
    pub fn line_col(text: &str, byte: usize) -> (usize, usize) {
        let byte = byte.min(text.len());
        let upto = &text.as_bytes()[..byte];
        let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + byte - upto.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        (line, col)
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), SpanError> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(err(format!("expected `{}`", c as char), *pos))
        }
    }

    fn parse_spanned(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Spanned, SpanError> {
        if depth > MAX_DEPTH {
            return Err(err(format!("nesting deeper than {MAX_DEPTH} levels"), *pos));
        }
        skip_ws(bytes, pos);
        let start = *pos;
        let spanned = |value: SpannedValue, end: usize| Spanned { value, start, end };
        match bytes.get(*pos) {
            None => Err(err("unexpected end of input", start)),
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(spanned(SpannedValue::Object(entries), *pos));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key_start = *pos;
                    if bytes.get(*pos) != Some(&b'"') {
                        return Err(err("object key must be a string", key_start));
                    }
                    let name = super::parse_string(bytes, pos)
                        .map_err(|e| err(e.to_string(), key_start))?;
                    let key = SpannedKey {
                        name,
                        start: key_start,
                        end: *pos,
                    };
                    expect(bytes, pos, b':')?;
                    entries.push((key, parse_spanned(bytes, pos, depth + 1)?));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(spanned(SpannedValue::Object(entries), *pos));
                        }
                        _ => return Err(err("expected `,` or `}`", *pos)),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(spanned(SpannedValue::Array(items), *pos));
                }
                loop {
                    items.push(parse_spanned(bytes, pos, depth + 1)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(spanned(SpannedValue::Array(items), *pos));
                        }
                        _ => return Err(err("expected `,` or `]`", *pos)),
                    }
                }
            }
            Some(b'"') => {
                let s = super::parse_string(bytes, pos).map_err(|e| err(e.to_string(), start))?;
                Ok(spanned(SpannedValue::String(s), *pos))
            }
            Some(c @ (b't' | b'f' | b'n')) => {
                let (lit, value) = match c {
                    b't' => ("true", SpannedValue::Bool(true)),
                    b'f' => ("false", SpannedValue::Bool(false)),
                    _ => ("null", SpannedValue::Null),
                };
                if bytes[*pos..].starts_with(lit.as_bytes()) {
                    *pos += lit.len();
                    Ok(spanned(value, *pos))
                } else {
                    Err(err("invalid literal", start))
                }
            }
            Some(_) => {
                let value =
                    match super::parse_number(bytes, pos).map_err(|e| err(e.to_string(), start))? {
                        Value::Int(i) => SpannedValue::Int(i),
                        Value::UInt(u) => SpannedValue::UInt(u),
                        Value::Float(f) => SpannedValue::Float(f),
                        _ => unreachable!("parse_number yields numbers"),
                    };
                Ok(spanned(value, *pos))
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn spans_cover_values_and_keys() {
            let text = r#"{"a": [1, 2.5], "bb": "x"}"#;
            let root = from_str(text).expect("parses");
            assert_eq!((root.start, root.end), (0, text.len()));
            let SpannedValue::Object(entries) = &root.value else {
                panic!("object expected");
            };
            let (ka, va) = &entries[0];
            assert_eq!(&text[ka.start..ka.end], "\"a\"");
            assert_eq!(&text[va.start..va.end], "[1, 2.5]");
            let SpannedValue::Array(items) = &va.value else {
                panic!("array expected");
            };
            assert_eq!(&text[items[0].start..items[0].end], "1");
            assert_eq!(&text[items[1].start..items[1].end], "2.5");
            let (kb, vb) = &entries[1];
            assert_eq!(&text[kb.start..kb.end], "\"bb\"");
            assert_eq!(vb.value, SpannedValue::String("x".into()));
        }

        #[test]
        fn stripping_spans_matches_plain_parser() {
            let text = r#"{"a": [1, -2, 2.5, true, null], "b": {"c": "d"}}"#;
            assert_eq!(
                from_str(text).unwrap().to_value(),
                super::super::from_str(text).unwrap()
            );
        }

        #[test]
        fn rejects_what_the_plain_parser_rejects() {
            for bad in [
                "",
                "{",
                "[1,",
                "{\"a\" 1}",
                "12 34",
                "\"open",
                "{1: 2}",
                "01",
                "+1",
                "1.",
                "1e999",
            ] {
                assert!(from_str(bad).is_err(), "`{bad}` should not parse");
                assert!(
                    super::super::from_str(bad).is_err(),
                    "`{bad}` rejected only by the spanned parser"
                );
            }
        }

        #[test]
        fn error_offsets_point_at_the_problem() {
            let text = "{\"a\": 1,\n \"b\": 01}";
            // `01` parses as `0` followed by a stray `1`; the error points
            // at the stray digit.
            let e = from_str(text).expect_err("leading zero rejected");
            assert_eq!(line_col(text, e.at), (2, 8));
        }

        #[test]
        fn line_col_is_one_based_and_clamped() {
            let text = "ab\ncd";
            assert_eq!(line_col(text, 0), (1, 1));
            assert_eq!(line_col(text, 2), (1, 3));
            assert_eq!(line_col(text, 3), (2, 1));
            assert_eq!(line_col(text, 99), (2, 3));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&Some(1.5f64)).unwrap(), "1.5");
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&("a", 2u8)).unwrap(), "[\"a\",2]");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn pretty_printing_indents() {
        let pretty = to_string_pretty(&vec![1u8]).unwrap();
        assert_eq!(pretty, "[\n  1\n]");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("1.5e-3").unwrap(), Value::Float(1.5e-3));
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("\"hi\\n\"").unwrap(), Value::String("hi\n".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let v = from_str(r#"{"a": [1, 2.5, {"b": "c"}], "d": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d").unwrap(), &Value::Object(vec![]));
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let original = from_str(r#"{"edges": [[0, 1, 0.01]], "seed": 7, "x": -1.25}"#).unwrap();
        let text = to_string(&original).unwrap();
        assert_eq!(from_str(&text).unwrap(), original);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "12 34", "\"open", "{1: 2}"] {
            assert!(from_str(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn rejects_spec_invalid_numbers() {
        // Rust's u64/f64 `from_str` would accept several of these ("+1",
        // "1.", ".5"); the JSON grammar does not, and neither do we.
        for bad in [
            "+1", "+0", "01", "007", "-01", "1.", ".5", "-.5", "1e", "1e+", "1e-", "-", "--1",
            "1.e3", "0x10", "1_000",
        ] {
            assert!(from_str(bad).is_err(), "`{bad}` should not parse");
        }
        // Inside containers too — the greedy old scanner used to slurp these.
        assert!(from_str("[+1]").is_err());
        assert!(from_str(r#"{"a": 01}"#).is_err());
    }

    #[test]
    fn rejects_numbers_that_overflow_to_non_finite() {
        for bad in ["1e999", "-1e999", "1e308999"] {
            let err = from_str(bad).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{err}");
        }
        // The largest finite doubles still parse.
        assert_eq!(from_str("1e308").unwrap(), Value::Float(1e308));
        assert_eq!(
            from_str("-1.7976931348623157e308").unwrap().as_f64(),
            Some(f64::MIN)
        );
    }

    #[test]
    fn accepts_every_spec_valid_number_shape() {
        assert_eq!(from_str("0").unwrap(), Value::UInt(0));
        assert_eq!(from_str("-0").unwrap(), Value::Int(0));
        assert_eq!(from_str("1e+5").unwrap(), Value::Float(1e5));
        assert_eq!(from_str("1E-5").unwrap(), Value::Float(1e-5));
        assert_eq!(from_str("0.25").unwrap(), Value::Float(0.25));
        assert_eq!(from_str("-0.5e-2").unwrap(), Value::Float(-0.005));
        // 64-bit overflow on a plain integer widens to f64 instead of failing.
        assert_eq!(
            from_str("123456789012345678901234567890").unwrap(),
            Value::Float(1.2345678901234568e29)
        );
        assert_eq!(
            from_str(&u64::MAX.to_string()).unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(
            from_str(&i64::MIN.to_string()).unwrap(),
            Value::Int(i64::MIN)
        );
    }

    #[test]
    fn non_finite_floats_are_an_emission_error_not_null() {
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let err = to_string(&bad).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{err}");
            assert!(to_string_pretty(&vec![bad]).is_err());
        }
        // Finite floats are unaffected (integral ones keep the `.0` suffix).
        assert_eq!(to_string(&f64::MAX).unwrap(), format!("{}.0", f64::MAX));
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn parses_utf16_surrogate_pairs() {
        // The standard JSON encoding of non-BMP characters (e.g. emoji),
        // both as a raw UTF-8 scalar and as a \uXXXX surrogate pair.
        assert_eq!(from_str(r#""😀""#).unwrap(), Value::String("😀".into()));
        assert_eq!(
            from_str(r#""\uD83D\uDE00""#).unwrap(),
            Value::String("😀".into())
        );
        assert!(from_str(r#""\uD83D""#).is_err(), "unpaired high surrogate");
        assert!(from_str(r#""\uD83DA""#).is_err(), "bad low surrogate");
        assert!(from_str(r#""\uDE00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_pathological_nesting_gracefully() {
        let deep = "[".repeat(100_000);
        let err = from_str(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // A reasonable depth still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn numeric_accessors_widen() {
        assert_eq!(from_str("3").unwrap().as_f64(), Some(3.0));
        assert_eq!(from_str("3").unwrap().as_u64(), Some(3));
        assert_eq!(from_str("-3").unwrap().as_u64(), None);
        assert_eq!(from_str("2.5").unwrap().as_f64(), Some(2.5));
    }
}
