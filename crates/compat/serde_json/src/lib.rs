//! Offline stand-in for `serde_json`: JSON text rendering for the vendored
//! `serde` crate's [`Value`] tree.

pub use serde::Value;

/// Serialization error (kept for API compatibility; rendering never fails).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for Error {}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format_float(*f));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
            for (i, item) in items.iter().enumerate() {
                sep(out, indent, depth + 1, i > 0);
                write_value(item, out, indent, depth + 1);
            }
        }),
        Value::Object(entries) => {
            write_seq(out, indent, depth, entries.is_empty(), '{', '}', |out| {
                for (i, (k, item)) in entries.iter().enumerate() {
                    sep(out, indent, depth + 1, i > 0);
                    write_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(item, out, indent, depth + 1);
                }
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if !empty {
        body(out);
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn sep(out: &mut String, indent: Option<usize>, depth: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn format_float(f: f64) -> String {
    let s = format!("{f}");
    // `{}` prints integral floats without a decimal point; that is still
    // valid JSON, but keep the float-ness explicit for readability.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_containers() {
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&Some(1.5f64)).unwrap(), "1.5");
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_string(&("a", 2u8)).unwrap(), "[\"a\",2]");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn pretty_printing_indents() {
        let pretty = to_string_pretty(&vec![1u8]).unwrap();
        assert_eq!(pretty, "[\n  1\n]");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
    }
}
