//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use (`Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! the `criterion_group!` / `criterion_main!` macros and [`black_box`]) as a
//! simple wall-clock harness: each benchmark runs a short warm-up followed by
//! `sample_size` timed iterations and prints the mean time per iteration.
//! There is no statistical analysis or HTML report.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            name: format!("{function}/{parameter}"),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, running a small warm-up then `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

fn print_result(name: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "µs")
    } else {
        (mean_ns, "ns")
    };
    println!("{name:<50} time: {value:>10.3} {unit}/iter");
}

fn run_bench(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        last_mean_ns: 0.0,
    };
    f(&mut bencher);
    print_result(name, bencher.last_mean_ns);
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_bench(&name, self.samples, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.name);
        run_bench(&name, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 20,
            _criterion: self,
        }
    }

    /// Benchmarks `f` under `id` at the top level.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.to_string(), 20, &mut f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("f", |b| b.iter(|| calls += 1));
            group.bench_with_input(BenchmarkId::new("f", "p"), &7usize, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        assert!(calls >= 3, "sample iterations should have run");
        c.bench_function("top", |b| b.iter(|| black_box(1 + 1)));
    }
}
