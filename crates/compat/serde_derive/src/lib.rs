//! Offline stand-in for `serde_derive`.
//!
//! Provides `#[derive(Serialize)]` for the vendored `serde` crate without
//! depending on `syn`/`quote` (the build environment has no network access).
//! The parser handles exactly the shapes this workspace uses:
//!
//! * structs with named fields — serialized as a JSON object in field order;
//! * enums with unit variants — serialized as the variant name string;
//! * enum tuple variants — serialized as `{"Variant": [fields...]}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (kind, name, body) = parse_item(&tokens);
    let code = match kind.as_str() {
        "struct" => derive_struct(&name, &body),
        "enum" => derive_enum(&name, &body),
        other => panic!("derive(Serialize): unsupported item kind `{other}`"),
    };
    code.parse()
        .expect("derive(Serialize): generated code must parse")
}

/// Finds the `struct`/`enum` keyword, the item name and the brace body.
fn parse_item(tokens: &[TokenTree]) -> (String, String, Vec<TokenTree>) {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attribute
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let kind = id.to_string();
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("derive(Serialize): expected item name, got {other:?}"),
                };
                for t in &tokens[i + 2..] {
                    if let TokenTree::Group(g) = t {
                        if g.delimiter() == Delimiter::Brace {
                            return (kind, name, g.stream().into_iter().collect());
                        }
                    }
                    if let TokenTree::Punct(p) = t {
                        if p.as_char() == ';' {
                            return (kind, name, Vec::new()); // unit struct
                        }
                    }
                }
                panic!("derive(Serialize): no body found for `{name}`");
            }
            _ => i += 1,
        }
    }
    panic!("derive(Serialize): no struct or enum found");
}

/// Extracts named-field identifiers from a struct body, skipping attributes,
/// visibility and field types (tracking `<`/`>` depth so commas inside
/// generics do not split fields).
fn struct_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                // Skip `: Type` up to the next top-level comma.
                let mut angle = 0i32;
                i += 1;
                while i < body.len() {
                    if let TokenTree::Punct(p) = &body[i] {
                        match p.as_char() {
                            '<' => angle += 1,
                            '>' => angle -= 1,
                            ',' if angle == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
            }
            other => panic!("derive(Serialize): unexpected token in struct body: {other:?}"),
        }
    }
    fields
}

fn derive_struct(name: &str, body: &[TokenTree]) -> String {
    let fields = struct_fields(body);
    let mut pushes = String::new();
    for f in &fields {
        pushes.push_str(&format!(
            "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
         {pushes}\
         ::serde::Value::Object(fields)\n\
         }}\n}}\n"
    )
}

/// One enum variant: name plus tuple-field count (0 for unit variants).
fn enum_variants(body: &[TokenTree]) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let mut arity = 0;
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    match g.delimiter() {
                        Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            if !inner.is_empty() {
                                arity = 1;
                                let mut angle = 0i32;
                                for t in &inner {
                                    if let TokenTree::Punct(p) = t {
                                        match p.as_char() {
                                            '<' => angle += 1,
                                            '>' => angle -= 1,
                                            ',' if angle == 0 => arity += 1,
                                            _ => {}
                                        }
                                    }
                                }
                            }
                            i += 1;
                        }
                        Delimiter::Brace => {
                            panic!("derive(Serialize): struct enum variants are not supported")
                        }
                        _ => {}
                    }
                }
                variants.push((name, arity));
            }
            other => panic!("derive(Serialize): unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

fn derive_enum(name: &str, body: &[TokenTree]) -> String {
    let variants = enum_variants(body);
    let mut arms = String::new();
    for (v, arity) in &variants {
        if *arity == 0 {
            arms.push_str(&format!(
                "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"
            ));
        } else {
            let binders: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
            let pat = binders.join(", ");
            let values: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            arms.push_str(&format!(
                "{name}::{v}({pat}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                 ::serde::Value::Array(vec![{}]))]),\n",
                values.join(", ")
            ));
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}
