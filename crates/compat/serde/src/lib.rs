//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this crate supplies the
//! small slice of serde that the workspace uses: a [`Serialize`] trait that
//! lowers values into an in-memory JSON [`Value`] tree, plus the
//! `#[derive(Serialize)]` macro re-exported from the vendored `serde_derive`.
//! The companion `serde_json` crate renders [`Value`] to text.

pub use serde_derive::Serialize;

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A double; non-finite values have no JSON representation and are
    /// rejected by `serde_json::to_string` at serialization time.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value of `key` when `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `f64` (integers widen losslessly enough for
    /// configuration data).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The numeric value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The string slice when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice when `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Types that can lower themselves into a JSON [`Value`].
pub trait Serialize {
    /// Builds the JSON value tree for `self`.
    fn to_value(&self) -> Value;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);
impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
