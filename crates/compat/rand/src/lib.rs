//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the `rand` API this workspace uses — `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_bool`],
//! [`Rng::gen_range`] and [`seq::SliceRandom::shuffle`] — on top of a
//! xoshiro256** generator with splitmix64 seeding. Streams are deterministic
//! per seed (the numbers differ from the real `rand` crate, which only shifts
//! which random instances the seeded studies sample).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample(rng) as f32
    }
}
impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // Rounding of start + x·(end-start) can land exactly on the excluded
        // upper bound; clamp to the largest value below it.
        v.min(self.end.next_down())
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** with splitmix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let n = rng.gen_range(3usize..10);
            assert!((3..10).contains(&n));
            let m = rng.gen_range(0u64..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should not be identity");
    }
}
