//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic seeded random-input harness: the [`strategy::Strategy`]
//! trait with range / tuple / `prop_map` / [`collection::vec`] combinators,
//! [`any`], `ProptestConfig::with_cases`, and the `proptest!` /
//! `prop_assert*!` macros. Unlike the real crate there is no shrinking — a
//! failing case panics with the seed-derived case index so it can be replayed
//! by rerunning the test (generation is deterministic per test name).

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Scalars uniformly samplable from a range.
    pub trait RangeSample: Copy {
        /// Uniform draw from `[lo, hi)`; `inclusive` widens to `[lo, hi]`.
        fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
    }

    macro_rules! impl_range_sample_int {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                    assert!(span > 0, "empty range");
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl RangeSample for f64 {
        fn sample_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
            assert!(lo < hi, "empty range");
            let v = lo + rng.unit_f64() * (hi - lo);
            // Rounding can land exactly on the excluded upper bound.
            if inclusive {
                v
            } else {
                v.min(hi.next_down())
            }
        }
    }

    impl<T: RangeSample> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_range(rng, self.start, self.end, false)
        }
    }

    impl<T: RangeSample> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_range(rng, *self.start(), *self.end(), true)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a default "any value" strategy (see [`crate::any`]).
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value. Float strategies generate finite
        /// values only, matching proptest's default (no NaN / infinities).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mix magnitudes: mostly moderate values, occasionally tiny/zero.
            match rng.next_u64() % 8 {
                0 => 0.0,
                1 => (rng.unit_f64() - 0.5) * 1e-6,
                _ => (rng.unit_f64() - 0.5) * 2e3,
            }
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The [`crate::any`] strategy.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Self {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and the deterministic case RNG.
pub mod test_runner {
    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 48 }
        }
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic per-case generator (splitmix64 over a name hash).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for case `case` of the property named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// `ProptestConfig` alias matching the real crate's prelude name.
pub type ProptestConfig = test_runner::Config;

/// The default strategy for `T` (finite-only for floats).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Commonly used items.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let __name = concat!(module_path!(), "::", stringify!($name));
                let mut __rng = $crate::test_runner::TestRng::for_case(__name, __case);
                // One closure per case so `prop_assume!` can skip via return.
                let mut __case_fn = |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                };
                __case_fn(&mut __rng);
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        (0u32..50).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0..2.0f64, z in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec((0u8..6, any::<f64>()), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            for (k, f) in &v {
                prop_assert!(*k < 6);
                prop_assert!(f.is_finite());
            }
        }

        #[test]
        fn prop_map_applies(e in small_even()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name_and_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = 0u64..1_000_000;
        let a = strat.generate(&mut TestRng::for_case("t", 5));
        let b = strat.generate(&mut TestRng::for_case("t", 5));
        let c = strat.generate(&mut TestRng::for_case("t", 6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
