//! # snailqc-qasm
//!
//! Version-aware OpenQASM interchange for the `snailqc` workspace: hand-rolled
//! lexers/parsers for OpenQASM 2.0 and the OpenQASM 3 subset that lower onto
//! [`snailqc_circuit::Circuit`], and an emitter that serializes any circuit —
//! including routed output with `swap` gates and basis-translated output with
//! `siswap`/`syc` gates — back to QASM text in **either dialect**
//! ([`QasmVersion`]).
//!
//! This is what lets *arbitrary external circuits* flow through the paper's
//! Fig. 10 pipeline (placement → routing → basis translation) instead of only
//! the built-in workload generators, and lets every intermediate circuit be
//! exported for use by other toolchains.
//!
//! ## Quick start
//!
//! ```
//! use snailqc_qasm::{emit, emit_v3, parse, parse_any};
//!
//! let program = parse(
//!     r#"OPENQASM 2.0;
//!        include "qelib1.inc";
//!        qreg q[3];
//!        h q[0];
//!        cx q[0],q[1];
//!        cx q[1],q[2];
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(program.circuit.two_qubit_count(), 2);
//!
//! // Round-trip: emitted text parses back to the identical circuit — in
//! // both dialects, with `parse_any` dispatching on the OPENQASM header.
//! let text = emit(&program.circuit);
//! assert_eq!(snailqc_qasm::parse_circuit(&text).unwrap(), program.circuit);
//! let text3 = emit_v3(&program.circuit);
//! assert_eq!(parse_any(&text3).unwrap().circuit, program.circuit);
//! ```
//!
//! ## Dialects
//!
//! The 2.0 parser understands the full `qelib1.inc` gate set (composite gates
//! such as `ccx` expand to their standard bodies) plus the `snailqc` dialect
//! gates `iswap`, `siswap`, `syc`, `iswap_pow(t)`, `fsim(θ,φ)`, `zx(θ)`,
//! `can(c₁,c₂,c₃)` and the lossless 32-parameter `unitary2` encoding of
//! arbitrary two-qubit unitaries.
//!
//! The 3.0 parser ([`parser3`]) accepts the subset `qubit[n]`/`bit[n]`
//! declarations, `ctrl @` modifier chains, `gphase(θ)`, the builtin
//! `U(θ,φ,λ)`, measure assignment `c = measure q;`, plus everything the
//! `stdgates.inc` include provides — lowering onto the *same* circuit IR, so
//! a circuit parsed from either dialect is statevector-identical.
//!
//! The emitter declares every non-standard-library gate it uses in the
//! header (exact `gate` bodies where a decomposition exists — all of them in
//! V3, thanks to `gphase` — `opaque` otherwise), so emitted programs are
//! self-describing.

#![warn(missing_docs)]

pub mod emit;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod parser3;

pub use emit::{emit, emit_v3, emit_versioned, emit_with, zyz_angles, EmitOptions, QasmVersion};
pub use error::QasmError;
pub use parser::{parse, parse_circuit, QasmProgram};
pub use parser3::{parse3, parse3_circuit};

/// Detects the dialect of a QASM source from its `OPENQASM` header.
///
/// Scans past comments and blank lines for the first `OPENQASM <version>`
/// declaration; a major version of 3 selects [`QasmVersion::V3`], anything
/// else — including a missing header, which the parsers will reject with a
/// proper span-carrying error — falls back to [`QasmVersion::V2`].
pub fn detect_version(source: &str) -> QasmVersion {
    for line in source.lines() {
        let line = line.trim_start();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("OPENQASM") {
            if rest.trim_start().starts_with('3') {
                return QasmVersion::V3;
            }
        }
        // The header must be the first statement; stop at the first
        // non-comment line either way.
        return QasmVersion::V2;
    }
    QasmVersion::V2
}

/// Parses a QASM program in whichever dialect its header declares.
pub fn parse_any(source: &str) -> Result<QasmProgram, QasmError> {
    match detect_version(source) {
        QasmVersion::V2 => parse(source),
        QasmVersion::V3 => parse3(source),
    }
}

/// Parses a QASM program in whichever dialect its header declares, returning
/// only the lowered circuit.
pub fn parse_any_circuit(source: &str) -> Result<snailqc_circuit::Circuit, QasmError> {
    parse_any(source).map(|p| p.circuit)
}
