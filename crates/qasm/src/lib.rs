//! # snailqc-qasm
//!
//! OpenQASM 2.0 interchange for the `snailqc` workspace: a hand-rolled
//! lexer/parser that lowers QASM source onto [`snailqc_circuit::Circuit`],
//! and an emitter that serializes any circuit — including routed output with
//! `swap` gates and basis-translated output with `siswap`/`syc` gates — back
//! to QASM text.
//!
//! This is what lets *arbitrary external circuits* flow through the paper's
//! Fig. 10 pipeline (placement → routing → basis translation) instead of only
//! the built-in workload generators, and lets every intermediate circuit be
//! exported for use by other toolchains.
//!
//! ## Quick start
//!
//! ```
//! use snailqc_qasm::{emit, parse};
//!
//! let program = parse(
//!     r#"OPENQASM 2.0;
//!        include "qelib1.inc";
//!        qreg q[3];
//!        h q[0];
//!        cx q[0],q[1];
//!        cx q[1],q[2];
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(program.circuit.two_qubit_count(), 2);
//!
//! // Round-trip: emitted text parses back to the identical circuit.
//! let text = emit(&program.circuit);
//! assert_eq!(snailqc_qasm::parse_circuit(&text).unwrap(), program.circuit);
//! ```
//!
//! ## Dialect
//!
//! The parser understands the full `qelib1.inc` gate set (composite gates
//! such as `ccx` expand to their standard bodies) plus the `snailqc` dialect
//! gates `iswap`, `siswap`, `syc`, `iswap_pow(t)`, `fsim(θ,φ)`, `zx(θ)`,
//! `can(c₁,c₂,c₃)` and the lossless 32-parameter `unitary2` encoding of
//! arbitrary two-qubit unitaries. The emitter declares every non-`qelib1`
//! gate it uses in the header (as a compatibility `gate` body when an exact
//! `U`/`CX` decomposition exists, `opaque` otherwise), so emitted programs
//! are self-describing.

#![warn(missing_docs)]

pub mod emit;
pub mod error;
pub mod lexer;
pub mod parser;

pub use emit::{emit, emit_with, zyz_angles, EmitOptions};
pub use error::QasmError;
pub use parser::{parse, parse_circuit, QasmProgram};
