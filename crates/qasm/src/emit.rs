//! Serializes a [`Circuit`] to OpenQASM text, in either dialect.
//!
//! The target dialect is a [`QasmVersion`]:
//!
//! * **V2** targets the conservative `qelib1.inc` core. Gates with exact
//!   `U`/`CX` decompositions (`sx`, `iswap`, `rzz`, `rxx`, `ryy`) get
//!   compatibility `gate` definitions any QASM 2.0 consumer can execute —
//!   our own parser still lowers them natively by name — while SNAIL-dialect
//!   gates without clean `U`/`CX` bodies (`siswap`, `syc`, `fsim`,
//!   `iswap_pow`, `zx`, `can`) are declared `opaque`. A circuit's global
//!   phase is dropped (QASM 2.0 cannot express it; it is unobservable).
//! * **V3** targets `stdgates.inc`. Every dialect gate except `unitary2`
//!   gets an *exact* `gate` definition — `gphase` makes the bodies equal to
//!   the native unitaries including global phase (e.g. `rzz` is
//!   `gphase(-θ/2); cx; p(θ); cx;`), built on the identities
//!   `CAN(c₁,c₂,c₃) = RXX(-2c₁)·RYY(-2c₂)·RZZ(-2c₃)` and
//!   `iSWAPᵗ = CAN(tπ/4, tπ/4, 0)`. A non-zero circuit global phase is
//!   emitted as a leading `gphase(φ);` statement.
//!
//! In both dialects [`Gate::Unitary1`] is converted to an exact `u3` via ZYZ
//! decomposition (equal up to global phase), and [`Gate::Unitary2`] is
//! encoded losslessly as a `unitary2(...)` application carrying all 32
//! row-major `(re, im)` matrix entries, so a re-parse reproduces the exact
//! matrix. (`unitary2` is the one snailqc extension in V3 output: QASM 3
//! removed `opaque`, so it is documented in a header comment instead.)
//!
//! Angles are printed with Rust's shortest round-trip float formatting, so a
//! parse of the emitted text reconstructs bit-identical `f64` parameters.

use snailqc_circuit::{Circuit, Gate};
use snailqc_math::Matrix2;

/// An OpenQASM dialect version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QasmVersion {
    /// OpenQASM 2.0 (`qelib1.inc`, `qreg`/`creg`, `opaque`).
    #[default]
    V2,
    /// OpenQASM 3.0 (`stdgates.inc`, `qubit[n]`/`bit[n]`, `ctrl @`,
    /// `gphase`).
    V3,
}

impl QasmVersion {
    /// The version number as written in the `OPENQASM` header.
    pub fn header(&self) -> &'static str {
        match self {
            QasmVersion::V2 => "2.0",
            QasmVersion::V3 => "3.0",
        }
    }
}

impl std::fmt::Display for QasmVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.header())
    }
}

/// Options controlling QASM emission.
#[derive(Debug, Clone)]
pub struct EmitOptions {
    /// Name of the flat quantum register (default `q`).
    pub register: String,
    /// Emit a classical register plus a full-register measurement at the end
    /// (`measure q -> c;` in V2, `c = measure q;` in V3).
    pub measure_all: bool,
    /// Target dialect (default [`QasmVersion::V2`]).
    pub version: QasmVersion,
}

impl Default for EmitOptions {
    fn default() -> Self {
        Self {
            register: "q".to_string(),
            measure_all: false,
            version: QasmVersion::V2,
        }
    }
}

/// Emits `circuit` as OpenQASM 2.0 with default options.
pub fn emit(circuit: &Circuit) -> String {
    emit_with(circuit, &EmitOptions::default())
}

/// Emits `circuit` as OpenQASM 3.0 with default options.
pub fn emit_v3(circuit: &Circuit) -> String {
    emit_with(
        circuit,
        &EmitOptions {
            version: QasmVersion::V3,
            ..EmitOptions::default()
        },
    )
}

/// Emits `circuit` in the given dialect with default options.
pub fn emit_versioned(circuit: &Circuit, version: QasmVersion) -> String {
    emit_with(
        circuit,
        &EmitOptions {
            version,
            ..EmitOptions::default()
        },
    )
}

/// Emits `circuit` as OpenQASM, honouring every option.
pub fn emit_with(circuit: &Circuit, options: &EmitOptions) -> String {
    let reg = &options.register;
    let v3 = options.version == QasmVersion::V3;
    let mut out = String::new();
    out.push_str(&format!("OPENQASM {};\n", options.version.header()));
    if v3 {
        out.push_str("include \"stdgates.inc\";\n");
        emit_dialect_header_v3(circuit, &mut out);
        out.push_str(&format!("qubit[{}] {reg};\n", circuit.num_qubits()));
        if options.measure_all {
            out.push_str(&format!("bit[{}] c;\n", circuit.num_qubits()));
        }
        if circuit.global_phase() != 0.0 {
            out.push_str(&format!("gphase({});\n", fmt_f64(circuit.global_phase())));
        }
    } else {
        out.push_str("include \"qelib1.inc\";\n");
        emit_dialect_header(circuit, &mut out);
        out.push_str(&format!("qreg {reg}[{}];\n", circuit.num_qubits()));
        if options.measure_all {
            out.push_str(&format!("creg c[{}];\n", circuit.num_qubits()));
        }
    }
    for inst in circuit.instructions() {
        let (name, params) = gate_text(&inst.gate);
        let name = if v3 { rename_v3(&name) } else { name.as_str() };
        out.push_str(name);
        if !params.is_empty() {
            out.push('(');
            out.push_str(
                &params
                    .iter()
                    .map(|x| fmt_f64(*x))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push(')');
        }
        out.push(' ');
        out.push_str(
            &inst
                .qubits
                .iter()
                .map(|q| format!("{reg}[{q}]"))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str(";\n");
    }
    if options.measure_all {
        if v3 {
            out.push_str(&format!("c = measure {reg};\n"));
        } else {
            out.push_str(&format!("measure {reg} -> c;\n"));
        }
    }
    out
}

/// QASM2 compat names that have a more idiomatic QASM3 spelling.
fn rename_v3(name: &str) -> &str {
    match name {
        "u1" => "p",
        "cu1" => "cp",
        other => other,
    }
}

/// Shortest representation that round-trips through `str::parse::<f64>()`.
fn fmt_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "cannot emit non-finite gate parameter");
    format!("{x:?}")
}

/// Compatibility definitions / opaque declarations for every non-qelib1 gate
/// kind used by the circuit, in a stable order.
fn emit_dialect_header(circuit: &Circuit, out: &mut String) {
    let used: std::collections::BTreeSet<&'static str> = circuit
        .instructions()
        .iter()
        .map(|i| i.gate.name())
        .collect();
    // (gate kind name, header line)
    let decls: [(&str, &str); 12] = [
        ("sx", "gate sx a { sdg a; h a; sdg a; }"),
        ("iswap", "gate iswap a,b { s a; s b; h a; cx a,b; cx b,a; h b; }"),
        ("rzz", "gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }"),
        (
            "rxx",
            "gate rxx(theta) a,b { h a; h b; cx a,b; u1(theta) b; cx a,b; h a; h b; }",
        ),
        (
            "ryy",
            "gate ryy(theta) a,b { rx(pi/2) a; rx(pi/2) b; cx a,b; u1(theta) b; cx a,b; rx(-pi/2) a; rx(-pi/2) b; }",
        ),
        ("zx", "opaque zx(theta) a,b;"),
        ("siswap", "opaque siswap a,b;"),
        ("syc", "opaque syc a,b;"),
        ("iswap_pow", "opaque iswap_pow(t) a,b;"),
        ("fsim", "opaque fsim(theta,phi) a,b;"),
        ("can", "opaque can(c1,c2,c3) a,b;"),
        ("unitary2", "opaque unitary2(m00r,m00i,m01r,m01i,m02r,m02i,m03r,m03i,m10r,m10i,m11r,m11i,m12r,m12i,m13r,m13i,m20r,m20i,m21r,m21i,m22r,m22i,m23r,m23i,m30r,m30i,m31r,m31i,m32r,m32i,m33r,m33i) a,b;"),
    ];
    for (kind, line) in decls {
        if used.contains(kind) {
            out.push_str(line);
            out.push('\n');
        }
    }
}

/// Exact OpenQASM 3 `gate` definitions for every non-`stdgates.inc` gate
/// kind used by the circuit, plus the definitions *they* depend on, in
/// dependency order.
///
/// Every body equals the native unitary exactly (including global phase,
/// thanks to `gphase`), so foreign QASM3 consumers execute the same matrix
/// our parser lowers natively by name. `unitary2` is the one exception: an
/// arbitrary 4×4 unitary has no parametric body, so it is documented as a
/// dialect extension in a comment.
fn emit_dialect_header_v3(circuit: &Circuit, out: &mut String) {
    // (gate kind, direct dependencies among these kinds, definition line)
    const DECLS: [(&str, &[&str], &str); 11] = [
        (
            "rzz",
            &[],
            "gate rzz(theta) a,b { gphase(-theta/2); cx a,b; p(theta) b; cx a,b; }",
        ),
        (
            "rxx",
            &["rzz"],
            "gate rxx(theta) a,b { h a; h b; rzz(theta) a,b; h a; h b; }",
        ),
        (
            "ryy",
            &["rxx"],
            "gate ryy(theta) a,b { sdg a; sdg b; rxx(theta) a,b; s a; s b; }",
        ),
        (
            "iswap_pow",
            &["rxx", "ryy"],
            "gate iswap_pow(t) a,b { rxx(-pi*t/2) a,b; ryy(-pi*t/2) a,b; }",
        ),
        (
            "iswap",
            &["iswap_pow"],
            "gate iswap a,b { iswap_pow(1) a,b; }",
        ),
        (
            "siswap",
            &["iswap_pow"],
            "gate siswap a,b { iswap_pow(0.5) a,b; }",
        ),
        (
            "fsim",
            &["rxx", "ryy"],
            "gate fsim(theta,phi) a,b { rxx(theta) a,b; ryy(theta) a,b; cp(-phi) a,b; }",
        ),
        ("syc", &["fsim"], "gate syc a,b { fsim(pi/2,pi/6) a,b; }"),
        (
            "zx",
            &["rzz"],
            "gate zx(theta) a,b { h b; rzz(theta) a,b; h b; }",
        ),
        (
            "can",
            &["rxx", "ryy", "rzz"],
            "gate can(c1,c2,c3) a,b { rxx(-2*c1) a,b; ryy(-2*c2) a,b; rzz(-2*c3) a,b; }",
        ),
        (
            "unitary2",
            &[],
            "// snailqc dialect extension: `unitary2(m00r,m00i,…,m33i) a,b` applies the\n\
             // literal 4x4 unitary carried by its 32 row-major (re, im) parameters.",
        ),
    ];
    let used: std::collections::BTreeSet<&str> = circuit
        .instructions()
        .iter()
        .map(|i| i.gate.name())
        .collect();
    // Transitive dependency closure over the declaration table.
    let mut needed: std::collections::BTreeSet<&str> = Default::default();
    fn require<'a>(
        kind: &'a str,
        decls: &[(&'a str, &'a [&'a str], &'a str)],
        needed: &mut std::collections::BTreeSet<&'a str>,
    ) {
        if !needed.insert(kind) {
            return;
        }
        if let Some((_, deps, _)) = decls.iter().find(|(k, _, _)| *k == kind) {
            for dep in *deps {
                require(dep, decls, needed);
            }
        }
    }
    for (kind, _, _) in &DECLS {
        if used.contains(kind) {
            require(kind, &DECLS, &mut needed);
        }
    }
    for (kind, _, line) in &DECLS {
        if needed.contains(kind) {
            out.push_str(line);
            out.push('\n');
        }
    }
}

/// QASM name and parameter list for one IR gate.
fn gate_text(gate: &Gate) -> (String, Vec<f64>) {
    match gate {
        Gate::I => ("id".into(), vec![]),
        Gate::X => ("x".into(), vec![]),
        Gate::Y => ("y".into(), vec![]),
        Gate::Z => ("z".into(), vec![]),
        Gate::H => ("h".into(), vec![]),
        Gate::S => ("s".into(), vec![]),
        Gate::Sdg => ("sdg".into(), vec![]),
        Gate::T => ("t".into(), vec![]),
        Gate::Tdg => ("tdg".into(), vec![]),
        Gate::SX => ("sx".into(), vec![]),
        Gate::RX(t) => ("rx".into(), vec![*t]),
        Gate::RY(t) => ("ry".into(), vec![*t]),
        Gate::RZ(t) => ("rz".into(), vec![*t]),
        Gate::P(l) => ("u1".into(), vec![*l]),
        Gate::U3(t, p, l) => ("u3".into(), vec![*t, *p, *l]),
        Gate::Unitary1(m) => {
            let (theta, phi, lambda) = zyz_angles(m);
            ("u3".into(), vec![theta, phi, lambda])
        }
        Gate::CX => ("cx".into(), vec![]),
        Gate::CZ => ("cz".into(), vec![]),
        Gate::CPhase(l) => ("cu1".into(), vec![*l]),
        Gate::Swap => ("swap".into(), vec![]),
        Gate::ISwap => ("iswap".into(), vec![]),
        Gate::SqrtISwap => ("siswap".into(), vec![]),
        Gate::ISwapPow(t) => ("iswap_pow".into(), vec![*t]),
        Gate::Fsim(t, p) => ("fsim".into(), vec![*t, *p]),
        Gate::Syc => ("syc".into(), vec![]),
        Gate::ZXInteraction(t) => ("zx".into(), vec![*t]),
        Gate::RZZ(t) => ("rzz".into(), vec![*t]),
        Gate::RXX(t) => ("rxx".into(), vec![*t]),
        Gate::RYY(t) => ("ryy".into(), vec![*t]),
        Gate::Canonical(a, b, c) => ("can".into(), vec![*a, *b, *c]),
        Gate::Unitary2(m) => {
            let mut params = Vec::with_capacity(32);
            for r in 0..4 {
                for c in 0..4 {
                    params.push(m[(r, c)].re);
                    params.push(m[(r, c)].im);
                }
            }
            ("unitary2".into(), params)
        }
    }
}

/// ZYZ Euler angles `(θ, φ, λ)` with `u3(θ, φ, λ) ≃ u` up to global phase.
pub fn zyz_angles(u: &Matrix2) -> (f64, f64, f64) {
    // Normalize to SU(2): v = u / sqrt(det u). For a unitary, |det| = 1.
    let det = u.det();
    let phase = snailqc_math::C64::cis(-det.arg() / 2.0);
    let v00 = u[(0, 0)] * phase;
    let v10 = u[(1, 0)] * phase;
    let v11 = u[(1, 1)] * phase;
    // v00 = cos(θ/2)·e^{-i(φ+λ)/2},  v10 = sin(θ/2)·e^{i(φ-λ)/2},
    // v11 = cos(θ/2)·e^{+i(φ+λ)/2}.
    let theta = 2.0 * v10.abs().atan2(v00.abs());
    const EPS: f64 = 1e-12;
    if v00.abs() > EPS && v10.abs() > EPS {
        let sum = 2.0 * v11.arg(); // φ + λ
        let diff = 2.0 * v10.arg(); // φ − λ
        ((theta), (sum + diff) / 2.0, (sum - diff) / 2.0)
    } else if v10.abs() <= EPS {
        // θ ≈ 0: a pure phase; fold it all into λ.
        (theta, 0.0, 2.0 * v11.arg())
    } else {
        // θ ≈ π: v00 vanishes; fold the remaining phase into φ.
        (theta, 2.0 * v10.arg(), 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_circuit;
    use snailqc_circuit::simulate;
    use snailqc_math::gates;

    #[test]
    fn emits_and_reparses_a_bell_circuit() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let text = emit(&c);
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[2];"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0],q[1];"));
        let back = parse_circuit(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn declares_only_used_dialect_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::SqrtISwap, &[0, 1]);
        let text = emit(&c);
        assert!(text.contains("opaque siswap a,b;"));
        assert!(!text.contains("opaque syc"));
        assert!(!text.contains("gate rzz"));
    }

    #[test]
    fn zx_is_declared_and_round_trips() {
        let mut c = Circuit::new(2);
        c.push(Gate::ZXInteraction(0.3), &[0, 1]);
        let text = emit(&c);
        assert!(text.contains("opaque zx(theta) a,b;"));
        assert_eq!(parse_circuit(&text).unwrap(), c);
    }

    #[test]
    fn angles_round_trip_bit_exactly() {
        let theta = 0.1 + 0.2; // deliberately non-representable-looking
        let mut c = Circuit::new(2);
        c.rz(theta, 0);
        c.push(Gate::Fsim(std::f64::consts::PI / 3.0, 1e-17), &[0, 1]);
        let back = parse_circuit(&emit(&c)).unwrap();
        assert_eq!(back, c, "f64 parameters must round-trip exactly");
    }

    #[test]
    fn unitary2_round_trips_exactly() {
        let m = gates::fsim(0.7, 0.3) * gates::rzz(0.2);
        let mut c = Circuit::new(2);
        c.push(Gate::Unitary2(m), &[0, 1]);
        let back = parse_circuit(&emit(&c)).unwrap();
        assert_eq!(back, c, "matrix entries must round-trip exactly");
    }

    #[test]
    fn unitary1_becomes_equivalent_u3() {
        let candidates = [
            gates::h(),
            gates::t(),
            gates::sx(),
            gates::h() * gates::t() * gates::sx(),
            gates::rx(0.3) * gates::rz(1.2),
            gates::x(),
            gates::z(),
            Matrix2::identity(),
        ];
        for (i, m) in candidates.into_iter().enumerate() {
            let (theta, phi, lambda) = zyz_angles(&m);
            let rebuilt = gates::u3(theta, phi, lambda);
            assert!(
                rebuilt.approx_eq_up_to_phase(&m, 1e-9),
                "candidate {i} did not round-trip through ZYZ"
            );
        }
    }

    #[test]
    fn unitary1_emission_is_simulation_equivalent() {
        let mut c = Circuit::new(1);
        c.push(
            Gate::Unitary1(gates::h() * gates::t() * gates::rx(0.4)),
            &[0],
        );
        let back = parse_circuit(&emit(&c)).unwrap();
        let fidelity = simulate(&c).fidelity(&simulate(&back));
        assert!((fidelity - 1.0).abs() < 1e-9, "fidelity = {fidelity}");
    }

    #[test]
    fn v3_emission_round_trips_through_parser3() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.push(Gate::SqrtISwap, &[1, 2]);
        c.push(Gate::P(0.3), &[2]);
        c.add_global_phase(0.25);
        let text = emit_v3(&c);
        assert!(text.starts_with("OPENQASM 3.0;"));
        assert!(text.contains("include \"stdgates.inc\";"));
        assert!(text.contains("qubit[3] q;"));
        assert!(text.contains("gphase(0.25);"));
        assert!(text.contains("p(0.3) q[2];"), "u1 renames to p in v3");
        // The siswap definition pulls in its dependency chain.
        for def in [
            "gate rzz",
            "gate rxx",
            "gate ryy",
            "gate iswap_pow",
            "gate siswap",
        ] {
            assert!(text.contains(def), "missing `{def}` in:\n{text}");
        }
        assert!(!text.contains("gate fsim"), "unused defs are omitted");
        let back = crate::parser3::parse3_circuit(&text).unwrap();
        assert_eq!(
            back, c,
            "v3 emission must re-parse to the identical circuit"
        );
        // Fixed point: emit ∘ parse3 is the identity on emitted text.
        assert_eq!(emit_v3(&back), text);
    }

    #[test]
    fn v3_measure_all_uses_assignment_form() {
        let mut c = Circuit::new(2);
        c.h(0);
        let opts = EmitOptions {
            measure_all: true,
            version: QasmVersion::V3,
            ..EmitOptions::default()
        };
        let text = emit_with(&c, &opts);
        assert!(text.contains("bit[2] c;"));
        assert!(text.contains("c = measure q;"));
        let program = crate::parser3::parse3(&text).unwrap();
        assert_eq!(program.measurements, 2);
        assert_eq!(program.version, QasmVersion::V3);
    }

    #[test]
    fn v2_emission_drops_global_phase() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.add_global_phase(1.0);
        let text = emit(&c);
        assert!(!text.contains("gphase"));
        let back = parse_circuit(&text).unwrap();
        assert_eq!(back.global_phase(), 0.0);
        let fidelity = simulate(&c).fidelity(&simulate(&back));
        assert!((fidelity - 1.0).abs() < 1e-12, "phase is unobservable");
    }

    /// The v3 header definitions claim to be *exact* decompositions. Verify
    /// each identity at the matrix level so the emitted text can never drift
    /// from the native unitaries.
    #[test]
    fn v3_dialect_gate_bodies_are_exact() {
        use snailqc_math::{Matrix4, C64};
        let tol = 1e-12;
        let on0 = |m| gates::on_qubit0(&m);
        let on1 = |m| gates::on_qubit1(&m);

        // rzz(θ) = e^{-iθ/2} · CX·(I⊗P(θ))·CX
        let theta = 0.7;
        let body = gates::cx() * on1(gates::p(theta)) * gates::cx();
        assert!(body
            .scale(C64::cis(-theta / 2.0))
            .approx_eq(&gates::rzz(theta), tol));

        // rxx(θ) = (H⊗H)·rzz(θ)·(H⊗H)
        let hh: Matrix4 = on0(gates::h()) * on1(gates::h());
        assert!((hh * gates::rzz(theta) * hh).approx_eq(&gates::rxx(theta), tol));

        // ryy(θ) = (S⊗S)·rxx(θ)·(S†⊗S†)
        let ss = on0(gates::s()) * on1(gates::s());
        let sdgsdg = on0(gates::sdg()) * on1(gates::sdg());
        assert!((ss * gates::rxx(theta) * sdgsdg).approx_eq(&gates::ryy(theta), tol));

        // iswap_pow(t) = rxx(-πt/2)·ryy(-πt/2); iswap/siswap are t = 1, ½.
        let t = 0.37;
        let a = -std::f64::consts::PI * t / 2.0;
        assert!((gates::rxx(a) * gates::ryy(a)).approx_eq(&gates::iswap_pow(t), tol));
        assert!(gates::iswap_pow(1.0).approx_eq(&gates::iswap(), tol));
        assert!(gates::iswap_pow(0.5).approx_eq(&gates::sqrt_iswap(), tol));

        // fsim(θ,φ) = rxx(θ)·ryy(θ)·cp(-φ); syc = fsim(π/2, π/6).
        let (th, ph) = (0.5, 0.25);
        let fsim = gates::rxx(th) * gates::ryy(th) * gates::cphase(-ph);
        assert!(fsim.approx_eq(&gates::fsim(th, ph), tol));
        assert!(
            gates::fsim(std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_6)
                .approx_eq(&gates::syc(), tol)
        );

        // zx(θ) = (I⊗H)·rzz(θ)·(I⊗H)
        let ih = on1(gates::h());
        assert!((ih * gates::rzz(theta) * ih).approx_eq(&gates::zx(theta), tol));

        // can(c₁,c₂,c₃) = rxx(-2c₁)·ryy(-2c₂)·rzz(-2c₃)
        let (c1, c2, c3) = (0.3, 0.2, 0.1);
        let can = gates::rxx(-2.0 * c1) * gates::ryy(-2.0 * c2) * gates::rzz(-2.0 * c3);
        assert!(can.approx_eq(&gates::canonical(c1, c2, c3), tol));
    }

    #[test]
    fn measure_all_option_appends_measurement() {
        let mut c = Circuit::new(3);
        c.h(0);
        let opts = EmitOptions {
            register: "qr".into(),
            measure_all: true,
            ..EmitOptions::default()
        };
        let text = emit_with(&c, &opts);
        assert!(text.contains("qreg qr[3];"));
        assert!(text.contains("creg c[3];"));
        assert!(text.contains("measure qr -> c;"));
        assert!(crate::parser::parse(&text).unwrap().measurements == 3);
    }
}
