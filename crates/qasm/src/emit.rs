//! Serializes a [`Circuit`] back to OpenQASM 2.0 text.
//!
//! The emitter targets the conservative `qelib1.inc` core where it can and
//! declares everything else in the header so the output is self-describing:
//!
//! * gates with exact `U`/`CX` decompositions (`sx`, `iswap`, `rzz`, `rxx`,
//!   `ryy`) get compatibility `gate` definitions any QASM 2.0 consumer can
//!   execute — our own parser still lowers them natively by name;
//! * SNAIL-dialect gates without clean `U`/`CX` bodies (`siswap`, `syc`,
//!   `fsim`, `iswap_pow`, `zx`, `can`) are declared `opaque`;
//! * [`Gate::Unitary1`] is converted to an exact `u3` via ZYZ decomposition
//!   (equal up to global phase);
//! * [`Gate::Unitary2`] is encoded losslessly as an `opaque
//!   unitary2(...)` application carrying all 32 row-major `(re, im)` matrix
//!   entries, so `parse(emit(c))` reproduces the exact matrix.
//!
//! Angles are printed with Rust's shortest round-trip float formatting, so a
//! parse of the emitted text reconstructs bit-identical `f64` parameters.

use snailqc_circuit::{Circuit, Gate};
use snailqc_math::Matrix2;

/// Options controlling QASM emission.
#[derive(Debug, Clone)]
pub struct EmitOptions {
    /// Name of the flat quantum register (default `q`).
    pub register: String,
    /// Emit a `creg` plus a full-register `measure` at the end.
    pub measure_all: bool,
}

impl Default for EmitOptions {
    fn default() -> Self {
        Self {
            register: "q".to_string(),
            measure_all: false,
        }
    }
}

/// Emits `circuit` as OpenQASM 2.0 with default options.
pub fn emit(circuit: &Circuit) -> String {
    emit_with(circuit, &EmitOptions::default())
}

/// Emits `circuit` as OpenQASM 2.0.
pub fn emit_with(circuit: &Circuit, options: &EmitOptions) -> String {
    let reg = &options.register;
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    emit_dialect_header(circuit, &mut out);
    out.push_str(&format!("qreg {reg}[{}];\n", circuit.num_qubits()));
    if options.measure_all {
        out.push_str(&format!("creg c[{}];\n", circuit.num_qubits()));
    }
    for inst in circuit.instructions() {
        let (name, params) = gate_text(&inst.gate);
        out.push_str(&name);
        if !params.is_empty() {
            out.push('(');
            out.push_str(
                &params
                    .iter()
                    .map(|x| fmt_f64(*x))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push(')');
        }
        out.push(' ');
        out.push_str(
            &inst
                .qubits
                .iter()
                .map(|q| format!("{reg}[{q}]"))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push_str(";\n");
    }
    if options.measure_all {
        out.push_str(&format!("measure {reg} -> c;\n"));
    }
    out
}

/// Shortest representation that round-trips through `str::parse::<f64>()`.
fn fmt_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "cannot emit non-finite gate parameter");
    format!("{x:?}")
}

/// Compatibility definitions / opaque declarations for every non-qelib1 gate
/// kind used by the circuit, in a stable order.
fn emit_dialect_header(circuit: &Circuit, out: &mut String) {
    let used: std::collections::BTreeSet<&'static str> = circuit
        .instructions()
        .iter()
        .map(|i| i.gate.name())
        .collect();
    // (gate kind name, header line)
    let decls: [(&str, &str); 12] = [
        ("sx", "gate sx a { sdg a; h a; sdg a; }"),
        ("iswap", "gate iswap a,b { s a; s b; h a; cx a,b; cx b,a; h b; }"),
        ("rzz", "gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }"),
        (
            "rxx",
            "gate rxx(theta) a,b { h a; h b; cx a,b; u1(theta) b; cx a,b; h a; h b; }",
        ),
        (
            "ryy",
            "gate ryy(theta) a,b { rx(pi/2) a; rx(pi/2) b; cx a,b; u1(theta) b; cx a,b; rx(-pi/2) a; rx(-pi/2) b; }",
        ),
        ("zx", "opaque zx(theta) a,b;"),
        ("siswap", "opaque siswap a,b;"),
        ("syc", "opaque syc a,b;"),
        ("iswap_pow", "opaque iswap_pow(t) a,b;"),
        ("fsim", "opaque fsim(theta,phi) a,b;"),
        ("can", "opaque can(c1,c2,c3) a,b;"),
        ("unitary2", "opaque unitary2(m00r,m00i,m01r,m01i,m02r,m02i,m03r,m03i,m10r,m10i,m11r,m11i,m12r,m12i,m13r,m13i,m20r,m20i,m21r,m21i,m22r,m22i,m23r,m23i,m30r,m30i,m31r,m31i,m32r,m32i,m33r,m33i) a,b;"),
    ];
    for (kind, line) in decls {
        if used.contains(kind) {
            out.push_str(line);
            out.push('\n');
        }
    }
}

/// QASM name and parameter list for one IR gate.
fn gate_text(gate: &Gate) -> (String, Vec<f64>) {
    match gate {
        Gate::I => ("id".into(), vec![]),
        Gate::X => ("x".into(), vec![]),
        Gate::Y => ("y".into(), vec![]),
        Gate::Z => ("z".into(), vec![]),
        Gate::H => ("h".into(), vec![]),
        Gate::S => ("s".into(), vec![]),
        Gate::Sdg => ("sdg".into(), vec![]),
        Gate::T => ("t".into(), vec![]),
        Gate::Tdg => ("tdg".into(), vec![]),
        Gate::SX => ("sx".into(), vec![]),
        Gate::RX(t) => ("rx".into(), vec![*t]),
        Gate::RY(t) => ("ry".into(), vec![*t]),
        Gate::RZ(t) => ("rz".into(), vec![*t]),
        Gate::P(l) => ("u1".into(), vec![*l]),
        Gate::U3(t, p, l) => ("u3".into(), vec![*t, *p, *l]),
        Gate::Unitary1(m) => {
            let (theta, phi, lambda) = zyz_angles(m);
            ("u3".into(), vec![theta, phi, lambda])
        }
        Gate::CX => ("cx".into(), vec![]),
        Gate::CZ => ("cz".into(), vec![]),
        Gate::CPhase(l) => ("cu1".into(), vec![*l]),
        Gate::Swap => ("swap".into(), vec![]),
        Gate::ISwap => ("iswap".into(), vec![]),
        Gate::SqrtISwap => ("siswap".into(), vec![]),
        Gate::ISwapPow(t) => ("iswap_pow".into(), vec![*t]),
        Gate::Fsim(t, p) => ("fsim".into(), vec![*t, *p]),
        Gate::Syc => ("syc".into(), vec![]),
        Gate::ZXInteraction(t) => ("zx".into(), vec![*t]),
        Gate::RZZ(t) => ("rzz".into(), vec![*t]),
        Gate::RXX(t) => ("rxx".into(), vec![*t]),
        Gate::RYY(t) => ("ryy".into(), vec![*t]),
        Gate::Canonical(a, b, c) => ("can".into(), vec![*a, *b, *c]),
        Gate::Unitary2(m) => {
            let mut params = Vec::with_capacity(32);
            for r in 0..4 {
                for c in 0..4 {
                    params.push(m[(r, c)].re);
                    params.push(m[(r, c)].im);
                }
            }
            ("unitary2".into(), params)
        }
    }
}

/// ZYZ Euler angles `(θ, φ, λ)` with `u3(θ, φ, λ) ≃ u` up to global phase.
pub fn zyz_angles(u: &Matrix2) -> (f64, f64, f64) {
    // Normalize to SU(2): v = u / sqrt(det u). For a unitary, |det| = 1.
    let det = u.det();
    let phase = snailqc_math::C64::cis(-det.arg() / 2.0);
    let v00 = u[(0, 0)] * phase;
    let v10 = u[(1, 0)] * phase;
    let v11 = u[(1, 1)] * phase;
    // v00 = cos(θ/2)·e^{-i(φ+λ)/2},  v10 = sin(θ/2)·e^{i(φ-λ)/2},
    // v11 = cos(θ/2)·e^{+i(φ+λ)/2}.
    let theta = 2.0 * v10.abs().atan2(v00.abs());
    const EPS: f64 = 1e-12;
    if v00.abs() > EPS && v10.abs() > EPS {
        let sum = 2.0 * v11.arg(); // φ + λ
        let diff = 2.0 * v10.arg(); // φ − λ
        ((theta), (sum + diff) / 2.0, (sum - diff) / 2.0)
    } else if v10.abs() <= EPS {
        // θ ≈ 0: a pure phase; fold it all into λ.
        (theta, 0.0, 2.0 * v11.arg())
    } else {
        // θ ≈ π: v00 vanishes; fold the remaining phase into φ.
        (theta, 2.0 * v10.arg(), 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_circuit;
    use snailqc_circuit::simulate;
    use snailqc_math::gates;

    #[test]
    fn emits_and_reparses_a_bell_circuit() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let text = emit(&c);
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[2];"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0],q[1];"));
        let back = parse_circuit(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn declares_only_used_dialect_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::SqrtISwap, &[0, 1]);
        let text = emit(&c);
        assert!(text.contains("opaque siswap a,b;"));
        assert!(!text.contains("opaque syc"));
        assert!(!text.contains("gate rzz"));
    }

    #[test]
    fn zx_is_declared_and_round_trips() {
        let mut c = Circuit::new(2);
        c.push(Gate::ZXInteraction(0.3), &[0, 1]);
        let text = emit(&c);
        assert!(text.contains("opaque zx(theta) a,b;"));
        assert_eq!(parse_circuit(&text).unwrap(), c);
    }

    #[test]
    fn angles_round_trip_bit_exactly() {
        let theta = 0.1 + 0.2; // deliberately non-representable-looking
        let mut c = Circuit::new(2);
        c.rz(theta, 0);
        c.push(Gate::Fsim(std::f64::consts::PI / 3.0, 1e-17), &[0, 1]);
        let back = parse_circuit(&emit(&c)).unwrap();
        assert_eq!(back, c, "f64 parameters must round-trip exactly");
    }

    #[test]
    fn unitary2_round_trips_exactly() {
        let m = gates::fsim(0.7, 0.3) * gates::rzz(0.2);
        let mut c = Circuit::new(2);
        c.push(Gate::Unitary2(m), &[0, 1]);
        let back = parse_circuit(&emit(&c)).unwrap();
        assert_eq!(back, c, "matrix entries must round-trip exactly");
    }

    #[test]
    fn unitary1_becomes_equivalent_u3() {
        let candidates = [
            gates::h(),
            gates::t(),
            gates::sx(),
            gates::h() * gates::t() * gates::sx(),
            gates::rx(0.3) * gates::rz(1.2),
            gates::x(),
            gates::z(),
            Matrix2::identity(),
        ];
        for (i, m) in candidates.into_iter().enumerate() {
            let (theta, phi, lambda) = zyz_angles(&m);
            let rebuilt = gates::u3(theta, phi, lambda);
            assert!(
                rebuilt.approx_eq_up_to_phase(&m, 1e-9),
                "candidate {i} did not round-trip through ZYZ"
            );
        }
    }

    #[test]
    fn unitary1_emission_is_simulation_equivalent() {
        let mut c = Circuit::new(1);
        c.push(
            Gate::Unitary1(gates::h() * gates::t() * gates::rx(0.4)),
            &[0],
        );
        let back = parse_circuit(&emit(&c)).unwrap();
        let fidelity = simulate(&c).fidelity(&simulate(&back));
        assert!((fidelity - 1.0).abs() < 1e-9, "fidelity = {fidelity}");
    }

    #[test]
    fn measure_all_option_appends_measurement() {
        let mut c = Circuit::new(3);
        c.h(0);
        let opts = EmitOptions {
            register: "qr".into(),
            measure_all: true,
        };
        let text = emit_with(&c, &opts);
        assert!(text.contains("qreg qr[3];"));
        assert!(text.contains("creg c[3];"));
        assert!(text.contains("measure qr -> c;"));
        assert!(crate::parser::parse(&text).unwrap().measurements == 3);
    }
}
