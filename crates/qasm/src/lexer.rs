//! A hand-rolled lexer shared by the OpenQASM 2.0 and 3.0 parsers.
//!
//! Produces a flat token stream with 1-based source positions. Comments
//! (`// …`) and whitespace are skipped. Numbers are classified as integers
//! (register sizes, version digits) or reals (gate parameters, which may use
//! scientific notation so that emitted `f64` values round-trip exactly).
//! The QASM3-only tokens `@` (gate modifiers) and `=` (measure assignment)
//! lex unconditionally; the version-2 parser rejects them at the grammar
//! level so both dialects share one token stream.

use crate::error::QasmError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`qreg`, `gate`, gate names, `pi`, …).
    Ident(String),
    /// Real literal (has a decimal point and/or exponent).
    Real(f64),
    /// Non-negative integer literal.
    Int(u64),
    /// String literal (only used by `include`).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
    /// `=` (OpenQASM 3 measure assignment: `c = measure q;`)
    Eq,
    /// `@` (OpenQASM 3 gate-modifier separator: `ctrl @ g …`)
    At,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Lexes `source` into a token stream.
pub fn lex(source: &str) -> Result<Vec<Token>, QasmError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    let bump = |c: char, line: &mut usize, col: &mut usize| {
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };

    while i < chars.len() {
        let c = chars[i];
        let (tl, tc) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump(c, &mut line, &mut col);
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    bump(chars[i], &mut line, &mut col);
                    i += 1;
                }
            }
            '"' => {
                bump(c, &mut line, &mut col);
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('"') => {
                            bump('"', &mut line, &mut col);
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            bump(ch, &mut line, &mut col);
                            i += 1;
                        }
                        None => return Err(QasmError::new(tl, tc, "unterminated string")),
                    }
                }
                tokens.push(Token {
                    tok: Tok::Str(s),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    bump(chars[i], &mut line, &mut col);
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(s),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_ascii_digit()
                || (c == '.' && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit())) =>
            {
                let mut s = String::new();
                let mut is_real = false;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    s.push(chars[i]);
                    bump(chars[i], &mut line, &mut col);
                    i += 1;
                }
                if i < chars.len() && chars[i] == '.' {
                    is_real = true;
                    s.push('.');
                    bump('.', &mut line, &mut col);
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        s.push(chars[i]);
                        bump(chars[i], &mut line, &mut col);
                        i += 1;
                    }
                }
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    // Only an exponent when followed by a (signed) digit; an
                    // identifier like `e0q` should not be swallowed.
                    let mut j = i + 1;
                    if matches!(chars.get(j), Some('+') | Some('-')) {
                        j += 1;
                    }
                    if matches!(chars.get(j), Some(d) if d.is_ascii_digit()) {
                        is_real = true;
                        while i < j {
                            s.push(chars[i]);
                            bump(chars[i], &mut line, &mut col);
                            i += 1;
                        }
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            s.push(chars[i]);
                            bump(chars[i], &mut line, &mut col);
                            i += 1;
                        }
                    }
                }
                let tok = if is_real {
                    Tok::Real(
                        s.parse::<f64>()
                            .map_err(|_| QasmError::new(tl, tc, format!("bad real `{s}`")))?,
                    )
                } else {
                    Tok::Int(
                        s.parse::<u64>()
                            .map_err(|_| QasmError::new(tl, tc, format!("bad integer `{s}`")))?,
                    )
                };
                tokens.push(Token {
                    tok,
                    line: tl,
                    col: tc,
                });
            }
            _ => {
                let tok = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    '+' => Tok::Plus,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    '^' => Tok::Caret,
                    '-' => {
                        if chars.get(i + 1) == Some(&'>') {
                            bump('-', &mut line, &mut col);
                            i += 1;
                            Tok::Arrow
                        } else {
                            Tok::Minus
                        }
                    }
                    '@' => Tok::At,
                    '=' => {
                        if chars.get(i + 1) == Some(&'=') {
                            bump('=', &mut line, &mut col);
                            i += 1;
                            Tok::EqEq
                        } else {
                            Tok::Eq
                        }
                    }
                    other => {
                        return Err(QasmError::new(
                            tl,
                            tc,
                            format!("unexpected character `{other}`"),
                        ))
                    }
                };
                bump(chars[i], &mut line, &mut col);
                i += 1;
                tokens.push(Token {
                    tok,
                    line: tl,
                    col: tc,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_a_header() {
        assert_eq!(
            toks("OPENQASM 2.0;\ninclude \"qelib1.inc\";"),
            vec![
                Tok::Ident("OPENQASM".into()),
                Tok::Real(2.0),
                Tok::Semi,
                Tok::Ident("include".into()),
                Tok::Str("qelib1.inc".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_exponents() {
        assert_eq!(
            toks("3 1.5 .25 2e-3 7E+2"),
            vec![
                Tok::Int(3),
                Tok::Real(1.5),
                Tok::Real(0.25),
                Tok::Real(2e-3),
                Tok::Real(7e2),
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_positions() {
        let tokens = lex("// header\nqreg q[4];").unwrap();
        assert_eq!(tokens[0].tok, Tok::Ident("qreg".into()));
        assert_eq!((tokens[0].line, tokens[0].col), (2, 1));
        assert_eq!(tokens[2].tok, Tok::LBracket);
    }

    #[test]
    fn lexes_arrow_and_operators() {
        assert_eq!(
            toks("measure q -> c; -pi/2"),
            vec![
                Tok::Ident("measure".into()),
                Tok::Ident("q".into()),
                Tok::Arrow,
                Tok::Ident("c".into()),
                Tok::Semi,
                Tok::Minus,
                Tok::Ident("pi".into()),
                Tok::Slash,
                Tok::Int(2),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("qreg q[2]; #").is_err());
        assert!(lex("\"open").is_err());
    }

    #[test]
    fn lexes_qasm3_modifier_and_assignment_tokens() {
        assert_eq!(
            toks("ctrl @ x q; c = measure q;"),
            vec![
                Tok::Ident("ctrl".into()),
                Tok::At,
                Tok::Ident("x".into()),
                Tok::Ident("q".into()),
                Tok::Semi,
                Tok::Ident("c".into()),
                Tok::Eq,
                Tok::Ident("measure".into()),
                Tok::Ident("q".into()),
                Tok::Semi,
            ]
        );
        assert_eq!(
            toks("a == b"),
            vec![Tok::Ident("a".into()), Tok::EqEq, Tok::Ident("b".into()),]
        );
    }
}
