//! Parse-time error reporting with source positions.
//!
//! Both dialect parsers produce the same span-carrying [`QasmError`]; the
//! negative-path test batteries assert on `line`/`col` so errors stay
//! actionable (e.g. QASM3 syntax under an `OPENQASM 2.0` header points at
//! the offending keyword, not the end of the file).

/// An error raised while lexing or parsing an OpenQASM program (either
/// dialect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QasmError {
    /// 1-based source line of the offending token.
    pub line: usize,
    /// 1-based source column of the offending token.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl QasmError {
    /// Creates an error at the given position.
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            col,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "qasm parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for QasmError {}
