//! A recursive-descent parser lowering the OpenQASM 3 subset to the circuit
//! IR.
//!
//! Supported language: the `OPENQASM 3;` / `OPENQASM 3.0;` header,
//! `include "stdgates.inc";`, `qubit[n]` / `qubit` / `bit[n]` / `bit`
//! declarations (plus the spec-sanctioned legacy `qreg`/`creg` spellings),
//! gate applications with register broadcasting, `ctrl @` / `ctrl(n) @`
//! modifier chains folded into their controlled built-ins, `gphase(θ)`
//! global-phase statements, the builtin `U(θ,φ,λ)` (whose matrix in the
//! OpenQASM 3.0 spec equals the `qelib1` `u3`), user `gate` definitions
//! (which may contain `gphase`), `barrier`, and measurement in both the
//! assignment form `c = measure q;` and the legacy arrow form
//! `measure q -> c;`. `reset`, `input` parameters, classical control flow
//! and the `inv`/`pow`/`negctrl` modifiers are rejected with clear,
//! span-carrying errors.
//!
//! The lowering reuses the exact `Parser` machinery of the
//! QASM2 path — registers flatten in declaration order, known gate names
//! shadow textual re-definitions, broadcasting works identically — so
//! `parse3(emit_v3(c))` and `parse(emit(c))` produce the *same* circuit,
//! which is what the cross-version equivalence test battery asserts.

use crate::emit::QasmVersion;
use crate::error::QasmError;
use crate::lexer::{lex, Tok};
use crate::parser::{Parser, QasmProgram};
use snailqc_circuit::Circuit;
use std::f64::consts::PI;

/// Parses an OpenQASM 3 program.
pub fn parse3(source: &str) -> Result<QasmProgram, QasmError> {
    let mut parser = Parser::new(lex(source)?);
    parser.allow_v3 = true;
    let mut p3 = Parser3 { p: parser };
    p3.parse_header()?;
    while p3.p.peek().is_some() {
        p3.parse_statement()?;
    }
    Ok(p3.p.finish(QasmVersion::V3))
}

/// Parses an OpenQASM 3 program, returning only the lowered circuit.
pub fn parse3_circuit(source: &str) -> Result<Circuit, QasmError> {
    parse3(source).map(|p| p.circuit)
}

/// The QASM3 surface grammar over the shared `Parser` machine.
struct Parser3 {
    p: Parser,
}

impl Parser3 {
    fn parse_header(&mut self) -> Result<(), QasmError> {
        match self.p.next() {
            Some(Tok::Ident(kw)) if kw == "OPENQASM" => {}
            _ => return Err(self.p.err("program must start with `OPENQASM 3;`")),
        }
        match self.p.next() {
            Some(Tok::Real(v)) if (v - 3.0).abs() < f64::EPSILON => {}
            Some(Tok::Int(3)) => {}
            other => {
                return Err(self.p.err(format!(
                    "unsupported OPENQASM version {other:?} (need 3 or 3.0)"
                )))
            }
        }
        self.p.expect(&Tok::Semi, "`;` after version")
    }

    fn parse_statement(&mut self) -> Result<(), QasmError> {
        let kw = match self.p.peek() {
            Some(Tok::Ident(s)) => s.clone(),
            other => return Err(self.p.err(format!("expected a statement, found {other:?}"))),
        };
        match kw.as_str() {
            "include" => self.parse_include(),
            "qubit" => self.parse_typed_decl(true),
            "bit" => self.parse_typed_decl(false),
            // Legacy declarations remain valid OpenQASM 3.
            "qreg" => self.p.parse_qreg(),
            "creg" => self.p.parse_creg(),
            "gate" => self.p.parse_gate_def(),
            "barrier" => self.p.parse_barrier(),
            "measure" => self.parse_measure_statement(),
            "gphase" => self.parse_gphase(),
            "ctrl" => self.parse_modified_application(),
            "inv" | "pow" | "negctrl" => Err(self.p.err(format!(
                "the `{kw}` gate modifier is not in the supported QASM3 subset (only `ctrl @`)"
            ))),
            "input" | "output" => Err(self.p.err(format!(
                "`{kw}` parameters are not supported: snailqc lowers fully-bound circuits only"
            ))),
            "opaque" => Err(self
                .p
                .err("`opaque` was removed in OpenQASM 3; define the gate or use version 2.0")),
            "reset" => Err(self
                .p
                .err("`reset` is not supported (the circuit IR is unitary-only)")),
            "if" | "for" | "while" | "def" | "defcal" | "cal" => Err(self.p.err(format!(
                "classical control flow (`{kw}`) is not in the supported QASM3 subset"
            ))),
            _ => {
                // `c = measure q;` / `c[i] = measure q[j];` or an application.
                if self.measure_assignment_ahead() {
                    self.parse_measure_assignment()
                } else {
                    self.p.parse_application()
                }
            }
        }
    }

    fn parse_include(&mut self) -> Result<(), QasmError> {
        self.p.pos += 1; // include
        let file = match self.p.next() {
            Some(Tok::Str(s)) => s,
            other => {
                return Err(self
                    .p
                    .err(format!("expected include filename, found {other:?}")))
            }
        };
        if file != "stdgates.inc" {
            return Err(self.p.err(format!(
                "cannot include `{file}`: only the built-in \"stdgates.inc\" is available"
            )));
        }
        self.p.expect(&Tok::Semi, "`;` after include")
    }

    /// `qubit[n] name;`, `qubit name;`, `bit[n] name;`, `bit name;`.
    fn parse_typed_decl(&mut self, quantum: bool) -> Result<(), QasmError> {
        let kind = if quantum { "qubit" } else { "bit" };
        self.p.pos += 1; // qubit | bit
        let size = if self.p.eat(&Tok::LBracket) {
            let n = self.p.expect_int("register size")? as usize;
            self.p
                .expect(&Tok::RBracket, "`]` closing the array designator")?;
            n
        } else {
            1
        };
        let name = self.p.expect_ident("register name")?;
        self.p.expect(&Tok::Semi, "`;` after declaration")?;
        if quantum {
            self.p.declare_qreg(name, size, kind)
        } else {
            self.p.declare_creg(name, size)
        }
    }

    /// `gphase(θ);` — a zero-qubit statement adding to the global phase.
    fn parse_gphase(&mut self) -> Result<(), QasmError> {
        let (line, col) = self.p.here();
        self.p.pos += 1; // gphase
        let params = self.p.parse_call_params(line, col)?;
        self.p.expect(&Tok::Semi, "`;` after gphase")?;
        if params.len() != 1 {
            return Err(QasmError::new(
                line,
                col,
                format!("`gphase` takes exactly one parameter, got {}", params.len()),
            ));
        }
        self.p.circuit.add_global_phase(params[0]);
        Ok(())
    }

    /// `ctrl @ g …;` / `ctrl(n) @ ctrl @ g …;` — folds the modifier chain
    /// into a controlled built-in, then applies it with broadcasting.
    fn parse_modified_application(&mut self) -> Result<(), QasmError> {
        let (line, col) = self.p.here();
        let mut controls = 0usize;
        while let Some(Tok::Ident(kw)) = self.p.peek() {
            match kw.as_str() {
                "ctrl" => {
                    self.p.pos += 1;
                    let count = if self.p.eat(&Tok::LParen) {
                        let n = self.p.expect_int("control count")?;
                        self.p.expect(&Tok::RParen, "`)` after control count")?;
                        if n == 0 {
                            return Err(self.p.err("`ctrl(0)` is not a valid modifier"));
                        }
                        n as usize
                    } else {
                        1
                    };
                    self.p
                        .expect(&Tok::At, "`@` after the `ctrl` gate modifier")?;
                    controls += count;
                }
                "inv" | "pow" | "negctrl" => {
                    return Err(self.p.err(format!(
                        "the `{kw}` gate modifier is not in the supported QASM3 subset \
                         (only `ctrl @`)"
                    )))
                }
                _ => break,
            }
        }
        let name = match self.p.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.p.pos += 1;
                s
            }
            other => {
                return Err(self.p.err(format!(
                    "unterminated modifier chain: expected a gate name after `@`, found {other:?}"
                )))
            }
        };
        let mut params = self.p.parse_call_params(line, col)?;
        let mut folded = name;
        for _ in 0..controls {
            (folded, params) = fold_control(&folded, params, line, col)?;
        }
        self.p.apply_broadcast(&folded, &params, line, col)
    }

    /// True when the upcoming tokens spell a measure assignment target:
    /// `name =` or `name [ idx ] =`.
    fn measure_assignment_ahead(&self) -> bool {
        match (self.p.peek(), self.p.peek2()) {
            (Some(Tok::Ident(_)), Some(Tok::Eq)) => true,
            (Some(Tok::Ident(_)), Some(Tok::LBracket)) => matches!(
                (
                    self.p.tokens.get(self.p.pos + 2).map(|t| &t.tok),
                    self.p.tokens.get(self.p.pos + 3).map(|t| &t.tok),
                    self.p.tokens.get(self.p.pos + 4).map(|t| &t.tok),
                ),
                (Some(Tok::Int(_)), Some(Tok::RBracket), Some(Tok::Eq))
            ),
            _ => false,
        }
    }

    /// `c = measure q;` (widths validated like the arrow form).
    fn parse_measure_assignment(&mut self) -> Result<(), QasmError> {
        let c = self.p.parse_operand()?;
        self.p.expect(&Tok::Eq, "`=` in measure assignment")?;
        match self.p.next() {
            Some(Tok::Ident(kw)) if kw == "measure" => {}
            other => {
                return Err(self.p.err(format!(
                    "only `measure` may appear on the right of `=`, found {other:?}"
                )))
            }
        }
        let q = self.p.parse_operand()?;
        self.p.expect(&Tok::Semi, "`;` after measure")?;
        self.p.record_measure(&q, &c)
    }

    /// `measure q -> c;` (legacy arrow form) or bare `measure q;`.
    fn parse_measure_statement(&mut self) -> Result<(), QasmError> {
        self.p.pos += 1; // measure
        let q = self.p.parse_operand()?;
        if self.p.eat(&Tok::Arrow) {
            let c = self.p.parse_operand()?;
            self.p.expect(&Tok::Semi, "`;` after measure")?;
            return self.p.record_measure(&q, &c);
        }
        self.p.expect(&Tok::Semi, "`;` after measure")?;
        let count = self.p.resolve_qubits(&q)?.len();
        self.p.measurements += count;
        Ok(())
    }
}

/// One `ctrl @` fold: maps a gate name + parameters to its controlled
/// counterpart (which gains the control as a leading qubit operand).
fn fold_control(
    name: &str,
    params: Vec<f64>,
    line: usize,
    col: usize,
) -> Result<(String, Vec<f64>), QasmError> {
    let arity_err = |want: usize| {
        QasmError::new(
            line,
            col,
            format!("gate `{name}` expects {want} parameter(s) under `ctrl @`"),
        )
    };
    let check = |want: usize| {
        if params.len() == want {
            Ok(())
        } else {
            Err(arity_err(want))
        }
    };
    let folded: (&str, Vec<f64>) = match name {
        "x" => {
            check(0)?;
            ("cx", vec![])
        }
        "y" => {
            check(0)?;
            ("cy", vec![])
        }
        "z" => {
            check(0)?;
            ("cz", vec![])
        }
        "h" => {
            check(0)?;
            ("ch", vec![])
        }
        "s" => {
            check(0)?;
            ("cp", vec![PI / 2.0])
        }
        "sdg" => {
            check(0)?;
            ("cp", vec![-PI / 2.0])
        }
        "t" => {
            check(0)?;
            ("cp", vec![PI / 4.0])
        }
        "tdg" => {
            check(0)?;
            ("cp", vec![-PI / 4.0])
        }
        "swap" => {
            check(0)?;
            ("cswap", vec![])
        }
        "cx" | "CX" => {
            check(0)?;
            ("ccx", vec![])
        }
        // A controlled global phase is a phase gate on the control itself.
        "gphase" => {
            check(1)?;
            ("p", params)
        }
        "p" | "phase" | "u1" => {
            check(1)?;
            ("cp", params)
        }
        "rx" => {
            check(1)?;
            ("crx", params)
        }
        "ry" => {
            check(1)?;
            ("cry", params)
        }
        "rz" => {
            check(1)?;
            ("crz", params)
        }
        "u" | "U" | "u3" => {
            check(3)?;
            ("cu3", params)
        }
        "cp" | "cu1" | "cphase" => {
            return Err(QasmError::new(
                line,
                col,
                "`ctrl @` chains deeper than the built-in controlled gates are not \
                 supported (no ccp lowering)",
            ));
        }
        other => {
            return Err(QasmError::new(
                line,
                col,
                format!(
                    "no controlled form of `{other}` is available in the supported \
                     QASM3 subset"
                ),
            ))
        }
    };
    Ok((folded.0.to_string(), folded.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_circuit::{simulate, Gate};

    const HEADER: &str = "OPENQASM 3.0;\ninclude \"stdgates.inc\";\n";

    fn with_header(body: &str) -> String {
        format!("{HEADER}{body}")
    }

    #[test]
    fn parses_bell_pair_with_v3_declarations() {
        let p = parse3(&with_header(
            "qubit[2] q;\nbit[2] c;\nh q[0];\ncx q[0],q[1];\nc = measure q;\n",
        ))
        .unwrap();
        assert_eq!(p.version, QasmVersion::V3);
        assert_eq!(p.circuit.num_qubits(), 2);
        assert_eq!(p.circuit.len(), 2);
        assert_eq!(p.measurements, 2);
        assert_eq!(p.qregs, vec![("q".to_string(), 2)]);
        assert_eq!(p.cregs, vec![("c".to_string(), 2)]);
        let sv = simulate(&p.circuit);
        assert!((sv.probability(0) - 0.5).abs() < 1e-9);
        assert!((sv.probability(3) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bare_and_sized_declarations_flatten_in_order() {
        let p = parse3(&with_header("qubit a;\nqubit[2] b;\nx b[1];\nh a;\n")).unwrap();
        assert_eq!(p.circuit.num_qubits(), 3);
        assert_eq!(p.circuit.instructions()[0].qubits, vec![2]);
        assert_eq!(p.circuit.instructions()[1].qubits, vec![0]);
        let p = parse3(&with_header("bit c;\nqubit q;\nh q;\nc = measure q;\n")).unwrap();
        assert_eq!(p.measurements, 1);
    }

    #[test]
    fn ctrl_modifier_chains_fold_into_controlled_gates() {
        let src = with_header(
            "qubit[3] q;\n\
             ctrl @ x q[0],q[1];\n\
             ctrl @ ctrl @ x q[0],q[1],q[2];\n\
             ctrl(2) @ x q[0],q[1],q[2];\n\
             ctrl @ z q[0],q[1];\n\
             ctrl @ rz(0.5) q[0],q[1];\n\
             ctrl @ s q[0],q[1];\n\
             ctrl @ U(0.1,0.2,0.3) q[0],q[1];\n",
        );
        let p = parse3(&src).unwrap();
        let counts = p.circuit.gate_counts();
        assert_eq!(counts["cx"], 1 + 2 * 6 + 4); // one cx + two ccx bodies + crz/cu3 expansions
        let direct = {
            // The same statements written against the v2 builtins.
            let v2 = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n\
                      cx q[0],q[1];\nccx q[0],q[1],q[2];\nccx q[0],q[1],q[2];\n\
                      cz q[0],q[1];\ncrz(0.5) q[0],q[1];\ncu1(pi/2) q[0],q[1];\n\
                      cu3(0.1,0.2,0.3) q[0],q[1];\n";
            crate::parser::parse_circuit(v2).unwrap()
        };
        assert_eq!(p.circuit, direct);
    }

    #[test]
    fn gphase_accumulates_and_controls_to_phase_gates() {
        let p = parse3(&with_header("qubit[1] q;\ngphase(0.25);\ngphase(-1.5);\n")).unwrap();
        assert!((p.circuit.global_phase() - (0.25 - 1.5)).abs() < 1e-15);
        assert!(p.circuit.is_empty());

        let p = parse3(&with_header("qubit[2] q;\nctrl @ gphase(0.7) q[0];\n")).unwrap();
        assert_eq!(p.circuit.instructions()[0].gate, Gate::P(0.7));
        assert_eq!(p.circuit.instructions()[0].qubits, vec![0]);
        let p = parse3(&with_header(
            "qubit[2] q;\nctrl(2) @ gphase(0.7) q[0],q[1];\n",
        ))
        .unwrap();
        assert_eq!(p.circuit.instructions()[0].gate, Gate::CPhase(0.7));
    }

    #[test]
    fn gphase_inside_gate_definitions_applies_at_expansion() {
        let src = with_header(
            "gate phased a { gphase(0.5); x a; }\nqubit[1] q;\nphased q[0];\nphased q[0];\n",
        );
        let p = parse3(&src).unwrap();
        assert_eq!(p.circuit.len(), 2);
        assert!((p.circuit.global_phase() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn u_builtin_and_broadcasting_work() {
        let p = parse3(&with_header("qubit[3] q;\nU(0.1,0.2,0.3) q;\n")).unwrap();
        assert_eq!(p.circuit.gate_counts()["u3"], 3);
        let p = parse3(&with_header("qubit[2] a;\nqubit[2] b;\nctrl @ x a,b;\n")).unwrap();
        assert_eq!(p.circuit.gate_counts()["cx"], 2);
    }

    #[test]
    fn arrow_and_bare_measure_forms_are_accepted() {
        let p = parse3(&with_header(
            "qubit[2] q;\nbit[2] c;\nmeasure q -> c;\nmeasure q[0];\n",
        ))
        .unwrap();
        assert_eq!(p.measurements, 3);
        let p = parse3(&with_header(
            "qubit[2] q;\nbit[2] c;\nc[1] = measure q[0];\n",
        ))
        .unwrap();
        assert_eq!(p.measurements, 1);
    }

    #[test]
    fn legacy_qreg_creg_spellings_remain_valid() {
        let p = parse3(&with_header("qreg q[2];\ncreg c[2];\nh q[0];\n")).unwrap();
        assert_eq!(p.circuit.num_qubits(), 2);
        assert_eq!(p.cregs, vec![("c".to_string(), 2)]);
    }

    #[test]
    fn rejects_malformed_v3_programs_with_spans() {
        // Empty array designator.
        let err = parse3(&with_header("qubit[0] q;\n")).unwrap_err();
        assert!(err.message.contains("at least one qubit"), "{err}");
        assert_eq!(err.line, 3);

        // Unterminated modifier chain.
        let err = parse3(&with_header("qubit[2] q;\nctrl @ ;\n")).unwrap_err();
        assert!(err.message.contains("unterminated modifier chain"), "{err}");
        assert_eq!(err.line, 4);

        // `ctrl` without `@`.
        let err = parse3(&with_header("qubit[2] q;\nctrl x q[0],q[1];\n")).unwrap_err();
        assert!(err.message.contains("`@`"), "{err}");

        // Spurious parameters on parameterless gates under `ctrl @`.
        let err = parse3(&with_header("qubit[2] q;\nctrl @ x(1.25) q[0],q[1];\n")).unwrap_err();
        assert!(err.message.contains("0 parameter"), "{err}");
        assert!(parse3(&with_header("qubit[2] q;\nctrl @ s(9.9) q[0],q[1];\n")).is_err());

        // Unsupported modifiers and statements.
        assert!(parse3(&with_header("qubit[2] q;\ninv @ x q[0];\n")).is_err());
        assert!(parse3(&with_header("qubit[1] q;\nreset q[0];\n")).is_err());
        assert!(parse3(&with_header("input float theta;\n")).is_err());
        assert!(parse3(&with_header("opaque foo a,b;\n")).is_err());
        assert!(parse3(&with_header(
            "qubit[2] q;\nctrl @ can(0.1,0.2,0.3) q[0],q[1];\n"
        ))
        .is_err());
        assert!(parse3("OPENQASM 2.0;\nqubit[2] q;\n").is_err());

        // qelib1 include is a v2-ism.
        let err = parse3("OPENQASM 3.0;\ninclude \"qelib1.inc\";\n").unwrap_err();
        assert!(err.message.contains("stdgates.inc"), "{err}");

        // v3 syntax under a v2 header names the version mismatch.
        let err = crate::parser::parse("OPENQASM 2.0;\nqubit[2] q;\n").unwrap_err();
        assert!(err.message.contains("OpenQASM 3 syntax"), "{err}");
        assert_eq!((err.line, err.col), (2, 1));
        let err = crate::parser::parse("OPENQASM 2.0;\nqreg q[1];\ngphase(0.1);\n").unwrap_err();
        assert!(err.message.contains("OpenQASM 3 syntax"), "{err}");
    }
}
