//! A recursive-descent parser lowering OpenQASM 2.0 to the circuit IR.
//!
//! Supported language: the `OPENQASM 2.0;` header, `include "qelib1.inc";`,
//! `qreg`/`creg` declarations, gate applications with register broadcasting,
//! user `gate` definitions (expanded recursively at application time),
//! `opaque` declarations, `barrier` (a scheduling no-op for this IR) and
//! `measure` (recorded but not represented — the IR is unitary-only).
//! `reset` and classically-controlled `if` statements are rejected with a
//! clear error, and OpenQASM 3 keywords (`qubit`, `gphase`, `ctrl`, …) under
//! a 2.0 header are rejected with an error naming the version mismatch.
//!
//! The (crate-private) `Parser` state machine itself is version-agnostic:
//! the [`crate::parser3`] module drives the same register, expression and
//! gate-application machinery with the OpenQASM 3 surface grammar, so both
//! dialects lower onto identical [`Gate`] semantics.
//!
//! The full `qelib1.inc` gate set plus the `snailqc` dialect gates
//! (`iswap`, `siswap`, `syc`, `iswap_pow`, `fsim`, `zx`, `can`, `unitary2`)
//! are built in: those names always lower to their native [`Gate`] variants
//! even when the source re-declares them textually (mirroring how Qiskit
//! treats known `qelib1` gates), which is what makes `parse(emit(c))`
//! preserve gate sequences exactly.

use crate::emit::QasmVersion;
use crate::error::QasmError;
use crate::lexer::{lex, Tok, Token};
use snailqc_circuit::{Circuit, Gate};
use snailqc_math::{Matrix4, C64};
use std::collections::HashMap;
use std::f64::consts::PI;

/// A parsed OpenQASM program lowered onto a flattened qubit register.
#[derive(Debug, Clone)]
pub struct QasmProgram {
    /// The dialect declared by the `OPENQASM` header.
    pub version: QasmVersion,
    /// The lowered circuit over all declared qubits (registers flattened in
    /// declaration order).
    pub circuit: Circuit,
    /// Declared quantum registers as `(name, size)`, in order.
    pub qregs: Vec<(String, usize)>,
    /// Declared classical registers as `(name, size)`, in order.
    pub cregs: Vec<(String, usize)>,
    /// Number of single-bit measurements encountered.
    pub measurements: usize,
    /// Number of barrier statements encountered.
    pub barriers: usize,
}

impl QasmProgram {
    /// The flat index of `reg[idx]`, if declared.
    pub fn qubit_index(&self, reg: &str, idx: usize) -> Option<usize> {
        let mut offset = 0;
        for (name, size) in &self.qregs {
            if name == reg {
                return (idx < *size).then_some(offset + idx);
            }
            offset += size;
        }
        None
    }
}

/// Parses an OpenQASM 2.0 program.
pub fn parse(source: &str) -> Result<QasmProgram, QasmError> {
    Parser::new(lex(source)?).run()
}

/// Parses an OpenQASM 2.0 program, returning only the lowered circuit.
pub fn parse_circuit(source: &str) -> Result<Circuit, QasmError> {
    parse(source).map(|p| p.circuit)
}

// ---------------------------------------------------------------------------
// Parameter expressions
// ---------------------------------------------------------------------------

/// A parameter expression inside a gate call or definition body.
#[derive(Debug, Clone)]
pub(crate) enum Expr {
    Num(f64),
    Pi,
    Param(String),
    Neg(Box<Expr>),
    Bin(char, Box<Expr>, Box<Expr>),
    Call(String, Box<Expr>),
}

impl Expr {
    fn eval(&self, env: &HashMap<String, f64>, line: usize, col: usize) -> Result<f64, QasmError> {
        Ok(match self {
            Expr::Num(x) => *x,
            Expr::Pi => PI,
            Expr::Param(name) => *env
                .get(name)
                .ok_or_else(|| QasmError::new(line, col, format!("unknown parameter `{name}`")))?,
            Expr::Neg(e) => -e.eval(env, line, col)?,
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(env, line, col)?, b.eval(env, line, col)?);
                match op {
                    '+' => a + b,
                    '-' => a - b,
                    '*' => a * b,
                    '/' => a / b,
                    '^' => a.powf(b),
                    _ => unreachable!("unknown operator"),
                }
            }
            Expr::Call(f, e) => {
                let x = e.eval(env, line, col)?;
                match f.as_str() {
                    "sin" => x.sin(),
                    "cos" => x.cos(),
                    "tan" => x.tan(),
                    "exp" => x.exp(),
                    "ln" => x.ln(),
                    "sqrt" => x.sqrt(),
                    other => {
                        return Err(QasmError::new(
                            line,
                            col,
                            format!("unknown function `{other}`"),
                        ))
                    }
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Gate environment
// ---------------------------------------------------------------------------

/// One statement inside a `gate` definition body.
#[derive(Debug, Clone)]
enum BodyOp {
    Call {
        name: String,
        params: Vec<Expr>,
        qargs: Vec<String>,
        line: usize,
        col: usize,
    },
    Barrier,
}

/// A user gate definition.
#[derive(Debug, Clone)]
struct GateDef {
    params: Vec<String>,
    qargs: Vec<String>,
    body: Vec<BodyOp>,
}

/// An operand of a gate application / barrier / measure.
#[derive(Debug, Clone)]
pub(crate) enum Operand {
    /// A whole register, broadcast element-wise.
    Reg(String),
    /// One indexed bit of a register.
    Bit(String, usize),
}

/// The shared parser state machine. The version-2 grammar lives in this
/// module; [`crate::parser3`] drives the same machine with the QASM3 surface
/// grammar so both dialects lower through identical gate semantics.
pub(crate) struct Parser {
    pub(crate) tokens: Vec<Token>,
    pub(crate) pos: usize,
    pub(crate) qregs: Vec<(String, usize, usize)>, // name, size, flat offset
    pub(crate) cregs: Vec<(String, usize)>,
    gate_defs: HashMap<String, GateDef>,
    opaque_decls: HashMap<String, (usize, usize)>, // params, qubits
    pub(crate) circuit: Circuit,
    pub(crate) measurements: usize,
    pub(crate) barriers: usize,
    /// QASM3 mode: allows `gphase` inside gate bodies and definitions.
    pub(crate) allow_v3: bool,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Self {
        Self {
            tokens,
            pos: 0,
            qregs: Vec::new(),
            cregs: Vec::new(),
            gate_defs: HashMap::new(),
            opaque_decls: HashMap::new(),
            circuit: Circuit::new(0),
            measurements: 0,
            barriers: 0,
            allow_v3: false,
        }
    }

    // --- token helpers ------------------------------------------------------

    pub(crate) fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| (t.line, t.col))
            .unwrap_or((1, 1))
    }

    pub(crate) fn err(&self, message: impl Into<String>) -> QasmError {
        let (line, col) = self.here();
        QasmError::new(line, col, message)
    }

    pub(crate) fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    /// The token after the next one, for one-token lookahead decisions.
    pub(crate) fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.tok)
    }

    pub(crate) fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn expect(&mut self, want: &Tok, what: &str) -> Result<(), QasmError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    pub(crate) fn expect_ident(&mut self, what: &str) -> Result<String, QasmError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    pub(crate) fn expect_int(&mut self, what: &str) -> Result<u64, QasmError> {
        match self.peek() {
            Some(Tok::Int(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(n)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    pub(crate) fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // --- top level ----------------------------------------------------------

    fn run(mut self) -> Result<QasmProgram, QasmError> {
        self.parse_header()?;
        while self.peek().is_some() {
            self.parse_statement()?;
        }
        Ok(self.finish(QasmVersion::V2))
    }

    /// Packages the accumulated state into a [`QasmProgram`].
    pub(crate) fn finish(self, version: QasmVersion) -> QasmProgram {
        QasmProgram {
            version,
            circuit: self.circuit,
            qregs: self.qregs.iter().map(|(n, s, _)| (n.clone(), *s)).collect(),
            cregs: self.cregs,
            measurements: self.measurements,
            barriers: self.barriers,
        }
    }

    fn parse_header(&mut self) -> Result<(), QasmError> {
        match self.next() {
            Some(Tok::Ident(kw)) if kw == "OPENQASM" => {}
            _ => return Err(self.err("program must start with `OPENQASM 2.0;`")),
        }
        match self.next() {
            Some(Tok::Real(v)) if (v - 2.0).abs() < f64::EPSILON => {}
            Some(Tok::Int(2)) => {}
            other => {
                return Err(self.err(format!("unsupported OPENQASM version {other:?} (need 2.0)")))
            }
        }
        self.expect(&Tok::Semi, "`;` after version")
    }

    fn parse_statement(&mut self) -> Result<(), QasmError> {
        let kw = match self.peek() {
            Some(Tok::Ident(s)) => s.clone(),
            other => return Err(self.err(format!("expected a statement, found {other:?}"))),
        };
        match kw.as_str() {
            "include" => self.parse_include(),
            "qreg" => self.parse_qreg(),
            "creg" => self.parse_creg(),
            "gate" => self.parse_gate_def(),
            "opaque" => self.parse_opaque(),
            "barrier" => self.parse_barrier(),
            "measure" => self.parse_measure(),
            "reset" => Err(self.err("`reset` is not supported (the circuit IR is unitary-only)")),
            "if" => Err(self.err("classically-controlled `if` statements are not supported")),
            "qubit" | "bit" | "input" | "gphase" | "ctrl" | "negctrl" | "inv" => Err(self.err(
                format!("`{kw}` is OpenQASM 3 syntax, but the header declares `OPENQASM 2.0`"),
            )),
            _ => self.parse_application(),
        }
    }

    fn parse_include(&mut self) -> Result<(), QasmError> {
        self.pos += 1; // include
        let file = match self.next() {
            Some(Tok::Str(s)) => s,
            other => return Err(self.err(format!("expected include filename, found {other:?}"))),
        };
        if file != "qelib1.inc" {
            return Err(self.err(format!(
                "cannot include `{file}`: only the built-in \"qelib1.inc\" is available"
            )));
        }
        self.expect(&Tok::Semi, "`;` after include")
    }

    pub(crate) fn parse_qreg(&mut self) -> Result<(), QasmError> {
        self.pos += 1; // qreg
        let name = self.expect_ident("register name")?;
        self.expect(&Tok::LBracket, "`[`")?;
        let size = self.expect_int("register size")? as usize;
        self.expect(&Tok::RBracket, "`]`")?;
        self.expect(&Tok::Semi, "`;`")?;
        self.declare_qreg(name, size, "qreg")
    }

    /// Registers a quantum register (either dialect's declaration syntax) and
    /// grows the flat circuit register, keeping already-lowered instructions.
    pub(crate) fn declare_qreg(
        &mut self,
        name: String,
        size: usize,
        kind: &str,
    ) -> Result<(), QasmError> {
        if size == 0 {
            return Err(self.err(format!("{kind} `{name}` must have at least one qubit")));
        }
        if self.find_qreg(&name).is_some() || self.cregs.iter().any(|(n, _)| *n == name) {
            return Err(self.err(format!("register `{name}` is already declared")));
        }
        let offset = self.circuit.num_qubits();
        self.qregs.push((name, size, offset));
        let total = offset + size;
        let mapping: Vec<usize> = (0..offset).collect();
        self.circuit = self.circuit.remap_qubits(&mapping, total);
        Ok(())
    }

    pub(crate) fn parse_creg(&mut self) -> Result<(), QasmError> {
        self.pos += 1; // creg
        let name = self.expect_ident("register name")?;
        self.expect(&Tok::LBracket, "`[`")?;
        let size = self.expect_int("register size")? as usize;
        self.expect(&Tok::RBracket, "`]`")?;
        self.expect(&Tok::Semi, "`;`")?;
        self.declare_creg(name, size)
    }

    /// Registers a classical register (either dialect's declaration syntax).
    pub(crate) fn declare_creg(&mut self, name: String, size: usize) -> Result<(), QasmError> {
        if self.find_qreg(&name).is_some() || self.cregs.iter().any(|(n, _)| *n == name) {
            return Err(self.err(format!("register `{name}` is already declared")));
        }
        self.cregs.push((name, size));
        Ok(())
    }

    pub(crate) fn find_qreg(&self, name: &str) -> Option<(usize, usize)> {
        self.qregs
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, size, offset)| (*size, *offset))
    }

    // --- gate definitions ---------------------------------------------------

    pub(crate) fn parse_gate_def(&mut self) -> Result<(), QasmError> {
        self.pos += 1; // gate
        let name = self.expect_ident("gate name")?;
        let params = if self.eat(&Tok::LParen) {
            let p = self.parse_ident_list()?;
            self.expect(&Tok::RParen, "`)` after gate parameters")?;
            p
        } else {
            Vec::new()
        };
        let qargs = self.parse_ident_list()?;
        if qargs.is_empty() {
            return Err(self.err(format!("gate `{name}` needs at least one qubit argument")));
        }
        self.expect(&Tok::LBrace, "`{` opening the gate body")?;
        let mut body = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let (line, col) = self.here();
            let op = self.expect_ident("a gate call inside the body")?;
            if op == "barrier" {
                self.parse_ident_list()?; // formal operands, unused
                self.expect(&Tok::Semi, "`;`")?;
                body.push(BodyOp::Barrier);
                continue;
            }
            let call_params = if self.eat(&Tok::LParen) {
                let p = self.parse_expr_list()?;
                self.expect(&Tok::RParen, "`)` after call parameters")?;
                p
            } else {
                Vec::new()
            };
            let call_qargs = self.parse_ident_list()?;
            self.expect(&Tok::Semi, "`;` after gate call")?;
            for q in &call_qargs {
                if !qargs.contains(q) {
                    return Err(QasmError::new(
                        line,
                        col,
                        format!("`{q}` is not an argument of gate `{name}`"),
                    ));
                }
            }
            body.push(BodyOp::Call {
                name: op,
                params: call_params,
                qargs: call_qargs,
                line,
                col,
            });
        }
        // Known names always lower natively; parse and drop re-declarations.
        if builtin_arity(&name).is_none() {
            self.gate_defs.insert(
                name,
                GateDef {
                    params,
                    qargs,
                    body,
                },
            );
        }
        Ok(())
    }

    pub(crate) fn parse_opaque(&mut self) -> Result<(), QasmError> {
        self.pos += 1; // opaque
        let name = self.expect_ident("opaque gate name")?;
        let params = if self.eat(&Tok::LParen) {
            let p = self.parse_ident_list()?;
            self.expect(&Tok::RParen, "`)`")?;
            p
        } else {
            Vec::new()
        };
        let qargs = self.parse_ident_list()?;
        self.expect(&Tok::Semi, "`;` after opaque declaration")?;
        self.opaque_decls.insert(name, (params.len(), qargs.len()));
        Ok(())
    }

    fn parse_ident_list(&mut self) -> Result<Vec<String>, QasmError> {
        let mut out = Vec::new();
        if let Some(Tok::Ident(_)) = self.peek() {
            out.push(self.expect_ident("identifier")?);
            while self.eat(&Tok::Comma) {
                out.push(self.expect_ident("identifier")?);
            }
        }
        Ok(out)
    }

    // --- expressions --------------------------------------------------------

    pub(crate) fn parse_expr_list(&mut self) -> Result<Vec<Expr>, QasmError> {
        let mut out = vec![self.parse_expr()?];
        while self.eat(&Tok::Comma) {
            out.push(self.parse_expr()?);
        }
        Ok(out)
    }

    fn parse_expr(&mut self) -> Result<Expr, QasmError> {
        self.parse_additive()
    }

    fn parse_additive(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => '+',
                Some(Tok::Minus) => '-',
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => '*',
                Some(Tok::Slash) => '/',
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, QasmError> {
        if self.eat(&Tok::Minus) {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat(&Tok::Plus) {
            return self.parse_unary();
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<Expr, QasmError> {
        let base = self.parse_atom()?;
        if self.eat(&Tok::Caret) {
            // Right associative.
            let exp = self.parse_unary()?;
            return Ok(Expr::Bin('^', Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> Result<Expr, QasmError> {
        match self.next() {
            Some(Tok::Real(x)) => Ok(Expr::Num(x)),
            Some(Tok::Int(n)) => Ok(Expr::Num(n as f64)),
            Some(Tok::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if name == "pi" {
                    Ok(Expr::Pi)
                } else if self.eat(&Tok::LParen) {
                    let arg = self.parse_expr()?;
                    self.expect(&Tok::RParen, "`)` closing function call")?;
                    Ok(Expr::Call(name, Box::new(arg)))
                } else {
                    Ok(Expr::Param(name))
                }
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }

    // --- operands, barrier, measure -----------------------------------------

    pub(crate) fn parse_operand(&mut self) -> Result<Operand, QasmError> {
        let name = self.expect_ident("register operand")?;
        if self.eat(&Tok::LBracket) {
            let idx = self.expect_int("qubit index")? as usize;
            self.expect(&Tok::RBracket, "`]`")?;
            Ok(Operand::Bit(name, idx))
        } else {
            Ok(Operand::Reg(name))
        }
    }

    pub(crate) fn parse_operand_list(&mut self) -> Result<Vec<Operand>, QasmError> {
        let mut out = vec![self.parse_operand()?];
        while self.eat(&Tok::Comma) {
            out.push(self.parse_operand()?);
        }
        Ok(out)
    }

    /// Flat qubit indices of a quantum operand: one per register element, or
    /// a single entry for a bit.
    pub(crate) fn resolve_qubits(&self, op: &Operand) -> Result<Vec<usize>, QasmError> {
        match op {
            Operand::Reg(name) => {
                let (size, offset) = self
                    .find_qreg(name)
                    .ok_or_else(|| self.err(format!("unknown quantum register `{name}`")))?;
                Ok((offset..offset + size).collect())
            }
            Operand::Bit(name, idx) => {
                let (size, offset) = self
                    .find_qreg(name)
                    .ok_or_else(|| self.err(format!("unknown quantum register `{name}`")))?;
                if *idx >= size {
                    return Err(self.err(format!("index {idx} out of range for `{name}[{size}]`")));
                }
                Ok(vec![offset + idx])
            }
        }
    }

    pub(crate) fn parse_barrier(&mut self) -> Result<(), QasmError> {
        self.pos += 1; // barrier
        let ops = self.parse_operand_list()?;
        for op in &ops {
            self.resolve_qubits(op)?; // validate only
        }
        self.expect(&Tok::Semi, "`;` after barrier")?;
        self.barriers += 1;
        Ok(())
    }

    pub(crate) fn parse_measure(&mut self) -> Result<(), QasmError> {
        self.pos += 1; // measure
        let q = self.parse_operand()?;
        self.expect(&Tok::Arrow, "`->` in measure")?;
        let c = self.parse_operand()?;
        self.expect(&Tok::Semi, "`;` after measure")?;
        self.record_measure(&q, &c)
    }

    /// Number of classical bits a measure target covers (the whole register,
    /// or 1 for an in-range indexed bit).
    pub(crate) fn resolve_bits(&self, op: &Operand) -> Result<usize, QasmError> {
        let size_of = |name: &str| {
            self.cregs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, size)| *size)
                .ok_or_else(|| self.err(format!("unknown classical register `{name}`")))
        };
        match op {
            Operand::Reg(name) => size_of(name),
            Operand::Bit(name, idx) => {
                let size = size_of(name)?;
                if *idx >= size {
                    return Err(self.err(format!("index {idx} out of range for `{name}[{size}]`")));
                }
                Ok(1)
            }
        }
    }

    /// Validates widths of a measurement from qubit operand `q` into
    /// classical operand `c` and counts it (shared by `measure q -> c;` and
    /// the v3 assignment form `c = measure q;`).
    pub(crate) fn record_measure(&mut self, q: &Operand, c: &Operand) -> Result<(), QasmError> {
        let q_count = self.resolve_qubits(q)?.len();
        let c_count = self.resolve_bits(c)?;
        if q_count != c_count {
            return Err(self.err(format!(
                "measure width mismatch: {q_count} qubit(s) into {c_count} bit(s)"
            )));
        }
        self.measurements += q_count;
        Ok(())
    }

    // --- gate application ---------------------------------------------------

    pub(crate) fn parse_application(&mut self) -> Result<(), QasmError> {
        let (line, col) = self.here();
        let name = self.expect_ident("gate name")?;
        let params = self.parse_call_params(line, col)?;
        self.apply_broadcast(&name, &params, line, col)
    }

    /// Parses an optional `(expr, …)` parameter list and evaluates it in the
    /// empty environment (top-level applications have no free parameters).
    pub(crate) fn parse_call_params(
        &mut self,
        line: usize,
        col: usize,
    ) -> Result<Vec<f64>, QasmError> {
        if self.eat(&Tok::LParen) {
            let exprs = self.parse_expr_list()?;
            self.expect(&Tok::RParen, "`)` after parameters")?;
            let env = HashMap::new();
            exprs
                .iter()
                .map(|e| e.eval(&env, line, col))
                .collect::<Result<Vec<f64>, _>>()
        } else {
            Ok(Vec::new())
        }
    }

    /// Parses the operand list and trailing `;` of a gate application, then
    /// applies `name` with register broadcasting — the shared tail of both
    /// dialects' application statements.
    pub(crate) fn apply_broadcast(
        &mut self,
        name: &str,
        params: &[f64],
        line: usize,
        col: usize,
    ) -> Result<(), QasmError> {
        let operands = self.parse_operand_list()?;
        self.expect(&Tok::Semi, "`;` after gate application")?;

        // Broadcast over register operands (all registers must agree in size).
        let resolved: Vec<Vec<usize>> = operands
            .iter()
            .map(|op| self.resolve_qubits(op))
            .collect::<Result<_, _>>()?;
        let reg_len = resolved
            .iter()
            .zip(&operands)
            .filter(|(_, op)| matches!(op, Operand::Reg(_)))
            .map(|(idxs, _)| idxs.len())
            .collect::<Vec<_>>();
        let n = reg_len.first().copied().unwrap_or(1);
        if reg_len.iter().any(|&len| len != n) {
            return Err(QasmError::new(
                line,
                col,
                "register operands differ in size",
            ));
        }
        for k in 0..n {
            let qubits: Vec<usize> = resolved
                .iter()
                .map(|idxs| if idxs.len() == 1 { idxs[0] } else { idxs[k] })
                .collect();
            self.apply(name, params, &qubits, line, col, 0)?;
        }
        Ok(())
    }

    /// Applies a named gate, preferring built-ins, then user definitions.
    pub(crate) fn apply(
        &mut self,
        name: &str,
        params: &[f64],
        qubits: &[usize],
        line: usize,
        col: usize,
        depth: usize,
    ) -> Result<(), QasmError> {
        if depth > 64 {
            return Err(QasmError::new(line, col, "gate expansion too deep"));
        }
        if name == "gphase" {
            // A zero-qubit global-phase entry (OpenQASM 3); reachable from
            // v3 top-level statements and from v3 gate-definition bodies.
            if !self.allow_v3 {
                return Err(QasmError::new(
                    line,
                    col,
                    "`gphase` is OpenQASM 3 syntax, but the header declares `OPENQASM 2.0`",
                ));
            }
            if params.len() != 1 || !qubits.is_empty() {
                return Err(QasmError::new(
                    line,
                    col,
                    "`gphase` takes exactly one parameter and no qubit operands",
                ));
            }
            self.circuit.add_global_phase(params[0]);
            return Ok(());
        }
        {
            let mut seen = qubits.to_vec();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != qubits.len() {
                return Err(QasmError::new(
                    line,
                    col,
                    format!("gate `{name}` applied with repeated qubit operands"),
                ));
            }
        }
        if let Some((want_params, want_qubits)) = builtin_arity(name) {
            if params.len() != want_params || qubits.len() != want_qubits {
                return Err(QasmError::new(
                    line,
                    col,
                    format!(
                        "gate `{name}` expects {want_params} parameter(s) on {want_qubits} \
                         qubit(s), got {} on {}",
                        params.len(),
                        qubits.len()
                    ),
                ));
            }
            return self.lower_builtin(name, params, qubits, line, col, depth);
        }
        if let Some(def) = self.gate_defs.get(name).cloned() {
            if params.len() != def.params.len() || qubits.len() != def.qargs.len() {
                return Err(QasmError::new(
                    line,
                    col,
                    format!(
                        "gate `{name}` expects {} parameter(s) on {} qubit(s), got {} on {}",
                        def.params.len(),
                        def.qargs.len(),
                        params.len(),
                        qubits.len()
                    ),
                ));
            }
            let env: HashMap<String, f64> = def
                .params
                .iter()
                .cloned()
                .zip(params.iter().copied())
                .collect();
            let qmap: HashMap<&str, usize> = def
                .qargs
                .iter()
                .map(String::as_str)
                .zip(qubits.iter().copied())
                .collect();
            for op in &def.body {
                match op {
                    BodyOp::Barrier => {}
                    BodyOp::Call {
                        name: inner,
                        params: exprs,
                        qargs,
                        line,
                        col,
                    } => {
                        let inner_params = exprs
                            .iter()
                            .map(|e| e.eval(&env, *line, *col))
                            .collect::<Result<Vec<f64>, _>>()?;
                        let inner_qubits: Vec<usize> =
                            qargs.iter().map(|q| qmap[q.as_str()]).collect();
                        self.apply(inner, &inner_params, &inner_qubits, *line, *col, depth + 1)?;
                    }
                }
            }
            return Ok(());
        }
        if self.opaque_decls.contains_key(name) {
            return Err(QasmError::new(
                line,
                col,
                format!("opaque gate `{name}` has no built-in lowering"),
            ));
        }
        Err(QasmError::new(line, col, format!("unknown gate `{name}`")))
    }

    /// Lowers one built-in gate application onto the circuit.
    fn lower_builtin(
        &mut self,
        name: &str,
        p: &[f64],
        q: &[usize],
        line: usize,
        col: usize,
        depth: usize,
    ) -> Result<(), QasmError> {
        // Composite qelib1 gates expand structurally through `apply` so their
        // bodies stay in one place; everything else maps straight to the IR.
        let expand =
            |parser: &mut Self, ops: &[(&str, Vec<f64>, Vec<usize>)]| -> Result<(), QasmError> {
                for (inner, ip, iq) in ops {
                    parser.apply(inner, ip, iq, line, col, depth + 1)?;
                }
                Ok(())
            };
        let gate = match name {
            "id" => Gate::I,
            "x" => Gate::X,
            "y" => Gate::Y,
            "z" => Gate::Z,
            "h" => Gate::H,
            "s" => Gate::S,
            "sdg" => Gate::Sdg,
            "t" => Gate::T,
            "tdg" => Gate::Tdg,
            "sx" => Gate::SX,
            "rx" => Gate::RX(p[0]),
            "ry" => Gate::RY(p[0]),
            "rz" => Gate::RZ(p[0]),
            "p" | "u1" => Gate::P(p[0]),
            "u2" => Gate::U3(PI / 2.0, p[0], p[1]),
            "u3" | "u" | "U" => Gate::U3(p[0], p[1], p[2]),
            "cx" | "CX" => Gate::CX,
            "cz" => Gate::CZ,
            "cp" | "cu1" => Gate::CPhase(p[0]),
            "swap" => Gate::Swap,
            "iswap" => Gate::ISwap,
            "siswap" => Gate::SqrtISwap,
            "syc" => Gate::Syc,
            "iswap_pow" => Gate::ISwapPow(p[0]),
            "fsim" => Gate::Fsim(p[0], p[1]),
            "zx" => Gate::ZXInteraction(p[0]),
            "rzz" => Gate::RZZ(p[0]),
            "rxx" => Gate::RXX(p[0]),
            "ryy" => Gate::RYY(p[0]),
            "can" => Gate::Canonical(p[0], p[1], p[2]),
            "unitary2" => Gate::Unitary2(matrix4_from_params(p)),
            // --- composite qelib1 gates ------------------------------------
            "cy" => {
                return expand(
                    self,
                    &[
                        ("sdg", vec![], vec![q[1]]),
                        ("cx", vec![], vec![q[0], q[1]]),
                        ("s", vec![], vec![q[1]]),
                    ],
                );
            }
            "ch" => {
                return expand(
                    self,
                    &[
                        ("h", vec![], vec![q[1]]),
                        ("sdg", vec![], vec![q[1]]),
                        ("cx", vec![], vec![q[0], q[1]]),
                        ("h", vec![], vec![q[1]]),
                        ("t", vec![], vec![q[1]]),
                        ("cx", vec![], vec![q[0], q[1]]),
                        ("t", vec![], vec![q[1]]),
                        ("h", vec![], vec![q[1]]),
                        ("s", vec![], vec![q[1]]),
                        ("x", vec![], vec![q[1]]),
                        ("s", vec![], vec![q[0]]),
                    ],
                );
            }
            "crz" => {
                return expand(
                    self,
                    &[
                        ("rz", vec![p[0] / 2.0], vec![q[1]]),
                        ("cx", vec![], vec![q[0], q[1]]),
                        ("rz", vec![-p[0] / 2.0], vec![q[1]]),
                        ("cx", vec![], vec![q[0], q[1]]),
                    ],
                );
            }
            "crx" => {
                return expand(
                    self,
                    &[
                        ("h", vec![], vec![q[1]]),
                        ("crz", vec![p[0]], vec![q[0], q[1]]),
                        ("h", vec![], vec![q[1]]),
                    ],
                );
            }
            "cry" => {
                return expand(
                    self,
                    &[
                        ("ry", vec![p[0] / 2.0], vec![q[1]]),
                        ("cx", vec![], vec![q[0], q[1]]),
                        ("ry", vec![-p[0] / 2.0], vec![q[1]]),
                        ("cx", vec![], vec![q[0], q[1]]),
                    ],
                );
            }
            "cu3" => {
                let (theta, phi, lambda) = (p[0], p[1], p[2]);
                return expand(
                    self,
                    &[
                        ("u1", vec![(lambda + phi) / 2.0], vec![q[0]]),
                        ("u1", vec![(lambda - phi) / 2.0], vec![q[1]]),
                        ("cx", vec![], vec![q[0], q[1]]),
                        (
                            "u3",
                            vec![-theta / 2.0, 0.0, -(phi + lambda) / 2.0],
                            vec![q[1]],
                        ),
                        ("cx", vec![], vec![q[0], q[1]]),
                        ("u3", vec![theta / 2.0, phi, 0.0], vec![q[1]]),
                    ],
                );
            }
            "ccx" => {
                return expand(
                    self,
                    &[
                        ("h", vec![], vec![q[2]]),
                        ("cx", vec![], vec![q[1], q[2]]),
                        ("tdg", vec![], vec![q[2]]),
                        ("cx", vec![], vec![q[0], q[2]]),
                        ("t", vec![], vec![q[2]]),
                        ("cx", vec![], vec![q[1], q[2]]),
                        ("tdg", vec![], vec![q[2]]),
                        ("cx", vec![], vec![q[0], q[2]]),
                        ("t", vec![], vec![q[1]]),
                        ("t", vec![], vec![q[2]]),
                        ("h", vec![], vec![q[2]]),
                        ("cx", vec![], vec![q[0], q[1]]),
                        ("t", vec![], vec![q[0]]),
                        ("tdg", vec![], vec![q[1]]),
                        ("cx", vec![], vec![q[0], q[1]]),
                    ],
                );
            }
            "cswap" => {
                return expand(
                    self,
                    &[
                        ("cx", vec![], vec![q[2], q[1]]),
                        ("ccx", vec![], vec![q[0], q[1], q[2]]),
                        ("cx", vec![], vec![q[2], q[1]]),
                    ],
                );
            }
            other => return Err(QasmError::new(line, col, format!("unknown gate `{other}`"))),
        };
        self.circuit.push(gate, q);
        Ok(())
    }
}

/// Parameter/qubit arity of built-in gates, or `None` for unknown names.
fn builtin_arity(name: &str) -> Option<(usize, usize)> {
    Some(match name {
        "id" | "x" | "y" | "z" | "h" | "s" | "sdg" | "t" | "tdg" | "sx" => (0, 1),
        "rx" | "ry" | "rz" | "p" | "u1" => (1, 1),
        "u2" => (2, 1),
        "u3" | "u" | "U" => (3, 1),
        "cx" | "CX" | "cz" | "swap" | "iswap" | "siswap" | "syc" | "cy" | "ch" => (0, 2),
        "cp" | "cu1" | "rzz" | "rxx" | "ryy" | "iswap_pow" | "zx" | "crz" | "crx" | "cry" => (1, 2),
        "fsim" => (2, 2),
        "can" | "cu3" => (3, 2),
        "unitary2" => (32, 2),
        "ccx" | "cswap" => (0, 3),
        _ => return None,
    })
}

/// Reassembles a 4×4 unitary from 32 row-major `(re, im)` parameters (the
/// encoding the emitter uses for [`Gate::Unitary2`]).
fn matrix4_from_params(p: &[f64]) -> Matrix4 {
    let mut m = Matrix4::zeros();
    for r in 0..4 {
        for c in 0..4 {
            let k = 2 * (4 * r + c);
            m[(r, c)] = C64::new(p[k], p[k + 1]);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_circuit::simulate;

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    fn with_header(body: &str) -> String {
        format!("{HEADER}{body}")
    }

    #[test]
    fn parses_bell_pair() {
        let p = parse(&with_header(
            "qreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n",
        ))
        .unwrap();
        assert_eq!(p.circuit.num_qubits(), 2);
        assert_eq!(p.circuit.len(), 2);
        assert_eq!(p.measurements, 2);
        assert_eq!(p.circuit.instructions()[0].gate, Gate::H);
        assert_eq!(p.circuit.instructions()[1].gate, Gate::CX);
        let sv = simulate(&p.circuit);
        assert!((sv.probability(0) - 0.5).abs() < 1e-9);
        assert!((sv.probability(3) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn broadcasts_over_registers() {
        let p = parse(&with_header("qreg q[3];\nh q;\ncx q[0],q[1];\n")).unwrap();
        assert_eq!(p.circuit.gate_counts()["h"], 3);
        let two_reg = parse(&with_header("qreg a[2];\nqreg b[2];\ncx a,b;\n")).unwrap();
        assert_eq!(two_reg.circuit.gate_counts()["cx"], 2);
        assert_eq!(two_reg.circuit.instructions()[0].qubits, vec![0, 2]);
        assert_eq!(two_reg.circuit.instructions()[1].qubits, vec![1, 3]);
        let mixed = parse(&with_header("qreg a[1];\nqreg b[3];\ncx a[0],b;\n")).unwrap();
        assert_eq!(mixed.circuit.gate_counts()["cx"], 3);
    }

    #[test]
    fn evaluates_parameter_expressions() {
        let p = parse(&with_header(
            "qreg q[1];\nrz(pi/2) q[0];\nrx(-2*pi/4) q[0];\nu1(cos(0)) q[0];\n",
        ))
        .unwrap();
        let insts = p.circuit.instructions();
        assert_eq!(insts[0].gate, Gate::RZ(PI / 2.0));
        assert_eq!(insts[1].gate, Gate::RX(-PI / 2.0));
        assert_eq!(insts[2].gate, Gate::P(1.0));
    }

    #[test]
    fn expands_user_gate_definitions() {
        let src = with_header(
            "gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }\n\
             qreg q[3];\nmajority q[0],q[1],q[2];\n",
        );
        let p = parse(&src).unwrap();
        // ccx expands to the 15-gate qelib1 body, plus the two leading CNOTs.
        assert_eq!(p.circuit.len(), 17);
        assert_eq!(p.circuit.gate_counts()["cx"], 8);
    }

    #[test]
    fn ccx_acts_as_toffoli() {
        // |110> -> |111>
        let p = parse(&with_header(
            "qreg q[3];\nx q[0];\nx q[1];\nccx q[0],q[1],q[2];\n",
        ))
        .unwrap();
        let sv = simulate(&p.circuit);
        assert!((sv.probability(0b111) - 1.0).abs() < 1e-9);
        // |100> stays put (qubit 0 is the most significant index bit).
        let p = parse(&with_header("qreg q[3];\nx q[0];\nccx q[0],q[1],q[2];\n")).unwrap();
        let sv = simulate(&p.circuit);
        assert!((sv.probability(0b100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dialect_gates_lower_natively() {
        let src = with_header(
            "opaque siswap a,b;\nqreg q[2];\nsiswap q[0],q[1];\nsyc q[0],q[1];\n\
             iswap_pow(0.25) q[0],q[1];\nfsim(0.5,0.25) q[0],q[1];\ncan(0.1,0.05,0.0) q[0],q[1];\n",
        );
        let p = parse(&src).unwrap();
        let names: Vec<&str> = p
            .circuit
            .instructions()
            .iter()
            .map(|i| i.gate.name())
            .collect();
        assert_eq!(names, vec!["siswap", "syc", "iswap_pow", "fsim", "can"]);
    }

    #[test]
    fn builtin_names_shadow_textual_redefinitions() {
        // The emitter writes a `gate rzz … { cx; u1; cx; }` compatibility
        // definition; parsing must still produce a native RZZ gate.
        let src = with_header(
            "gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }\n\
             qreg q[2];\nrzz(0.5) q[0],q[1];\n",
        );
        let p = parse(&src).unwrap();
        assert_eq!(p.circuit.len(), 1);
        assert_eq!(p.circuit.instructions()[0].gate, Gate::RZZ(0.5));
    }

    #[test]
    fn multiple_qregs_flatten_in_declaration_order() {
        let p = parse(&with_header("qreg a[2];\nh a[1];\nqreg b[2];\nx b[0];\n")).unwrap();
        assert_eq!(p.circuit.num_qubits(), 4);
        assert_eq!(p.circuit.instructions()[0].qubits, vec![1]);
        assert_eq!(p.circuit.instructions()[1].qubits, vec![2]);
        assert_eq!(p.qubit_index("b", 0), Some(2));
        assert_eq!(p.qubit_index("b", 2), None);
        assert_eq!(p.qubit_index("missing", 0), None);
    }

    #[test]
    fn rejects_malformed_programs() {
        assert!(parse("qreg q[2];").is_err(), "missing header");
        assert!(parse(&with_header("qreg q[0];")).is_err(), "empty register");
        assert!(
            parse(&with_header("qreg q[2];\ncx q[0],q[0];")).is_err(),
            "repeated operand"
        );
        assert!(
            parse(&with_header("qreg q[2];\nnope q[0];")).is_err(),
            "unknown gate"
        );
        assert!(
            parse(&with_header("qreg q[2];\nrx q[0];")).is_err(),
            "missing parameter"
        );
        assert!(
            parse(&with_header("qreg q[2];\nh q[5];")).is_err(),
            "index out of range"
        );
        assert!(
            parse(&with_header("qreg a[2];\nqreg b[3];\ncx a,b;")).is_err(),
            "size mismatch"
        );
        assert!(
            parse(&with_header("qreg q[1];\nreset q[0];")).is_err(),
            "reset unsupported"
        );
        assert!(
            parse(&with_header("include \"other.inc\";")).is_err(),
            "foreign includes unavailable"
        );
        assert!(
            parse(&with_header(
                "opaque mystery a,b;\nqreg q[2];\nmystery q[0],q[1];"
            ))
            .is_err(),
            "opaque without lowering"
        );
    }

    #[test]
    fn barrier_and_measure_are_counted_not_lowered() {
        let p = parse(&with_header(
            "qreg q[2];\ncreg c[1];\nh q;\nbarrier q;\nmeasure q[0] -> c[0];\n",
        ))
        .unwrap();
        assert_eq!(p.circuit.len(), 2);
        assert_eq!(p.barriers, 1);
        assert_eq!(p.measurements, 1);
    }
}
