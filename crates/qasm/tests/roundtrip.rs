//! Property tests for the QASM lexer/parser/emitter in isolation (the
//! workload- and transpiler-level round trips live in the workspace-root
//! integration tests).

use proptest::prelude::*;
use snailqc_circuit::{Circuit, Gate};
use snailqc_qasm::{emit, parse, parse_circuit};

fn arb_circuit(max_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (
        1..=max_qubits,
        proptest::collection::vec(
            (
                0..10u8,
                0..1000u32,
                0..1000u32,
                -std::f64::consts::TAU..std::f64::consts::TAU,
            ),
            1..max_gates,
        ),
    )
        .prop_map(|(n, ops)| {
            let mut c = Circuit::new(n.max(2));
            let n = c.num_qubits();
            for (kind, a, b, angle) in ops {
                let q0 = a as usize % n;
                let mut q1 = b as usize % n;
                if q1 == q0 {
                    q1 = (q0 + 1) % n;
                }
                match kind {
                    0 => c.h(q0),
                    1 => c.push(Gate::Tdg, &[q0]),
                    2 => c.rx(angle, q0),
                    3 => c.push(Gate::P(angle), &[q0]),
                    4 => c.push(Gate::U3(angle, -angle, angle / 2.0), &[q0]),
                    5 => c.cx(q0, q1),
                    6 => c.swap(q0, q1),
                    7 => c.push(Gate::SqrtISwap, &[q0, q1]),
                    8 => c.push(Gate::ISwapPow(angle / 7.0), &[q0, q1]),
                    _ => c.push(Gate::Canonical(angle, angle / 2.0, angle / 4.0), &[q0, q1]),
                }
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_emit_round_trips_exactly(c in arb_circuit(7, 50)) {
        let text = emit(&c);
        let back = parse_circuit(&text).unwrap();
        prop_assert_eq!(back, c);
    }

    #[test]
    fn emission_is_idempotent(c in arb_circuit(6, 30)) {
        // emit ∘ parse is the identity on emitted text.
        let text = emit(&c);
        let again = emit(&parse_circuit(&text).unwrap());
        prop_assert_eq!(again, text);
    }

    #[test]
    fn emitted_programs_declare_their_registers(c in arb_circuit(6, 20)) {
        let program = parse(&emit(&c)).unwrap();
        prop_assert_eq!(program.qregs.len(), 1);
        prop_assert_eq!(program.qregs[0].1, c.num_qubits());
        prop_assert_eq!(program.measurements, 0);
    }
}
