//! The cross-version equivalence battery for the QASM3 front-end/emitter in
//! isolation (workload- and CLI-level checks live in the workspace-root
//! integration tests).
//!
//! Three families of properties:
//!
//! 1. **V3 fixed point** — `emit_v3 ∘ parse3` is the identity on emitted
//!    text, and `parse3(emit_v3(c)) == c` exactly (gates, qubits, global
//!    phase, bit-identical `f64` parameters).
//! 2. **Cross-version equivalence** — `parse(emit_v2(c))` and
//!    `parse3(emit_v3(c))` produce statevector-identical circuits for every
//!    representable gate (V2 drops only the unobservable global phase).
//! 3. **Source-level `ctrl @` / `gphase` equivalence** — randomly generated
//!    QASM3 modifier-chain programs simulate identically to their hand-written
//!    QASM2 lowerings.

use proptest::prelude::*;
use snailqc_circuit::{simulate, Circuit, Gate};
use snailqc_qasm::{emit, emit_v3, parse3, parse3_circuit, parse_any, parse_circuit, QasmVersion};

/// Random circuits over every gate kind both emitters round-trip, plus an
/// optional global phase (representable in V3 only).
fn arb_circuit(max_qubits: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    (
        2..=max_qubits,
        (any::<bool>(), -3.0..3.0f64),
        proptest::collection::vec(
            (
                0..13u8,
                0..1000u32,
                0..1000u32,
                -std::f64::consts::TAU..std::f64::consts::TAU,
            ),
            1..max_gates,
        ),
    )
        .prop_map(|(n, (phased, phase), ops)| {
            let mut c = Circuit::new(n);
            if phased {
                c.add_global_phase(phase);
            }
            for (kind, a, b, angle) in ops {
                let q0 = a as usize % n;
                let mut q1 = b as usize % n;
                if q1 == q0 {
                    q1 = (q0 + 1) % n;
                }
                match kind {
                    0 => c.h(q0),
                    1 => c.push(Gate::Sdg, &[q0]),
                    2 => c.rx(angle, q0),
                    3 => c.push(Gate::P(angle), &[q0]),
                    4 => c.push(Gate::U3(angle, -angle, angle / 2.0), &[q0]),
                    5 => c.cx(q0, q1),
                    6 => c.cp(angle, q0, q1),
                    7 => c.swap(q0, q1),
                    8 => c.push(Gate::SqrtISwap, &[q0, q1]),
                    9 => c.push(Gate::ISwapPow(angle / 7.0), &[q0, q1]),
                    10 => c.push(Gate::Fsim(angle, angle / 3.0), &[q0, q1]),
                    11 => c.rzz(angle, q0, q1),
                    _ => c.push(Gate::Canonical(angle, angle / 2.0, angle / 4.0), &[q0, q1]),
                }
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn v3_emit_parse_is_a_fixed_point(c in arb_circuit(7, 50)) {
        let text = emit_v3(&c);
        let back = parse3_circuit(&text).unwrap();
        prop_assert_eq!(&back, &c, "parse3(emit_v3(c)) must equal c exactly");
        prop_assert_eq!(emit_v3(&back), text, "emit_v3 ∘ parse3 must fix emitted text");
    }

    #[test]
    fn cross_version_parses_are_statevector_equivalent(c in arb_circuit(6, 30)) {
        let from_v2 = parse_circuit(&emit(&c)).unwrap();
        let from_v3 = parse3_circuit(&emit_v3(&c)).unwrap();
        // Gate-for-gate identical; V2 just cannot carry the global phase.
        prop_assert_eq!(from_v2.instructions(), from_v3.instructions());
        prop_assert_eq!(from_v2.global_phase(), 0.0);
        prop_assert_eq!(from_v3.global_phase(), c.global_phase());
        let fidelity = simulate(&from_v2).fidelity(&simulate(&from_v3));
        prop_assert!((fidelity - 1.0).abs() < 1e-9, "fidelity = {}", fidelity);
    }

    #[test]
    fn parse_any_dispatches_on_the_header(c in arb_circuit(5, 15)) {
        let v2 = parse_any(&emit(&c)).unwrap();
        prop_assert_eq!(v2.version, QasmVersion::V2);
        let v3 = parse_any(&emit_v3(&c)).unwrap();
        prop_assert_eq!(v3.version, QasmVersion::V3);
        prop_assert_eq!(v2.circuit.instructions(), v3.circuit.instructions());
    }
}

/// One randomly chosen statement emitted in both dialects: QASM3 modifier
/// syntax on the left, the equivalent hand-lowered QASM2 on the right (empty
/// when the statement has no observable QASM2 counterpart, like `gphase`).
fn chain_statement(kind: u8, angle: f64, q: [usize; 3]) -> (String, String) {
    let t = format!("{angle:?}");
    let [a, b, c] = q;
    match kind % 12 {
        0 => (
            format!("ctrl @ x q[{a}],q[{b}];"),
            format!("cx q[{a}],q[{b}];"),
        ),
        1 => (
            format!("ctrl @ ctrl @ x q[{a}],q[{b}],q[{c}];"),
            format!("ccx q[{a}],q[{b}],q[{c}];"),
        ),
        2 => (
            format!("ctrl(2) @ x q[{a}],q[{b}],q[{c}];"),
            format!("ccx q[{a}],q[{b}],q[{c}];"),
        ),
        3 => (
            format!("ctrl @ z q[{a}],q[{b}];"),
            format!("cz q[{a}],q[{b}];"),
        ),
        4 => (
            format!("ctrl @ rz({t}) q[{a}],q[{b}];"),
            format!("crz({t}) q[{a}],q[{b}];"),
        ),
        5 => (
            format!("ctrl @ ry({t}) q[{a}],q[{b}];"),
            format!("cry({t}) q[{a}],q[{b}];"),
        ),
        6 => (
            format!("ctrl @ U({t},{t}/2,-{t}) q[{a}],q[{b}];"),
            format!("cu3({t},{t}/2,-{t}) q[{a}],q[{b}];"),
        ),
        7 => (
            format!("ctrl @ gphase({t}) q[{a}];"),
            format!("u1({t}) q[{a}];"),
        ),
        8 => (
            format!("ctrl(2) @ gphase({t}) q[{a}],q[{b}];"),
            format!("cu1({t}) q[{a}],q[{b}];"),
        ),
        9 => (
            format!("ctrl @ swap q[{a}],q[{b}],q[{c}];"),
            format!("cswap q[{a}],q[{b}],q[{c}];"),
        ),
        10 => (
            format!("ctrl @ s q[{a}],q[{b}];"),
            format!("cu1(pi/2) q[{a}],q[{b}];"),
        ),
        // Pure global phase: no observable QASM2 counterpart.
        _ => (format!("gphase({t});"), String::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ctrl_chains_and_gphase_match_their_v2_lowerings(
        ops in proptest::collection::vec(
            (0..12u8, -3.0..3.0f64, 0..6usize, 0..6usize),
            1..16,
        )
    ) {
        let n = 6;
        let mut v3 = format!("OPENQASM 3.0;\ninclude \"stdgates.inc\";\nqubit[{n}] q;\n");
        let mut v2 = format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{n}];\n");
        for (kind, angle, x, y) in ops {
            // Three distinct qubits.
            let a = x % n;
            let b = (a + 1 + y % (n - 1)) % n;
            let c = (0..n).find(|q| *q != a && *q != b).unwrap();
            let (s3, s2) = chain_statement(kind, angle, [a, b, c]);
            v3.push_str(&s3);
            v3.push('\n');
            if !s2.is_empty() {
                v2.push_str(&s2);
                v2.push('\n');
            }
        }
        let c3 = parse3_circuit(&v3).unwrap();
        let c2 = parse_circuit(&v2).unwrap();
        prop_assert_eq!(c3.instructions(), c2.instructions());
        let fidelity = simulate(&c3).fidelity(&simulate(&c2));
        prop_assert!((fidelity - 1.0).abs() < 1e-9, "fidelity = {}", fidelity);
    }
}

#[test]
fn v3_golden_header_declarations_only_when_used() {
    let mut c = Circuit::new(2);
    c.push(Gate::Syc, &[0, 1]);
    let text = emit_v3(&c);
    // syc pulls fsim, which pulls rxx/ryy, which pull rzz — but not the
    // iswap family.
    for def in ["gate syc", "gate fsim", "gate rxx", "gate ryy", "gate rzz"] {
        assert!(text.contains(def), "missing `{def}`:\n{text}");
    }
    assert!(
        !text.contains("iswap"),
        "unused defs must be omitted:\n{text}"
    );
    assert_eq!(parse3_circuit(&text).unwrap(), c);
}

#[test]
fn v3_programs_reject_v2_only_surface_syntax() {
    // The emitted v2 dialect header (opaque) must not leak into v3 input.
    let err = parse3("OPENQASM 3.0;\nopaque siswap a,b;\n").unwrap_err();
    assert!(err.message.contains("removed in OpenQASM 3"), "{err}");
    // And a stray `->` measure still works (legacy form), but `creg` under a
    // v3 header is also legal — the *version keywords* are what gate v2.
    let ok = parse3("OPENQASM 3;\nqreg q[1];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\n");
    assert!(ok.is_ok(), "{ok:?}");
}
