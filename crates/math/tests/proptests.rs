//! Property-based tests for the linear-algebra and Weyl-chamber layers.

// Matrix-reconstruction checks compare indexed entries; index loops are clearest.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use snailqc_math::complex::C64;
use snailqc_math::gates;
use snailqc_math::matrix::{Matrix2, Matrix4};
use snailqc_math::random::{haar_unitary2, haar_unitary4};
use snailqc_math::weyl::{canonicalize, makhlin_invariants, weyl_coordinates};
use std::f64::consts::FRAC_PI_4;

fn rng_from(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- complex arithmetic ----------------

    #[test]
    fn complex_multiplication_is_commutative_and_associative(
        a in -10.0..10.0f64, b in -10.0..10.0f64,
        c in -10.0..10.0f64, d in -10.0..10.0f64,
        e in -10.0..10.0f64, f in -10.0..10.0f64,
    ) {
        let x = C64::new(a, b);
        let y = C64::new(c, d);
        let z = C64::new(e, f);
        prop_assert!((x * y).approx_eq(y * x, 1e-9));
        prop_assert!(((x * y) * z).approx_eq(x * (y * z), 1e-7));
    }

    #[test]
    fn complex_modulus_is_multiplicative(a in -10.0..10.0f64, b in -10.0..10.0f64,
                                         c in -10.0..10.0f64, d in -10.0..10.0f64) {
        let x = C64::new(a, b);
        let y = C64::new(c, d);
        prop_assert!(((x * y).abs() - x.abs() * y.abs()).abs() < 1e-7);
    }

    #[test]
    fn cis_lies_on_unit_circle(theta in -20.0..20.0f64) {
        prop_assert!((C64::cis(theta).abs() - 1.0).abs() < 1e-12);
    }

    // ---------------- rotation gates ----------------

    #[test]
    fn rotations_compose_additively(a in -3.0..3.0f64, b in -3.0..3.0f64) {
        prop_assert!((gates::rz(a) * gates::rz(b)).approx_eq(&gates::rz(a + b), 1e-9));
        prop_assert!((gates::rx(a) * gates::rx(b)).approx_eq(&gates::rx(a + b), 1e-9));
        prop_assert!((gates::ry(a) * gates::ry(b)).approx_eq(&gates::ry(a + b), 1e-9));
    }

    #[test]
    fn u3_is_always_unitary(theta in -6.3..6.3f64, phi in -6.3..6.3f64, lam in -6.3..6.3f64) {
        prop_assert!(gates::u3(theta, phi, lam).is_unitary(1e-9));
    }

    #[test]
    fn iswap_powers_compose(a in 0.01..1.0f64, b in 0.01..1.0f64) {
        let lhs = gates::iswap_pow(a) * gates::iswap_pow(b);
        let rhs = gates::iswap_pow(a + b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn fsim_is_unitary(theta in -3.2..3.2f64, phi in -3.2..3.2f64) {
        prop_assert!(gates::fsim(theta, phi).is_unitary(1e-9));
    }

    // ---------------- kron and matrix identities ----------------

    #[test]
    fn kron_respects_products(seed1 in 0u64..1000, seed2 in 0u64..1000) {
        let a = haar_unitary2(&mut rng_from(seed1));
        let b = haar_unitary2(&mut rng_from(seed1 ^ 0xABCD));
        let c = haar_unitary2(&mut rng_from(seed2));
        let d = haar_unitary2(&mut rng_from(seed2 ^ 0xABCD));
        // (a⊗b)(c⊗d) = (ac)⊗(bd)
        let lhs = a.kron(&b) * c.kron(&d);
        let rhs = (a * c).kron(&(b * d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn determinant_is_multiplicative_for_unitaries(seed in 0u64..1000) {
        let u = haar_unitary4(&mut rng_from(seed));
        let v = haar_unitary4(&mut rng_from(seed ^ 0xF00D));
        let lhs = (u * v).det();
        let rhs = u.det() * v.det();
        prop_assert!(lhs.approx_eq(rhs, 1e-7));
        prop_assert!((u.det().abs() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn adjoint_is_inverse_for_unitaries(seed in 0u64..1000) {
        let u = haar_unitary4(&mut rng_from(seed));
        prop_assert!((u * u.adjoint()).approx_eq(&Matrix4::identity(), 1e-9));
        prop_assert!((u.adjoint() * u).approx_eq(&Matrix4::identity(), 1e-9));
    }

    #[test]
    fn trace_is_invariant_under_cyclic_permutation(seed in 0u64..1000) {
        let u = haar_unitary4(&mut rng_from(seed));
        let v = haar_unitary4(&mut rng_from(seed ^ 0xBEEF));
        prop_assert!((u * v).trace().approx_eq((v * u).trace(), 1e-8));
    }

    // ---------------- Weyl chamber ----------------

    #[test]
    fn weyl_coordinates_always_land_in_chamber(seed in 0u64..2000) {
        let u = haar_unitary4(&mut rng_from(seed));
        let w = weyl_coordinates(&u);
        prop_assert!(w.c1 <= FRAC_PI_4 + 1e-7);
        prop_assert!(w.c2 <= w.c1 + 1e-7);
        prop_assert!(w.c3.abs() <= w.c2 + 1e-7);
        prop_assert!(w.c1 >= -1e-9 && w.c2 >= -1e-9);
    }

    #[test]
    fn weyl_coordinates_invariant_under_local_dressing(seed in 0u64..500) {
        let mut rng = rng_from(seed);
        let core = haar_unitary4(&mut rng);
        let base = weyl_coordinates(&core);
        let dressed = snailqc_math::random::random_local_dressing(&core, &mut rng);
        let w = weyl_coordinates(&dressed);
        prop_assert!(w.approx_eq(&base, 1e-5),
            "({}, {}, {}) vs ({}, {}, {})", w.c1, w.c2, w.c3, base.c1, base.c2, base.c3);
    }

    #[test]
    fn weyl_coordinates_symmetric_under_qubit_exchange(seed in 0u64..500) {
        let u = haar_unitary4(&mut rng_from(seed));
        let a = weyl_coordinates(&u);
        let b = weyl_coordinates(&u.reverse_qubits());
        prop_assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn weyl_coordinates_of_inverse_match_up_to_sign(seed in 0u64..500) {
        // U and U† share |c3| and the first two coordinates.
        let u = haar_unitary4(&mut rng_from(seed));
        let a = weyl_coordinates(&u);
        let b = weyl_coordinates(&u.adjoint());
        prop_assert!((a.c1 - b.c1).abs() < 1e-6);
        prop_assert!((a.c2 - b.c2).abs() < 1e-6);
        prop_assert!((a.c3.abs() - b.c3.abs()).abs() < 1e-6);
    }

    #[test]
    fn makhlin_invariants_agree_between_matrix_and_coordinates(seed in 0u64..500) {
        let u = haar_unitary4(&mut rng_from(seed));
        let w = weyl_coordinates(&u);
        let (g1m, g2m, g3m) = makhlin_invariants(&u);
        let (g1c, g2c, g3c) = w.makhlin_invariants();
        prop_assert!((g1m - g1c).abs() < 1e-5);
        prop_assert!((g2m.abs() - g2c.abs()).abs() < 1e-5);
        prop_assert!((g3m - g3c).abs() < 1e-5);
    }

    #[test]
    fn canonicalize_is_idempotent(c1 in -3.2..3.2f64, c2 in -3.2..3.2f64, c3 in -3.2..3.2f64) {
        let once = canonicalize([c1, c2, c3]);
        let twice = canonicalize(once.as_array());
        prop_assert!(once.approx_eq(&twice, 1e-9));
    }

    #[test]
    fn canonical_gate_round_trips_through_weyl_analysis(
        c1 in 0.0..FRAC_PI_4, c2 in 0.0..FRAC_PI_4, c3 in 0.0..FRAC_PI_4,
    ) {
        // Build a gate from arbitrary coordinates, re-extract, re-build: both
        // canonical classes must agree.
        let gate = gates::canonical(c1, c2, c3);
        let w = weyl_coordinates(&gate);
        let rebuilt = gates::canonical(w.c1, w.c2, w.c3);
        let w2 = weyl_coordinates(&rebuilt);
        prop_assert!(w.approx_eq(&w2, 1e-6));
    }

    // ---------------- simultaneous diagonalization ----------------

    #[test]
    fn jacobi_reconstructs_random_symmetric_matrices(seed in 0u64..1000) {
        use rand::Rng;
        let mut rng = rng_from(seed);
        let n = 4;
        let mut a = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i..n {
                let v: f64 = rng.gen_range(-2.0..2.0);
                a[i][j] = v;
                a[j][i] = v;
            }
        }
        let e = snailqc_math::eigen::jacobi_symmetric(&a);
        // Reconstruct a = V diag(λ) Vᵀ.
        let mut recon = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += e.vectors[i][k] * e.values[k] * e.vectors[j][k];
                }
                recon[i][j] = acc;
            }
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert!((recon[i][j] - a[i][j]).abs() < 1e-7);
            }
        }
    }
}

#[test]
fn named_gates_have_expected_chamber_positions() {
    // A non-property anchor so the suite fails loudly if conventions drift.
    let w = weyl_coordinates(&gates::cx());
    assert!((w.c1 - FRAC_PI_4).abs() < 1e-9 && w.c2.abs() < 1e-9);
    let w = weyl_coordinates(&gates::swap());
    assert!((w.c3 - FRAC_PI_4).abs() < 1e-9);
    let local = gates::h().kron(&Matrix2::identity());
    assert!(weyl_coordinates(&local).is_local(1e-9));
}
