//! Weyl-chamber (KAK canonical-class) analysis of two-qubit unitaries.
//!
//! Every `U ∈ U(4)` can be written as
//! `U = (K₁ₗ ⊗ K₁ᵣ) · exp(i (c₁ X⊗X + c₂ Y⊗Y + c₃ Z⊗Z)) · (K₂ₗ ⊗ K₂ᵣ)`
//! with single-qubit `K`s. The triple `(c₁, c₂, c₃)`, folded into the Weyl
//! chamber `π/4 ≥ c₁ ≥ c₂ ≥ |c₃|` (with `c₃ ≥ 0` whenever `c₁ = π/4`),
//! uniquely labels the local-equivalence class of `U` and fully determines
//! how many applications of a given basis gate are needed to synthesize it —
//! the quantity at the heart of the paper's co-design comparison (§2.3, §3.1).
//!
//! The implementation follows the standard magic-basis construction: in the
//! magic (Bell) basis the local factors become real orthogonal and the
//! canonical factor becomes diagonal, so the eigenphases of `Mᵀ M` (with `M`
//! the magic-basis image of `U`) reveal the canonical coordinates.

use crate::complex::C64;
use crate::eigen::simultaneous_diagonalize;
use crate::gates::{canonical_phases, magic_basis};
use crate::matrix::Matrix4;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// Canonical (Weyl-chamber) coordinates of a two-qubit unitary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeylCoordinates {
    /// First canonical coordinate, `0 ≤ c1 ≤ π/4`.
    pub c1: f64,
    /// Second canonical coordinate, `0 ≤ c2 ≤ c1`.
    pub c2: f64,
    /// Third canonical coordinate, `|c3| ≤ c2`.
    pub c3: f64,
}

impl WeylCoordinates {
    /// Builds coordinates from an arbitrary (not necessarily canonical)
    /// triple, folding it into the Weyl chamber.
    pub fn from_raw(c1: f64, c2: f64, c3: f64) -> Self {
        canonicalize([c1, c2, c3])
    }

    /// Returns the coordinates as an array `[c1, c2, c3]`.
    pub fn as_array(&self) -> [f64; 3] {
        [self.c1, self.c2, self.c3]
    }

    /// True when the two coordinate triples agree within `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        (self.c1 - other.c1).abs() <= tol
            && (self.c2 - other.c2).abs() <= tol
            && (self.c3 - other.c3).abs() <= tol
    }

    /// True when the unitary is a tensor product of single-qubit gates.
    pub fn is_local(&self, tol: f64) -> bool {
        self.c1.abs() <= tol && self.c2.abs() <= tol && self.c3.abs() <= tol
    }

    /// True when the unitary is in the CNOT/CZ local-equivalence class.
    pub fn is_cnot_class(&self, tol: f64) -> bool {
        (self.c1 - FRAC_PI_4).abs() <= tol && self.c2.abs() <= tol && self.c3.abs() <= tol
    }

    /// True when the unitary is in the iSWAP/DCX local-equivalence class.
    pub fn is_iswap_class(&self, tol: f64) -> bool {
        (self.c1 - FRAC_PI_4).abs() <= tol
            && (self.c2 - FRAC_PI_4).abs() <= tol
            && self.c3.abs() <= tol
    }

    /// True when the unitary is in the SWAP local-equivalence class.
    pub fn is_swap_class(&self, tol: f64) -> bool {
        (self.c1 - FRAC_PI_4).abs() <= tol
            && (self.c2 - FRAC_PI_4).abs() <= tol
            && (self.c3.abs() - FRAC_PI_4).abs() <= tol
    }

    /// True when the unitary is in the √iSWAP local-equivalence class.
    pub fn is_sqrt_iswap_class(&self, tol: f64) -> bool {
        let t = FRAC_PI_4 / 2.0;
        (self.c1 - t).abs() <= tol && (self.c2 - t).abs() <= tol && self.c3.abs() <= tol
    }

    /// True when the class lies in the region synthesizable with **two**
    /// √iSWAP applications: `c1 ≥ c2 + |c3|` (Huang et al. 2021).
    pub fn in_two_sqrt_iswap_region(&self, tol: f64) -> bool {
        self.c1 + tol >= self.c2 + self.c3.abs()
    }

    /// Makhlin local invariants `(g1, g2, g3)` computed from the coordinates.
    pub fn makhlin_invariants(&self) -> (f64, f64, f64) {
        let (a, b, c) = (2.0 * self.c1, 2.0 * self.c2, 2.0 * self.c3);
        let g1 = a.cos().powi(2) * b.cos().powi(2) * c.cos().powi(2)
            - a.sin().powi(2) * b.sin().powi(2) * c.sin().powi(2);
        let g2 = 0.25 * (2.0 * a).sin() * (2.0 * b).sin() * (2.0 * c).sin();
        let g3 = 4.0 * g1 - (2.0 * a).cos() * (2.0 * b).cos() * (2.0 * c).cos();
        (g1, g2, g3)
    }
}

/// Computes the Weyl-chamber coordinates of an arbitrary two-qubit unitary.
///
/// The result is invariant under single-qubit pre-/post-multiplication and
/// global phase.
pub fn weyl_coordinates(u: &Matrix4) -> WeylCoordinates {
    // Normalize to SU(4); the branch of the fourth root is irrelevant because
    // a global phase of i^k shifts every coordinate by kπ/2, which the
    // canonicalization absorbs.
    let det = u.det();
    let su = u.scale(det.nth_root(4).inv());

    // Magic-basis image and its "Takagi" matrix S = Mᵀ M.
    let b = magic_basis();
    let m = b.adjoint() * su * b;
    let s_mat = m.transpose() * m;

    // S is complex symmetric and unitary, so Re S and Im S are commuting real
    // symmetric matrices; diagonalize them simultaneously.
    let re: Vec<Vec<f64>> = (0..4)
        .map(|r| (0..4).map(|c| s_mat[(r, c)].re).collect())
        .collect();
    let im: Vec<Vec<f64>> = (0..4)
        .map(|r| (0..4).map(|c| s_mat[(r, c)].im).collect())
        .collect();
    let o = simultaneous_diagonalize(&re, &im);

    // Eigenphases: diag(Oᵀ S O) = exp(2 i λⱼ).
    let mut lambdas = [0.0f64; 4];
    for (j, lambda) in lambdas.iter_mut().enumerate() {
        let mut val = C64::default();
        for r in 0..4 {
            for c in 0..4 {
                val += C64::real(o[r][j]) * s_mat[(r, c)] * C64::real(o[c][j]);
            }
        }
        *lambda = val.arg() / 2.0;
    }

    // Invert λ = (c1-c2+c3, -c1+c2+c3, -c1-c2-c3, c1+c2-c3); any permutation
    // or branch ambiguity in λ maps to a Weyl-group move on (c1,c2,c3), which
    // the canonicalization below removes.
    let c1 = (lambdas[0] + lambdas[3]) / 2.0;
    let c2 = (lambdas[1] + lambdas[3]) / 2.0;
    let c3 = (lambdas[0] + lambdas[1]) / 2.0;
    canonicalize([c1, c2, c3])
}

/// Folds an arbitrary canonical triple into the Weyl chamber using the
/// local-equivalence symmetry group: per-coordinate shifts by π/2,
/// coordinate swaps, and pairwise sign flips.
pub fn canonicalize(raw: [f64; 3]) -> WeylCoordinates {
    const EPS: f64 = 1e-9;
    let mut c = raw;

    // 1. Reduce each coordinate modulo π/2 into [-π/4, π/4].
    for v in &mut c {
        *v -= (*v / FRAC_PI_2).round() * FRAC_PI_2;
        // Prefer the +π/4 representative over -π/4 for determinism.
        if (*v + FRAC_PI_4).abs() < EPS {
            *v = FRAC_PI_4;
        }
    }

    // 2. Sort by decreasing absolute value (coordinate swaps are free).
    c.sort_by(|a, b| b.abs().partial_cmp(&a.abs()).unwrap());

    // 3. Make the two largest coordinates non-negative using pairwise flips.
    if c[0] < 0.0 {
        c[0] = -c[0];
        c[2] = -c[2];
    }
    if c[1] < 0.0 {
        c[1] = -c[1];
        c[2] = -c[2];
    }

    // 4. On the chamber boundary c1 = π/4 the sign of c3 is gauge; pick +.
    if (c[0] - FRAC_PI_4).abs() < EPS && c[2] < 0.0 {
        c[2] = -c[2];
    }
    // Re-sort the two leading coordinates in case flips introduced ties in a
    // different order (absolute values unchanged, so ordering still valid).
    if c[1] > c[0] {
        c.swap(0, 1);
    }
    if c[2].abs() > c[1] + EPS {
        // Cannot happen if the moves above preserved |·| ordering; guard for
        // numerical noise by re-sorting on magnitude and re-fixing signs.
        c.sort_by(|a, b| b.abs().partial_cmp(&a.abs()).unwrap());
        if c[0] < 0.0 {
            c[0] = -c[0];
            c[2] = -c[2];
        }
        if c[1] < 0.0 {
            c[1] = -c[1];
            c[2] = -c[2];
        }
    }

    // Snap tiny values to zero for stable downstream classification.
    for v in &mut c {
        if v.abs() < EPS {
            *v = 0.0;
        }
    }

    WeylCoordinates {
        c1: c[0],
        c2: c[1],
        c3: c[2],
    }
}

/// Makhlin local invariants `(g1, g2, g3)` computed directly from the matrix.
///
/// These agree with [`WeylCoordinates::makhlin_invariants`] for the same
/// unitary, providing an independent cross-check of the Weyl pipeline.
pub fn makhlin_invariants(u: &Matrix4) -> (f64, f64, f64) {
    let det = u.det();
    let su = u.scale(det.nth_root(4).inv());
    let b = magic_basis();
    let m = b.adjoint() * su * b;
    let big_m = m.transpose() * m;
    let tr = big_m.trace();
    let tr2 = tr * tr;
    let tr_m2 = (big_m * big_m).trace();
    let g1c = tr2 / 16.0;
    let g3c = (tr2 - tr_m2) / 4.0;
    (g1c.re, g1c.im, g3c.re)
}

/// Reconstructs a representative unitary (the canonical gate itself) for a
/// Weyl class. Useful for tests and for template seeding in the numerical
/// decomposer.
pub fn canonical_gate(coords: &WeylCoordinates) -> Matrix4 {
    crate::gates::canonical(coords.c1, coords.c2, coords.c3)
}

/// The eigenphase multiset `exp(i λⱼ)` of a canonical class; exposed mainly
/// for diagnostics and testing.
pub fn canonical_eigenphases(coords: &WeylCoordinates) -> [f64; 4] {
    canonical_phases(coords.c1, coords.c2, coords.c3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use crate::random::{haar_unitary2, haar_unitary4, random_local_dressing};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::{FRAC_PI_4, FRAC_PI_8};

    const TOL: f64 = 1e-7;

    fn assert_coords(u: &Matrix4, expected: [f64; 3], label: &str) {
        let w = weyl_coordinates(u);
        let e = WeylCoordinates {
            c1: expected[0],
            c2: expected[1],
            c3: expected[2],
        };
        assert!(
            w.approx_eq(&e, 1e-6),
            "{label}: got ({:.6}, {:.6}, {:.6}), expected ({:.6}, {:.6}, {:.6})",
            w.c1,
            w.c2,
            w.c3,
            e.c1,
            e.c2,
            e.c3
        );
    }

    #[test]
    fn identity_is_origin() {
        assert_coords(&Matrix4::identity(), [0.0, 0.0, 0.0], "identity");
    }

    #[test]
    fn named_gate_coordinates() {
        assert_coords(&gates::cx(), [FRAC_PI_4, 0.0, 0.0], "cnot");
        assert_coords(&gates::cz(), [FRAC_PI_4, 0.0, 0.0], "cz");
        assert_coords(&gates::iswap(), [FRAC_PI_4, FRAC_PI_4, 0.0], "iswap");
        assert_coords(&gates::dcx(), [FRAC_PI_4, FRAC_PI_4, 0.0], "dcx");
        assert_coords(&gates::swap(), [FRAC_PI_4, FRAC_PI_4, FRAC_PI_4], "swap");
        assert_coords(
            &gates::sqrt_iswap(),
            [FRAC_PI_8, FRAC_PI_8, 0.0],
            "sqrt_iswap",
        );
        assert_coords(&gates::csx(), [FRAC_PI_8, 0.0, 0.0], "csx");
    }

    #[test]
    fn nth_root_iswap_coordinates() {
        for n in 1..=7u32 {
            let expect = gates::nth_root_iswap_coords(n);
            assert_coords(
                &gates::nth_root_iswap(n),
                expect,
                &format!("{n}-th root iswap"),
            );
        }
    }

    #[test]
    fn syc_coordinates() {
        // SYC = FSIM(π/2, π/6) is locally equivalent to iSWAP up to the small
        // |11⟩ phase; its Weyl class is (π/4, π/4, π/24).
        let w = weyl_coordinates(&gates::syc());
        assert!((w.c1 - FRAC_PI_4).abs() < 1e-6, "c1 = {}", w.c1);
        assert!((w.c2 - FRAC_PI_4).abs() < 1e-6, "c2 = {}", w.c2);
        assert!(
            (w.c3 - std::f64::consts::PI / 24.0).abs() < 1e-6,
            "c3 = {}",
            w.c3
        );
    }

    #[test]
    fn cphase_sweeps_cnot_axis() {
        // CPhase(θ) has Weyl class (θ/4, 0, 0).
        for &(theta, expect) in &[
            (std::f64::consts::PI, FRAC_PI_4),
            (std::f64::consts::FRAC_PI_2, FRAC_PI_8),
            (0.3, 0.075),
        ] {
            let w = weyl_coordinates(&gates::cphase(theta));
            assert!((w.c1 - expect).abs() < 1e-6, "theta {theta}: c1 {}", w.c1);
            assert!(w.c2.abs() < 1e-6 && w.c3.abs() < 1e-6);
        }
    }

    #[test]
    fn coordinates_invariant_under_local_dressing() {
        let mut rng = StdRng::seed_from_u64(21);
        for core in [
            gates::cx(),
            gates::sqrt_iswap(),
            gates::syc(),
            gates::swap(),
        ] {
            let base = weyl_coordinates(&core);
            for _ in 0..8 {
                let dressed = random_local_dressing(&core, &mut rng);
                let w = weyl_coordinates(&dressed);
                assert!(
                    w.approx_eq(&base, 1e-6),
                    "dressed coords ({}, {}, {}) vs base ({}, {}, {})",
                    w.c1,
                    w.c2,
                    w.c3,
                    base.c1,
                    base.c2,
                    base.c3
                );
            }
        }
    }

    #[test]
    fn coordinates_invariant_under_global_phase() {
        let u = gates::cx();
        for k in 0..8 {
            let phase = C64::cis(k as f64 * std::f64::consts::PI / 4.0);
            let w = weyl_coordinates(&u.scale(phase));
            assert!(w.approx_eq(
                &WeylCoordinates {
                    c1: FRAC_PI_4,
                    c2: 0.0,
                    c3: 0.0
                },
                1e-6
            ));
        }
    }

    #[test]
    fn local_unitaries_map_to_origin() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..10 {
            let l = haar_unitary2(&mut rng).kron(&haar_unitary2(&mut rng));
            let w = weyl_coordinates(&l);
            assert!(w.is_local(1e-6), "({}, {}, {})", w.c1, w.c2, w.c3);
        }
    }

    #[test]
    fn haar_unitaries_land_in_chamber() {
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..50 {
            let u = haar_unitary4(&mut rng);
            let w = weyl_coordinates(&u);
            assert!(w.c1 <= FRAC_PI_4 + TOL);
            assert!(w.c2 <= w.c1 + TOL);
            assert!(w.c3.abs() <= w.c2 + TOL);
            assert!(w.c1 >= -TOL && w.c2 >= -TOL);
        }
    }

    #[test]
    fn makhlin_invariants_match_coordinate_formula() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let u = haar_unitary4(&mut rng);
            let w = weyl_coordinates(&u);
            let (g1m, g2m, g3m) = makhlin_invariants(&u);
            let (g1c, g2c, g3c) = w.makhlin_invariants();
            assert!((g1m - g1c).abs() < 1e-6, "g1 {g1m} vs {g1c}");
            assert!((g2m.abs() - g2c.abs()).abs() < 1e-6, "g2 {g2m} vs {g2c}");
            assert!((g3m - g3c).abs() < 1e-6, "g3 {g3m} vs {g3c}");
        }
    }

    #[test]
    fn makhlin_invariants_of_named_gates() {
        let cases: [(&str, Matrix4, (f64, f64, f64)); 4] = [
            ("identity", Matrix4::identity(), (1.0, 0.0, 3.0)),
            ("cnot", gates::cx(), (0.0, 0.0, 1.0)),
            ("iswap", gates::iswap(), (0.0, 0.0, -1.0)),
            ("swap", gates::swap(), (-1.0, 0.0, -3.0)),
        ];
        for (name, u, (e1, e2, e3)) in cases {
            let (g1, g2, g3) = makhlin_invariants(&u);
            assert!((g1 - e1).abs() < 1e-9, "{name} g1 = {g1}");
            assert!((g2 - e2).abs() < 1e-9, "{name} g2 = {g2}");
            assert!((g3 - e3).abs() < 1e-9, "{name} g3 = {g3}");
        }
    }

    #[test]
    fn canonical_gate_round_trip() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let u = haar_unitary4(&mut rng);
            let w = weyl_coordinates(&u);
            let rebuilt = canonical_gate(&w);
            let w2 = weyl_coordinates(&rebuilt);
            assert!(w.approx_eq(&w2, 1e-6));
        }
    }

    #[test]
    fn two_sqrt_iswap_region_membership() {
        // CNOT (π/4, 0, 0): inside the 2-use region.
        assert!(weyl_coordinates(&gates::cx()).in_two_sqrt_iswap_region(1e-9));
        // SWAP (π/4, π/4, π/4): outside (needs 3).
        assert!(!weyl_coordinates(&gates::swap()).in_two_sqrt_iswap_region(1e-9));
        // iSWAP (π/4, π/4, 0): boundary, inside.
        assert!(weyl_coordinates(&gates::iswap()).in_two_sqrt_iswap_region(1e-9));
    }

    #[test]
    fn classification_helpers() {
        assert!(weyl_coordinates(&gates::cx()).is_cnot_class(1e-6));
        assert!(weyl_coordinates(&gates::cz()).is_cnot_class(1e-6));
        assert!(weyl_coordinates(&gates::iswap()).is_iswap_class(1e-6));
        assert!(weyl_coordinates(&gates::swap()).is_swap_class(1e-6));
        assert!(weyl_coordinates(&gates::sqrt_iswap()).is_sqrt_iswap_class(1e-6));
        assert!(weyl_coordinates(&Matrix4::identity()).is_local(1e-9));
        assert!(!weyl_coordinates(&gates::cx()).is_local(1e-6));
    }

    #[test]
    fn canonicalize_folds_out_of_range_values() {
        // A coordinate slightly above π/4 folds back symmetric about π/4 via
        // the π/2 shift and sign flips.
        let w = canonicalize([FRAC_PI_4 + 0.1, 0.0, 0.0]);
        assert!((w.c1 - (FRAC_PI_4 - 0.1)).abs() < 1e-9);
        // Negative values fold to positive.
        let w = canonicalize([-0.2, 0.1, 0.0]);
        assert!(w.c1 >= w.c2 && w.c2 >= w.c3.abs());
        assert!((w.c1 - 0.2).abs() < 1e-9);
    }
}
