//! Small dense eigen-solvers.
//!
//! The Weyl-chamber analysis needs the spectral decomposition of a 4×4
//! complex *symmetric unitary* matrix. Writing `S = A + iB`, unitarity and
//! symmetry imply that `A` and `B` are real symmetric and commute, so they can
//! be simultaneously diagonalized by a real orthogonal matrix. We therefore
//! only need a real-symmetric Jacobi solver plus a clustering step.

// The Jacobi rotations update two indexed slots of several arrays per step;
// index loops express that more clearly than zipped iterators.
#![allow(clippy::needless_range_loop)]

/// Result of a real symmetric eigendecomposition: `a = v · diag(λ) · vᵀ`.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues, in the order of the eigenvector columns.
    pub values: Vec<f64>,
    /// Orthogonal matrix whose columns are eigenvectors (`vectors[r][c]` is
    /// row `r`, column `c`).
    pub vectors: Vec<Vec<f64>>,
}

/// Jacobi eigenvalue algorithm for a small real symmetric matrix.
///
/// `a` must be square and symmetric; sizes up to ~8 are intended. The
/// returned eigenvectors form an orthogonal matrix with the eigenvalues in
/// matching column order (not sorted).
pub fn jacobi_symmetric(a: &[Vec<f64>]) -> SymEigen {
    let n = a.len();
    debug_assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut v = identity(n);

    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let off = off_diagonal_norm(&m);
        if off < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if m[p][q].abs() < 1e-16 {
                    continue;
                }
                let app = m[p][p];
                let aqq = m[q][q];
                let apq = m[p][q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides: m ← Gᵀ m G.
                for k in 0..n {
                    let mkp = m[k][p];
                    let mkq = m[k][q];
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p][k];
                    let mqk = m[q][k];
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let values = (0..n).map(|i| m[i][i]).collect();
    SymEigen { values, vectors: v }
}

/// Simultaneously diagonalizes two commuting real symmetric matrices.
///
/// Returns an orthogonal matrix `O` (columns = common eigenvectors) such that
/// both `Oᵀ a O` and `Oᵀ b O` are diagonal to within numerical tolerance.
pub fn simultaneous_diagonalize(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let first = jacobi_symmetric(a);
    let mut o = first.vectors.clone();

    // Rotate b into a's eigenbasis.
    let bt = conjugate(b, &o);

    // Cluster indices with (numerically) equal a-eigenvalues; within each
    // cluster, b restricted to the eigenspace must still be diagonalized.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| first.values[i].partial_cmp(&first.values[j]).unwrap());

    let tol = 1e-7;
    let mut idx = 0;
    while idx < n {
        let mut cluster = vec![order[idx]];
        let mut j = idx + 1;
        while j < n && (first.values[order[j]] - first.values[order[idx]]).abs() < tol {
            cluster.push(order[j]);
            j += 1;
        }
        if cluster.len() > 1 {
            // Diagonalize the cluster's block of bt.
            let k = cluster.len();
            let mut block = vec![vec![0.0; k]; k];
            for (bi, &ci) in cluster.iter().enumerate() {
                for (bj, &cj) in cluster.iter().enumerate() {
                    block[bi][bj] = bt[ci][cj];
                }
            }
            let sub = jacobi_symmetric(&block);
            // Update the columns of o spanned by the cluster: o_cluster ← o_cluster · W.
            let mut new_cols = vec![vec![0.0; k]; n];
            for r in 0..n {
                for (bj, _col) in cluster.iter().enumerate() {
                    let mut acc = 0.0;
                    for (bi, &ci) in cluster.iter().enumerate() {
                        acc += o[r][ci] * sub.vectors[bi][bj];
                    }
                    new_cols[r][bj] = acc;
                }
            }
            for r in 0..n {
                for (bj, &cj) in cluster.iter().enumerate() {
                    o[r][cj] = new_cols[r][bj];
                }
            }
        }
        idx = j;
    }
    o
}

/// Computes `oᵀ · m · o`.
pub fn conjugate(m: &[Vec<f64>], o: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = m.len();
    let mut tmp = vec![vec![0.0; n]; n];
    for r in 0..n {
        for c in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += m[r][k] * o[k][c];
            }
            tmp[r][c] = acc;
        }
    }
    let mut out = vec![vec![0.0; n]; n];
    for r in 0..n {
        for c in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += o[k][r] * tmp[k][c];
            }
            out[r][c] = acc;
        }
    }
    out
}

fn identity(n: usize) -> Vec<Vec<f64>> {
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    v
}

fn off_diagonal_norm(m: &[Vec<f64>]) -> f64 {
    let n = m.len();
    let mut acc = 0.0;
    for r in 0..n {
        for c in 0..n {
            if r != c {
                acc += m[r][c] * m[r][c];
            }
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| r.to_vec()).collect()
    }

    fn max_offdiag(m: &[Vec<f64>]) -> f64 {
        let n = m.len();
        let mut best: f64 = 0.0;
        for r in 0..n {
            for c in 0..n {
                if r != c {
                    best = best.max(m[r][c].abs());
                }
            }
        }
        best
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = mat(&[&[3.0, 0.0], &[0.0, -1.0]]);
        let e = jacobi_symmetric(&a);
        let mut vals = e.values.clone();
        vals.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((vals[0] + 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = mat(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_symmetric(&a);
        let mut vals = e.values.clone();
        vals.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((vals[0] - 1.0).abs() < 1e-10);
        assert!((vals[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_4x4() {
        let a = mat(&[
            &[4.0, 1.0, 0.5, 0.0],
            &[1.0, 3.0, 0.2, 0.1],
            &[0.5, 0.2, 2.0, 0.3],
            &[0.0, 0.1, 0.3, 1.0],
        ]);
        let e = jacobi_symmetric(&a);
        // vᵀ a v must be diagonal with the eigenvalues.
        let d = conjugate(&a, &e.vectors);
        assert!(max_offdiag(&d) < 1e-9);
        for i in 0..4 {
            assert!((d[i][i] - e.values[i]).abs() < 1e-9);
        }
        // v must be orthogonal.
        let vtv = conjugate(&identity(4), &e.vectors);
        for r in 0..4 {
            for c in 0..4 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((vtv[r][c] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn simultaneous_diagonalization_with_degeneracy() {
        // a has a two-fold degenerate eigenvalue; b breaks the degeneracy.
        // a = diag(1, 1, 2, 3) in a rotated basis, b commutes with a.
        let a = mat(&[
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 2.0, 0.0],
            &[0.0, 0.0, 0.0, 3.0],
        ]);
        // b acts nontrivially inside the degenerate subspace.
        let b = mat(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 5.0, 0.0],
            &[0.0, 0.0, 0.0, 7.0],
        ]);
        let o = simultaneous_diagonalize(&a, &b);
        assert!(max_offdiag(&conjugate(&a, &o)) < 1e-9);
        assert!(max_offdiag(&conjugate(&b, &o)) < 1e-9);
    }

    #[test]
    fn simultaneous_diagonalization_identity_block() {
        // Fully degenerate a (identity): everything hinges on b.
        let a = identity(4);
        let b = mat(&[
            &[2.0, 1.0, 0.0, 0.0],
            &[1.0, 2.0, 0.0, 0.0],
            &[0.0, 0.0, 4.0, 0.5],
            &[0.0, 0.0, 0.5, 4.0],
        ]);
        let o = simultaneous_diagonalize(&a, &b);
        assert!(max_offdiag(&conjugate(&b, &o)) < 1e-9);
    }
}
