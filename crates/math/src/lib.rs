//! # snailqc-math
//!
//! Self-contained complex linear algebra and two-qubit gate analysis for the
//! `snailqc` workspace — the Rust reproduction of *"Co-Designed Architectures
//! for Modular Superconducting Quantum Computers"* (HPCA 2023).
//!
//! The crate provides exactly the numerics that study needs, with no external
//! linear-algebra dependencies:
//!
//! * [`angles`] — Clifford-angle classification (π/2-multiple detection).
//! * [`complex`] — a `C64` double-precision complex type.
//! * [`matrix`] — dense [`Matrix2`] / [`Matrix4`]
//!   operators with Kronecker products, adjoints, determinants and
//!   Hilbert–Schmidt inner products.
//! * [`gates`] — unitaries for the paper's gate zoo: CNOT/CZ, SWAP,
//!   `iSWAP`/`√iSWAP`/`ⁿ√iSWAP` (Eq. 2), FSIM & Sycamore (Eq. 6), the
//!   cross-resonance `ZX(θ)` (Eq. 4), rotations, and the canonical
//!   Weyl-chamber gate.
//! * [`weyl`] — Weyl-chamber coordinates, Makhlin invariants and
//!   local-equivalence classification, the machinery behind the paper's basis
//!   gate comparisons (§2.3, §3.1).
//! * [`random`] — Haar-random `U(2)`/`U(4)` sampling for Quantum Volume
//!   circuits and the `ⁿ√iSWAP` fidelity study (§6.3).
//! * [`eigen`] — the small symmetric eigensolvers used by the Weyl analysis.

#![warn(missing_docs)]

pub mod angles;
pub mod complex;
pub mod eigen;
pub mod gates;
pub mod matrix;
pub mod random;
pub mod weyl;

pub use complex::C64;
pub use matrix::{Matrix2, Matrix4};
pub use weyl::{weyl_coordinates, WeylCoordinates};
