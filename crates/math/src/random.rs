//! Haar-random unitary sampling.
//!
//! Quantum Volume circuits and the `ⁿ√iSWAP` fidelity study (paper §6.3) both
//! draw two-qubit unitaries from the Haar measure on `U(4)`. We sample a
//! complex Ginibre matrix (i.i.d. standard complex normals) and orthonormalize
//! it with a phase-fixed Gram–Schmidt QR, which is the textbook Haar
//! construction.

// Gram-Schmidt updates columns in place by index; keep the index loops.
#![allow(clippy::needless_range_loop)]

use crate::complex::C64;
use crate::matrix::{Matrix2, Matrix4};
use rand::Rng;

/// Draws a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Draws a standard complex normal (real and imaginary parts iid `N(0, 1)`).
pub fn complex_normal<R: Rng + ?Sized>(rng: &mut R) -> C64 {
    C64::new(standard_normal(rng), standard_normal(rng))
}

/// Samples a Haar-random unitary from `U(2)`.
pub fn haar_unitary2<R: Rng + ?Sized>(rng: &mut R) -> Matrix2 {
    let cols = gram_schmidt(
        vec![
            vec![complex_normal(rng), complex_normal(rng)],
            vec![complex_normal(rng), complex_normal(rng)],
        ],
        rng,
    );
    let mut m = Matrix2::zeros();
    for (c, col) in cols.iter().enumerate() {
        for (r, v) in col.iter().enumerate() {
            m[(r, c)] = *v;
        }
    }
    m
}

/// Samples a Haar-random unitary from `U(4)`.
pub fn haar_unitary4<R: Rng + ?Sized>(rng: &mut R) -> Matrix4 {
    let cols = gram_schmidt(
        (0..4)
            .map(|_| (0..4).map(|_| complex_normal(rng)).collect())
            .collect(),
        rng,
    );
    let mut m = Matrix4::zeros();
    for (c, col) in cols.iter().enumerate() {
        for (r, v) in col.iter().enumerate() {
            m[(r, c)] = *v;
        }
    }
    m
}

/// Samples a Haar-random special unitary from `SU(4)` (determinant 1).
pub fn haar_special_unitary4<R: Rng + ?Sized>(rng: &mut R) -> Matrix4 {
    let u = haar_unitary4(rng);
    let phase = u.det().nth_root(4);
    u.scale(phase.inv())
}

/// Modified Gram–Schmidt on the column vectors, with the QR phase fix that
/// makes the distribution exactly Haar (each diagonal of `R` made real
/// positive). Re-draws a column in the measure-zero event of linear
/// dependence.
fn gram_schmidt<R: Rng + ?Sized>(mut cols: Vec<Vec<C64>>, rng: &mut R) -> Vec<Vec<C64>> {
    let n = cols.len();
    for i in 0..n {
        loop {
            // Orthogonalize column i against all previous columns.
            for j in 0..i {
                let proj: C64 = cols[j]
                    .iter()
                    .zip(cols[i].iter())
                    .map(|(a, b)| a.conj() * *b)
                    .sum();
                for k in 0..n {
                    let adj = cols[j][k] * proj;
                    cols[i][k] -= adj;
                }
            }
            let norm: f64 = cols[i].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for k in 0..n {
                    cols[i][k] = cols[i][k] / norm;
                }
                break;
            }
            // Degenerate draw; resample this column.
            for k in 0..n {
                cols[i][k] = complex_normal(rng);
            }
        }
    }
    cols
}

/// Samples a random two-qubit unitary of the form `(a0 ⊗ a1) · U · (b0 ⊗ b1)`
/// for a fixed core `U` with Haar-random single-qubit dressings — i.e. a
/// random member of `U`'s local-equivalence class.
pub fn random_local_dressing<R: Rng + ?Sized>(core: &Matrix4, rng: &mut R) -> Matrix4 {
    let a0 = haar_unitary2(rng);
    let a1 = haar_unitary2(rng);
    let b0 = haar_unitary2(rng);
    let b1 = haar_unitary2(rng);
    a0.kron(&a1) * *core * b0.kron(&b1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn haar2_is_unitary() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            assert!(haar_unitary2(&mut rng).is_unitary(1e-9));
        }
    }

    #[test]
    fn haar4_is_unitary() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            assert!(haar_unitary4(&mut rng).is_unitary(1e-9));
        }
    }

    #[test]
    fn special_unitary_has_unit_determinant() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let u = haar_special_unitary4(&mut rng);
            assert!(u.is_unitary(1e-9));
            assert!(u.det().approx_eq(crate::complex::ONE, 1e-8));
        }
    }

    #[test]
    fn sampling_is_deterministic_for_fixed_seed() {
        let a = haar_unitary4(&mut StdRng::seed_from_u64(42));
        let b = haar_unitary4(&mut StdRng::seed_from_u64(42));
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn normal_sampler_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn local_dressing_preserves_unitarity() {
        let mut rng = StdRng::seed_from_u64(5);
        let dressed = random_local_dressing(&crate::gates::sqrt_iswap(), &mut rng);
        assert!(dressed.is_unitary(1e-9));
    }
}
