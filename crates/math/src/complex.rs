//! A minimal, dependency-free complex number type.
//!
//! The crate deliberately avoids external linear-algebra dependencies; all
//! numerics needed by the co-design study operate on 2×2 and 4×4 complex
//! matrices, for which a hand-rolled implementation is both simpler to audit
//! and faster to compile.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// `#[repr(C)]` guarantees the `[re, im]` field order in memory, which the
/// SIMD statevector kernels rely on when reinterpreting `&[C64]` as packed
/// `f64` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// The additive identity, `0 + 0i`.
pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
/// The multiplicative identity, `1 + 0i`.
pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
/// The imaginary unit, `0 + 1i`.
pub const I: C64 = C64 { re: 0.0, im: 1.0 };

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Returns `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaNs when `self` is zero.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Self::cis(theta / 2.0) * r.sqrt()
    }

    /// Principal `n`-th root (`z^{1/n}`).
    pub fn nth_root(self, n: u32) -> Self {
        let r = self.abs().powf(1.0 / f64::from(n));
        let theta = self.arg() / f64::from(n);
        Self::cis(theta) * r
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` when both parts are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

impl Add for C64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for C64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for C64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Mul<f64> for C64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z * w⁻¹
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Div<f64> for C64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for C64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert!((z + ZERO).approx_eq(z, TOL));
        assert!((z * ONE).approx_eq(z, TOL));
        assert!((z - z).approx_eq(ZERO, TOL));
        assert!((z * z.inv()).approx_eq(ONE, TOL));
        assert!((z / z).approx_eq(ONE, TOL));
    }

    #[test]
    fn magnitude_and_phase() {
        let z = C64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < TOL);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        let w = C64::cis(std::f64::consts::FRAC_PI_2);
        assert!(w.approx_eq(I, TOL));
        assert!((w.arg() - std::f64::consts::FRAC_PI_2).abs() < TOL);
    }

    #[test]
    fn conjugation_and_roots() {
        let z = C64::new(1.0, 2.0);
        assert!((z * z.conj()).approx_eq(C64::real(z.norm_sqr()), TOL));
        let s = z.sqrt();
        assert!((s * s).approx_eq(z, 1e-10));
        let r = z.nth_root(4);
        assert!((r * r * r * r).approx_eq(z, 1e-10));
    }

    #[test]
    fn i_squares_to_minus_one() {
        assert!((I * I).approx_eq(-ONE, TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C64::new(1.0, -1.0)), "1.000000-1.000000i");
        assert_eq!(format!("{}", C64::new(1.0, 1.0)), "1.000000+1.000000i");
    }
}
