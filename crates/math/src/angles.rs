//! Angle classification helpers.
//!
//! The Clifford fast-path verification engine needs to recognise when a
//! parameterised rotation (`RZ(θ)`, `RZZ(θ)`, …) lands on a Clifford angle —
//! an exact multiple of π/2 up to floating-point noise introduced by QASM
//! round-trips (`pi/2` printed and re-parsed) or angle arithmetic in basis
//! translation.

use std::f64::consts::FRAC_PI_2;

/// Default absolute tolerance used by [`half_pi_multiple`] when classifying
/// gate angles: comfortably above the ~1e-16 noise of printing/parsing π
/// multiples, far below the π/4 spacing that would cause misclassification.
pub const ANGLE_TOL: f64 = 1e-9;

/// Returns `Some(k)` when `theta ≈ k·π/2` within `tol`, i.e. the angle is a
/// Clifford rotation angle. The returned `k` is not reduced; callers
/// typically take it modulo 4 (for rotations) or modulo 2.
///
/// ```
/// use snailqc_math::angles::half_pi_multiple;
/// assert_eq!(half_pi_multiple(std::f64::consts::PI, 1e-9), Some(2));
/// assert_eq!(half_pi_multiple(-std::f64::consts::FRAC_PI_2, 1e-9), Some(-1));
/// assert_eq!(half_pi_multiple(0.3, 1e-9), None);
/// ```
pub fn half_pi_multiple(theta: f64, tol: f64) -> Option<i64> {
    if !theta.is_finite() {
        return None;
    }
    let k = (theta / FRAC_PI_2).round();
    if (theta - k * FRAC_PI_2).abs() <= tol {
        Some(k as i64)
    } else {
        None
    }
}

/// Returns `Some(k)` when `theta ≈ k·π` within `tol` (e.g. the Clifford
/// condition for `CPhase(λ)`, which is Clifford only at multiples of π).
pub fn pi_multiple(theta: f64, tol: f64) -> Option<i64> {
    match half_pi_multiple(theta, tol) {
        Some(k) if k % 2 == 0 => Some(k / 2),
        _ => None,
    }
}

/// Returns `Some(k)` when `t ≈ k` within `tol` — integer powers of a gate
/// (e.g. `ISwapPow(t)` is Clifford exactly at integer `t`).
pub fn integer_multiple(t: f64, tol: f64) -> Option<i64> {
    if !t.is_finite() {
        return None;
    }
    let k = t.round();
    if (t - k).abs() <= tol {
        Some(k as i64)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    #[test]
    fn classifies_exact_multiples() {
        assert_eq!(half_pi_multiple(0.0, ANGLE_TOL), Some(0));
        assert_eq!(half_pi_multiple(FRAC_PI_2, ANGLE_TOL), Some(1));
        assert_eq!(half_pi_multiple(PI, ANGLE_TOL), Some(2));
        assert_eq!(half_pi_multiple(-3.0 * FRAC_PI_2, ANGLE_TOL), Some(-3));
        assert_eq!(half_pi_multiple(2.0 * PI, ANGLE_TOL), Some(4));
    }

    #[test]
    fn rejects_non_clifford_angles() {
        assert_eq!(half_pi_multiple(FRAC_PI_4, ANGLE_TOL), None);
        assert_eq!(half_pi_multiple(0.3, ANGLE_TOL), None);
        assert_eq!(half_pi_multiple(f64::NAN, ANGLE_TOL), None);
        assert_eq!(half_pi_multiple(f64::INFINITY, ANGLE_TOL), None);
    }

    #[test]
    fn tolerates_roundtrip_noise() {
        // A π/2 that went through a QASM print/parse cycle.
        let noisy = FRAC_PI_2 + 3e-13;
        assert_eq!(half_pi_multiple(noisy, ANGLE_TOL), Some(1));
    }

    #[test]
    fn pi_multiples_are_even_half_pi_multiples() {
        assert_eq!(pi_multiple(PI, ANGLE_TOL), Some(1));
        assert_eq!(pi_multiple(-2.0 * PI, ANGLE_TOL), Some(-2));
        assert_eq!(pi_multiple(FRAC_PI_2, ANGLE_TOL), None);
    }

    #[test]
    fn integer_powers() {
        assert_eq!(integer_multiple(1.0, ANGLE_TOL), Some(1));
        assert_eq!(integer_multiple(-3.0 + 1e-12, ANGLE_TOL), Some(-3));
        assert_eq!(integer_multiple(0.5, ANGLE_TOL), None);
    }
}
