//! Dense 2×2 and 4×4 complex matrices.
//!
//! These are the only sizes the library needs: single-qubit operators live in
//! `U(2)` and two-qubit operators in `U(4)`. Both types are plain
//! stack-allocated arrays with value semantics.

use crate::complex::{C64, ONE, ZERO};
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A 2×2 complex matrix (single-qubit operator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix2 {
    data: [[C64; 2]; 2],
}

/// A 4×4 complex matrix (two-qubit operator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matrix4 {
    data: [[C64; 4]; 4],
}

impl Matrix2 {
    /// Builds a matrix from rows.
    pub const fn new(data: [[C64; 2]; 2]) -> Self {
        Self { data }
    }

    /// The zero matrix.
    pub const fn zeros() -> Self {
        Self {
            data: [[ZERO; 2]; 2],
        }
    }

    /// The identity matrix.
    pub const fn identity() -> Self {
        let mut m = Self::zeros();
        m.data[0][0] = ONE;
        m.data[1][1] = ONE;
        m
    }

    /// Builds a diagonal matrix.
    pub fn diag(d0: C64, d1: C64) -> Self {
        let mut m = Self::zeros();
        m[(0, 0)] = d0;
        m[(1, 1)] = d1;
        m
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Self {
        let mut out = Self::zeros();
        for r in 0..2 {
            for c in 0..2 {
                out.data[c][r] = self.data[r][c].conj();
            }
        }
        out
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros();
        for r in 0..2 {
            for c in 0..2 {
                out.data[c][r] = self.data[r][c];
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Self {
        let mut out = *self;
        for r in 0..2 {
            for c in 0..2 {
                out.data[r][c] = out.data[r][c].conj();
            }
        }
        out
    }

    /// Matrix trace.
    pub fn trace(&self) -> C64 {
        self.data[0][0] + self.data[1][1]
    }

    /// Determinant.
    pub fn det(&self) -> C64 {
        self.data[0][0] * self.data[1][1] - self.data[0][1] * self.data[1][0]
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, k: C64) -> Self {
        let mut out = *self;
        for r in 0..2 {
            for c in 0..2 {
                out.data[r][c] *= k;
            }
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ other`, giving a two-qubit operator.
    ///
    /// Index convention: qubit 0 is the *left* factor and occupies the most
    /// significant bit of the computational-basis index, matching the usual
    /// `|q0 q1⟩` ordering used throughout the crate.
    pub fn kron(&self, other: &Matrix2) -> Matrix4 {
        let mut out = Matrix4::zeros();
        for r0 in 0..2 {
            for c0 in 0..2 {
                for r1 in 0..2 {
                    for c1 in 0..2 {
                        out[(r0 * 2 + r1, c0 * 2 + c1)] = self.data[r0][c0] * other.data[r1][c1];
                    }
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .flatten()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Returns `true` when `self · self† = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        (*self * self.adjoint()).approx_eq(&Self::identity(), tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        for r in 0..2 {
            for c in 0..2 {
                if !self.data[r][c].approx_eq(other.data[r][c], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Approximate equality up to a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &Self, tol: f64) -> bool {
        phase_aligned_distance_2(self, other) <= tol
    }
}

impl Matrix4 {
    /// Builds a matrix from rows.
    pub const fn new(data: [[C64; 4]; 4]) -> Self {
        Self { data }
    }

    /// The zero matrix.
    pub const fn zeros() -> Self {
        Self {
            data: [[ZERO; 4]; 4],
        }
    }

    /// The identity matrix.
    pub const fn identity() -> Self {
        let mut m = Self::zeros();
        m.data[0][0] = ONE;
        m.data[1][1] = ONE;
        m.data[2][2] = ONE;
        m.data[3][3] = ONE;
        m
    }

    /// Builds a diagonal matrix.
    pub fn diag(d: [C64; 4]) -> Self {
        let mut m = Self::zeros();
        for (i, v) in d.into_iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Self {
        let mut out = Self::zeros();
        for r in 0..4 {
            for c in 0..4 {
                out.data[c][r] = self.data[r][c].conj();
            }
        }
        out
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros();
        for r in 0..4 {
            for c in 0..4 {
                out.data[c][r] = self.data[r][c];
            }
        }
        out
    }

    /// Entry-wise complex conjugate.
    pub fn conj(&self) -> Self {
        let mut out = *self;
        for r in 0..4 {
            for c in 0..4 {
                out.data[r][c] = out.data[r][c].conj();
            }
        }
        out
    }

    /// Matrix trace.
    pub fn trace(&self) -> C64 {
        (0..4).map(|i| self.data[i][i]).sum()
    }

    /// Determinant, computed by cofactor expansion over the first row.
    #[allow(clippy::needless_range_loop)] // cofactor loops skip the minor's column by index
    pub fn det(&self) -> C64 {
        let m = &self.data;
        let det3 = |a: [[C64; 3]; 3]| -> C64 {
            a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1])
                - a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0])
                + a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0])
        };
        let minor = |col: usize| -> [[C64; 3]; 3] {
            let mut out = [[ZERO; 3]; 3];
            for (ri, r) in (1..4).enumerate() {
                let mut ci = 0;
                for c in 0..4 {
                    if c == col {
                        continue;
                    }
                    out[ri][ci] = m[r][c];
                    ci += 1;
                }
            }
            out
        };
        let mut acc = ZERO;
        let mut sign = 1.0;
        for c in 0..4 {
            acc += m[0][c] * det3(minor(c)) * sign;
            sign = -sign;
        }
        acc
    }

    /// Multiplies every entry by a complex scalar.
    pub fn scale(&self, k: C64) -> Self {
        let mut out = *self;
        for r in 0..4 {
            for c in 0..4 {
                out.data[r][c] *= k;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .flatten()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Hilbert–Schmidt inner product `⟨A, B⟩ = Tr(A† B)`.
    pub fn hs_inner(&self, other: &Self) -> C64 {
        let mut acc = ZERO;
        for r in 0..4 {
            for c in 0..4 {
                acc += self.data[r][c].conj() * other.data[r][c];
            }
        }
        acc
    }

    /// Returns `true` when `self · self† = I` within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        (*self * self.adjoint()).approx_eq(&Self::identity(), tol)
    }

    /// Entry-wise approximate equality.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        for r in 0..4 {
            for c in 0..4 {
                if !self.data[r][c].approx_eq(other.data[r][c], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Approximate equality up to a global phase.
    pub fn approx_eq_up_to_phase(&self, other: &Self, tol: f64) -> bool {
        phase_aligned_distance_4(self, other) <= tol
    }

    /// Swaps the roles of the two qubits: `U ↦ SWAP · U · SWAP`.
    pub fn reverse_qubits(&self) -> Self {
        let perm = [0usize, 2, 1, 3];
        let mut out = Self::zeros();
        for r in 0..4 {
            for c in 0..4 {
                out[(r, c)] = self.data[perm[r]][perm[c]];
            }
        }
        out
    }
}

/// Maximum entry-wise distance between `a` and `e^{iφ} b` for the optimal φ.
fn phase_aligned_distance_2(a: &Matrix2, b: &Matrix2) -> f64 {
    // Align phases using the largest-magnitude entry of b.
    let mut best = (0usize, 0usize);
    let mut mag = -1.0;
    for r in 0..2 {
        for c in 0..2 {
            if b[(r, c)].abs() > mag {
                mag = b[(r, c)].abs();
                best = (r, c);
            }
        }
    }
    if mag < 1e-14 {
        return a.frobenius_norm();
    }
    let phase = a[best] / b[best];
    let phase = if phase.abs() < 1e-14 {
        crate::complex::ONE
    } else {
        phase / phase.abs()
    };
    let mut dist: f64 = 0.0;
    for r in 0..2 {
        for c in 0..2 {
            dist = dist.max((a[(r, c)] - b[(r, c)] * phase).abs());
        }
    }
    dist
}

/// Maximum entry-wise distance between `a` and `e^{iφ} b` for the optimal φ.
fn phase_aligned_distance_4(a: &Matrix4, b: &Matrix4) -> f64 {
    let mut best = (0usize, 0usize);
    let mut mag = -1.0;
    for r in 0..4 {
        for c in 0..4 {
            if b[(r, c)].abs() > mag {
                mag = b[(r, c)].abs();
                best = (r, c);
            }
        }
    }
    if mag < 1e-14 {
        return a.frobenius_norm();
    }
    let phase = a[best] / b[best];
    let phase = if phase.abs() < 1e-14 {
        crate::complex::ONE
    } else {
        phase / phase.abs()
    };
    let mut dist: f64 = 0.0;
    for r in 0..4 {
        for c in 0..4 {
            dist = dist.max((a[(r, c)] - b[(r, c)] * phase).abs());
        }
    }
    dist
}

impl Index<(usize, usize)> for Matrix2 {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.data[r][c]
    }
}

impl IndexMut<(usize, usize)> for Matrix2 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.data[r][c]
    }
}

impl Index<(usize, usize)> for Matrix4 {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.data[r][c]
    }
}

impl IndexMut<(usize, usize)> for Matrix4 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.data[r][c]
    }
}

impl Mul for Matrix2 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = Self::zeros();
        for r in 0..2 {
            for c in 0..2 {
                let mut acc = ZERO;
                for k in 0..2 {
                    acc += self.data[r][k] * rhs.data[k][c];
                }
                out.data[r][c] = acc;
            }
        }
        out
    }
}

impl Mul for Matrix4 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut out = Self::zeros();
        for r in 0..4 {
            for c in 0..4 {
                let mut acc = ZERO;
                for k in 0..4 {
                    acc += self.data[r][k] * rhs.data[k][c];
                }
                out.data[r][c] = acc;
            }
        }
        out
    }
}

impl Add for Matrix2 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        for r in 0..2 {
            for c in 0..2 {
                out.data[r][c] += rhs.data[r][c];
            }
        }
        out
    }
}

impl Add for Matrix4 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        for r in 0..4 {
            for c in 0..4 {
                out.data[r][c] += rhs.data[r][c];
            }
        }
        out
    }
}

impl Sub for Matrix2 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let mut out = self;
        for r in 0..2 {
            for c in 0..2 {
                out.data[r][c] -= rhs.data[r][c];
            }
        }
        out
    }
}

impl Sub for Matrix4 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let mut out = self;
        for r in 0..4 {
            for c in 0..4 {
                out.data[r][c] -= rhs.data[r][c];
            }
        }
        out
    }
}

impl Neg for Matrix2 {
    type Output = Self;
    fn neg(self) -> Self {
        self.scale(C64::real(-1.0))
    }
}

impl Neg for Matrix4 {
    type Output = Self;
    fn neg(self) -> Self {
        self.scale(C64::real(-1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::I;

    const TOL: f64 = 1e-12;

    fn pauli_x() -> Matrix2 {
        Matrix2::new([[ZERO, ONE], [ONE, ZERO]])
    }

    fn pauli_z() -> Matrix2 {
        Matrix2::new([[ONE, ZERO], [ZERO, -ONE]])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli_x();
        assert!((x * Matrix2::identity()).approx_eq(&x, TOL));
        assert!((Matrix2::identity() * x).approx_eq(&x, TOL));
    }

    #[test]
    fn pauli_algebra() {
        let x = pauli_x();
        let z = pauli_z();
        // X² = Z² = I, XZ = -ZX
        assert!((x * x).approx_eq(&Matrix2::identity(), TOL));
        assert!((z * z).approx_eq(&Matrix2::identity(), TOL));
        assert!((x * z).approx_eq(&(z * x).scale(C64::real(-1.0)), TOL));
    }

    #[test]
    fn determinant_of_paulis() {
        assert!(pauli_x().det().approx_eq(C64::real(-1.0), TOL));
        assert!(pauli_z().det().approx_eq(C64::real(-1.0), TOL));
        assert!(Matrix2::identity().det().approx_eq(ONE, TOL));
    }

    #[test]
    fn kron_of_identities_is_identity() {
        let id4 = Matrix2::identity().kron(&Matrix2::identity());
        assert!(id4.approx_eq(&Matrix4::identity(), TOL));
    }

    #[test]
    fn kron_ordering_convention() {
        // Z ⊗ I must act on the most significant (left) qubit.
        let zi = pauli_z().kron(&Matrix2::identity());
        assert!(zi[(0, 0)].approx_eq(ONE, TOL));
        assert!(zi[(1, 1)].approx_eq(ONE, TOL));
        assert!(zi[(2, 2)].approx_eq(-ONE, TOL));
        assert!(zi[(3, 3)].approx_eq(-ONE, TOL));
    }

    #[test]
    fn det4_multiplicative() {
        let a = pauli_x().kron(&pauli_z());
        let b = pauli_z().kron(&pauli_x());
        let lhs = (a * b).det();
        let rhs = a.det() * b.det();
        assert!(lhs.approx_eq(rhs, 1e-10));
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = pauli_x().kron(&pauli_z());
        let b = Matrix2::identity().kron(&pauli_x());
        assert!(((a * b).adjoint()).approx_eq(&(b.adjoint() * a.adjoint()), TOL));
    }

    #[test]
    fn unitarity_checks() {
        assert!(pauli_x().is_unitary(TOL));
        assert!(pauli_x().kron(&pauli_z()).is_unitary(TOL));
        let not_unitary = Matrix2::new([[ONE, ONE], [ZERO, ONE]]);
        assert!(!not_unitary.is_unitary(TOL));
    }

    #[test]
    fn phase_equality() {
        let a = pauli_x();
        let b = pauli_x().scale(I);
        assert!(a.approx_eq_up_to_phase(&b, TOL));
        assert!(!a.approx_eq(&b, TOL));
    }

    #[test]
    fn reverse_qubits_swaps_tensor_factors() {
        let a = pauli_x().kron(&pauli_z());
        let b = pauli_z().kron(&pauli_x());
        assert!(a.reverse_qubits().approx_eq(&b, TOL));
    }

    #[test]
    fn trace_linearity() {
        let a = pauli_x().kron(&pauli_z());
        let b = Matrix4::identity();
        assert!((a + b).trace().approx_eq(a.trace() + b.trace(), TOL));
    }

    #[test]
    fn hs_inner_of_identity() {
        let id = Matrix4::identity();
        assert!(id.hs_inner(&id).approx_eq(C64::real(4.0), TOL));
    }
}
