//! Unitary matrices for the standard single- and two-qubit gates used by the
//! co-design study.
//!
//! Conventions:
//! * Basis ordering for two-qubit operators is `|00⟩, |01⟩, |10⟩, |11⟩` with
//!   qubit 0 as the most significant bit (left tensor factor).
//! * Controlled gates have qubit 0 as control and qubit 1 as target.
//! * `iswap_pow(t)` implements the paper's `ⁿ√iSWAP` family (Eq. 2) with
//!   `t = 1/n`; `t = 1` is a full `iSWAP`.

use crate::complex::{C64, I, ONE, ZERO};
use crate::matrix::{Matrix2, Matrix4};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, FRAC_PI_6, PI};

// ---------------------------------------------------------------------------
// Single-qubit gates
// ---------------------------------------------------------------------------

/// 2×2 identity.
pub fn id2() -> Matrix2 {
    Matrix2::identity()
}

/// Pauli X.
pub fn x() -> Matrix2 {
    Matrix2::new([[ZERO, ONE], [ONE, ZERO]])
}

/// Pauli Y.
pub fn y() -> Matrix2 {
    Matrix2::new([[ZERO, -I], [I, ZERO]])
}

/// Pauli Z.
pub fn z() -> Matrix2 {
    Matrix2::new([[ONE, ZERO], [ZERO, -ONE]])
}

/// Hadamard.
pub fn h() -> Matrix2 {
    let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
    Matrix2::new([[s, s], [s, -s]])
}

/// Phase gate S = diag(1, i).
pub fn s() -> Matrix2 {
    Matrix2::diag(ONE, I)
}

/// Inverse phase gate S† = diag(1, -i).
pub fn sdg() -> Matrix2 {
    Matrix2::diag(ONE, -I)
}

/// T gate = diag(1, e^{iπ/4}).
pub fn t() -> Matrix2 {
    Matrix2::diag(ONE, C64::cis(FRAC_PI_4))
}

/// T† gate.
pub fn tdg() -> Matrix2 {
    Matrix2::diag(ONE, C64::cis(-FRAC_PI_4))
}

/// √X gate.
pub fn sx() -> Matrix2 {
    let a = C64::new(0.5, 0.5);
    let b = C64::new(0.5, -0.5);
    Matrix2::new([[a, b], [b, a]])
}

/// Rotation about X: `exp(-i θ X / 2)`.
pub fn rx(theta: f64) -> Matrix2 {
    let c = C64::real((theta / 2.0).cos());
    let s = C64::imag(-(theta / 2.0).sin());
    Matrix2::new([[c, s], [s, c]])
}

/// Rotation about Y: `exp(-i θ Y / 2)`.
pub fn ry(theta: f64) -> Matrix2 {
    let c = C64::real((theta / 2.0).cos());
    let s = C64::real((theta / 2.0).sin());
    Matrix2::new([[c, -s], [s, c]])
}

/// Rotation about Z: `exp(-i θ Z / 2)`.
pub fn rz(theta: f64) -> Matrix2 {
    Matrix2::diag(C64::cis(-theta / 2.0), C64::cis(theta / 2.0))
}

/// Phase gate P(λ) = diag(1, e^{iλ}).
pub fn p(lambda: f64) -> Matrix2 {
    Matrix2::diag(ONE, C64::cis(lambda))
}

/// The general single-qubit gate
/// `U3(θ, φ, λ) = [[cos(θ/2), -e^{iλ} sin(θ/2)], [e^{iφ} sin(θ/2), e^{i(φ+λ)} cos(θ/2)]]`.
pub fn u3(theta: f64, phi: f64, lambda: f64) -> Matrix2 {
    let c = (theta / 2.0).cos();
    let sn = (theta / 2.0).sin();
    Matrix2::new([
        [C64::real(c), -C64::cis(lambda) * sn],
        [C64::cis(phi) * sn, C64::cis(phi + lambda) * c],
    ])
}

// ---------------------------------------------------------------------------
// Two-qubit gates
// ---------------------------------------------------------------------------

/// CNOT with qubit 0 as control (paper Eq. 1).
pub fn cx() -> Matrix4 {
    Matrix4::new([
        [ONE, ZERO, ZERO, ZERO],
        [ZERO, ONE, ZERO, ZERO],
        [ZERO, ZERO, ZERO, ONE],
        [ZERO, ZERO, ONE, ZERO],
    ])
}

/// Controlled-Z.
pub fn cz() -> Matrix4 {
    Matrix4::diag([ONE, ONE, ONE, -ONE])
}

/// Controlled-phase gate `CP(λ) = diag(1, 1, 1, e^{iλ})`.
pub fn cphase(lambda: f64) -> Matrix4 {
    Matrix4::diag([ONE, ONE, ONE, C64::cis(lambda)])
}

/// SWAP gate.
pub fn swap() -> Matrix4 {
    Matrix4::new([
        [ONE, ZERO, ZERO, ZERO],
        [ZERO, ZERO, ONE, ZERO],
        [ZERO, ONE, ZERO, ZERO],
        [ZERO, ZERO, ZERO, ONE],
    ])
}

/// Full iSWAP gate.
pub fn iswap() -> Matrix4 {
    iswap_pow(1.0)
}

/// √iSWAP — the SNAIL's preferred basis gate.
pub fn sqrt_iswap() -> Matrix4 {
    iswap_pow(0.5)
}

/// Fractional iSWAP: `iSWAP^t` (paper Eq. 2 with `t = 1/n`).
///
/// `iswap_pow(1.0)` is a full iSWAP, `iswap_pow(0.5)` is √iSWAP and
/// `iswap_pow(1.0 / n)` is `ⁿ√iSWAP`.
pub fn iswap_pow(t: f64) -> Matrix4 {
    let a = t * FRAC_PI_2;
    let c = C64::real(a.cos());
    let s = I * a.sin();
    Matrix4::new([
        [ONE, ZERO, ZERO, ZERO],
        [ZERO, c, s, ZERO],
        [ZERO, s, c, ZERO],
        [ZERO, ZERO, ZERO, ONE],
    ])
}

/// The paper's `ⁿ√iSWAP` gate for integer `n ≥ 1`.
pub fn nth_root_iswap(n: u32) -> Matrix4 {
    iswap_pow(1.0 / f64::from(n.max(1)))
}

/// Google's FSIM gate family (paper Eq. 6).
pub fn fsim(theta: f64, phi: f64) -> Matrix4 {
    let c = C64::real(theta.cos());
    let s = -I * theta.sin();
    Matrix4::new([
        [ONE, ZERO, ZERO, ZERO],
        [ZERO, c, s, ZERO],
        [ZERO, s, c, ZERO],
        [ZERO, ZERO, ZERO, C64::cis(-phi)],
    ])
}

/// The Sycamore gate `SYC = FSIM(π/2, π/6)`.
pub fn syc() -> Matrix4 {
    fsim(FRAC_PI_2, FRAC_PI_6)
}

/// IBM's cross-resonance interaction `ZX(θ)` (paper Eq. 4).
pub fn zx(theta: f64) -> Matrix4 {
    let c = C64::real((theta / 2.0).cos());
    let s = C64::imag((theta / 2.0).sin());
    Matrix4::new([
        [c, -s, ZERO, ZERO],
        [-s, c, ZERO, ZERO],
        [ZERO, ZERO, c, s],
        [ZERO, ZERO, s, c],
    ])
}

/// Two-qubit ZZ rotation `exp(-i θ Z⊗Z / 2)`; the QAOA/TIM workhorse.
pub fn rzz(theta: f64) -> Matrix4 {
    let m = C64::cis(-theta / 2.0);
    let p = C64::cis(theta / 2.0);
    Matrix4::diag([m, p, p, m])
}

/// Two-qubit XX rotation `exp(-i θ X⊗X / 2)`.
pub fn rxx(theta: f64) -> Matrix4 {
    canonical(-theta / 2.0, 0.0, 0.0)
}

/// Two-qubit YY rotation `exp(-i θ Y⊗Y / 2)`.
pub fn ryy(theta: f64) -> Matrix4 {
    canonical(0.0, -theta / 2.0, 0.0)
}

/// The DCX ("double CNOT") gate, locally equivalent to iSWAP.
pub fn dcx() -> Matrix4 {
    Matrix4::new([
        [ONE, ZERO, ZERO, ZERO],
        [ZERO, ZERO, ZERO, ONE],
        [ZERO, ONE, ZERO, ZERO],
        [ZERO, ZERO, ONE, ZERO],
    ])
}

/// The controlled-√X (CSX) gate, a genuine "half CNOT".
pub fn csx() -> Matrix4 {
    let a = C64::new(0.5, 0.5);
    let b = C64::new(0.5, -0.5);
    Matrix4::new([
        [ONE, ZERO, ZERO, ZERO],
        [ZERO, ONE, ZERO, ZERO],
        [ZERO, ZERO, a, b],
        [ZERO, ZERO, b, a],
    ])
}

// ---------------------------------------------------------------------------
// The magic (Bell) basis and the canonical gate
// ---------------------------------------------------------------------------

/// The magic-basis change-of-basis matrix `B`.
///
/// Columns are the phased Bell states
/// `Φ₁ = (|00⟩+|11⟩)/√2`, `Φ₂ = -i(|00⟩-|11⟩)/√2`,
/// `Φ₃ = (|01⟩-|10⟩)/√2`, `Φ₄ = -i(|01⟩+|10⟩)/√2`.
///
/// In this basis every local gate `A⊗B` (with `A, B ∈ SU(2)`) becomes a real
/// orthogonal matrix and every canonical gate becomes diagonal.
pub fn magic_basis() -> Matrix4 {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    let r = C64::real(s);
    let mi = C64::imag(-s);
    let pi_ = C64::imag(s);
    Matrix4::new([
        // |00⟩ row
        [r, mi, ZERO, ZERO],
        // |01⟩ row
        [ZERO, ZERO, r, mi],
        // |10⟩ row
        [ZERO, ZERO, -r, mi],
        // |11⟩ row
        [r, pi_, ZERO, ZERO],
    ])
}

/// Eigenphases of the canonical Hamiltonian in the magic basis.
///
/// `canonical(c)` is diagonal in the magic basis with phases `exp(i λⱼ)` where
/// `λ = (c₁-c₂+c₃, -c₁+c₂+c₃, -c₁-c₂-c₃, c₁+c₂-c₃)`.
pub fn canonical_phases(c1: f64, c2: f64, c3: f64) -> [f64; 4] {
    [c1 - c2 + c3, -c1 + c2 + c3, -c1 - c2 - c3, c1 + c2 - c3]
}

/// The canonical (Weyl-chamber) gate
/// `CAN(c₁, c₂, c₃) = exp(i (c₁ X⊗X + c₂ Y⊗Y + c₃ Z⊗Z))`.
///
/// Reference points: `CAN(π/4, 0, 0) ≅ CNOT`, `CAN(π/4, π/4, 0) ≅ iSWAP`,
/// `CAN(π/8, π/8, 0) ≅ √iSWAP`, `CAN(π/4, π/4, π/4) ≅ SWAP`.
pub fn canonical(c1: f64, c2: f64, c3: f64) -> Matrix4 {
    let b = magic_basis();
    let phases = canonical_phases(c1, c2, c3);
    let d = Matrix4::diag([
        C64::cis(phases[0]),
        C64::cis(phases[1]),
        C64::cis(phases[2]),
        C64::cis(phases[3]),
    ]);
    b * d * b.adjoint()
}

/// Embeds a single-qubit gate on qubit 0 of a two-qubit register.
pub fn on_qubit0(a: &Matrix2) -> Matrix4 {
    a.kron(&Matrix2::identity())
}

/// Embeds a single-qubit gate on qubit 1 of a two-qubit register.
pub fn on_qubit1(a: &Matrix2) -> Matrix4 {
    Matrix2::identity().kron(a)
}

/// Applies local dressings: `(a0 ⊗ a1) · U · (b0 ⊗ b1)`.
pub fn dress(u: &Matrix4, a0: &Matrix2, a1: &Matrix2, b0: &Matrix2, b1: &Matrix2) -> Matrix4 {
    a0.kron(a1) * *u * b0.kron(b1)
}

/// Weyl-chamber coordinates of well-known gates, used for classification.
pub mod known_coords {
    use std::f64::consts::{FRAC_PI_4, FRAC_PI_8};

    /// CNOT / CZ class.
    pub const CNOT: [f64; 3] = [FRAC_PI_4, 0.0, 0.0];
    /// iSWAP / DCX class.
    pub const ISWAP: [f64; 3] = [FRAC_PI_4, FRAC_PI_4, 0.0];
    /// √iSWAP class.
    pub const SQRT_ISWAP: [f64; 3] = [FRAC_PI_8, FRAC_PI_8, 0.0];
    /// SWAP class.
    pub const SWAP: [f64; 3] = [FRAC_PI_4, FRAC_PI_4, FRAC_PI_4];
    /// B-gate class (the "optimal" two-qubit gate).
    pub const B_GATE: [f64; 3] = [FRAC_PI_4, FRAC_PI_8, 0.0];
    /// Identity (local) class.
    pub const IDENTITY: [f64; 3] = [0.0, 0.0, 0.0];
}

/// Returns the Weyl coordinate triple of `ⁿ√iSWAP`: `(π/4n, π/4n, 0)`.
pub fn nth_root_iswap_coords(n: u32) -> [f64; 3] {
    let a = PI / (4.0 * f64::from(n.max(1)));
    [a, a, 0.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn single_qubit_gates_are_unitary() {
        for (name, g) in [
            ("x", x()),
            ("y", y()),
            ("z", z()),
            ("h", h()),
            ("s", s()),
            ("sdg", sdg()),
            ("t", t()),
            ("tdg", tdg()),
            ("sx", sx()),
            ("rx", rx(0.3)),
            ("ry", ry(1.2)),
            ("rz", rz(-0.7)),
            ("p", p(2.1)),
            ("u3", u3(0.4, 1.1, -2.0)),
        ] {
            assert!(g.is_unitary(TOL), "{name} is not unitary");
        }
    }

    #[test]
    fn two_qubit_gates_are_unitary() {
        for (name, g) in [
            ("cx", cx()),
            ("cz", cz()),
            ("cphase", cphase(0.7)),
            ("swap", swap()),
            ("iswap", iswap()),
            ("sqrt_iswap", sqrt_iswap()),
            ("fsim", fsim(0.5, 0.3)),
            ("syc", syc()),
            ("zx", zx(1.0)),
            ("rzz", rzz(0.9)),
            ("rxx", rxx(0.9)),
            ("ryy", ryy(0.9)),
            ("dcx", dcx()),
            ("csx", csx()),
            ("canonical", canonical(0.3, 0.2, 0.1)),
            ("magic", magic_basis()),
        ] {
            assert!(g.is_unitary(TOL), "{name} is not unitary");
        }
    }

    #[test]
    fn sqrt_iswap_squares_to_iswap() {
        let s = sqrt_iswap();
        assert!((s * s).approx_eq(&iswap(), TOL));
    }

    #[test]
    fn nth_root_composes_to_iswap() {
        for n in 2..=7u32 {
            let g = nth_root_iswap(n);
            let mut acc = Matrix4::identity();
            for _ in 0..n {
                acc = acc * g;
            }
            assert!(acc.approx_eq(&iswap(), TOL), "n = {n}");
        }
    }

    #[test]
    fn sqrt_iswap_matches_fsim_convention() {
        // Paper §2.4.2: √iSWAP is FSIM(-π/4, 0).
        assert!(sqrt_iswap().approx_eq(&fsim(-FRAC_PI_4, 0.0), TOL));
        // and iSWAP is FSIM(-π/2, 0).
        assert!(iswap().approx_eq(&fsim(-FRAC_PI_2, 0.0), TOL));
    }

    #[test]
    fn cnot_from_cross_resonance() {
        // Paper Eq. 5: CNOT = (S† ⊗ √X†) · ZX(π/2) up to global phase
        // (with appropriate qubit ordering / sign conventions).
        let zx_half = zx(FRAC_PI_2);
        let fixup = sdg().kron(&sx().adjoint());
        let candidate = fixup * zx_half;
        assert!(candidate.approx_eq_up_to_phase(&cx(), TOL));
    }

    #[test]
    fn cphase_pi_is_cz() {
        assert!(cphase(PI).approx_eq(&cz(), TOL));
    }

    #[test]
    fn dcx_is_two_cnots() {
        // DCX = CX(1,0) · CX(0,1) up to qubit ordering; check it is a valid
        // permutation-like unitary built from two CNOTs.
        let cx01 = cx();
        let cx10 = cx().reverse_qubits();
        let prod = cx10 * cx01;
        assert!(prod.approx_eq(&dcx(), TOL) || prod.reverse_qubits().approx_eq(&dcx(), TOL));
    }

    #[test]
    fn magic_basis_makes_locals_real() {
        // B† (A ⊗ B) B must be a real matrix for A, B ∈ SU(2).
        let b = magic_basis();
        let a0 = u3(0.3, 0.9, -1.3);
        let a1 = u3(1.1, -0.4, 0.2);
        // Normalize to SU(2): divide by sqrt of determinant.
        let norm = |m: Matrix2| {
            let d = m.det().sqrt();
            m.scale(d.inv())
        };
        let local = norm(a0).kron(&norm(a1));
        let transformed = b.adjoint() * local * b;
        for r in 0..4 {
            for c in 0..4 {
                assert!(
                    transformed[(r, c)].im.abs() < 1e-9,
                    "entry ({r},{c}) not real: {}",
                    transformed[(r, c)]
                );
            }
        }
    }

    #[test]
    fn canonical_gate_is_diagonal_in_magic_basis() {
        let b = magic_basis();
        let g = canonical(0.4, 0.25, 0.1);
        let d = b.adjoint() * g * b;
        for r in 0..4 {
            for c in 0..4 {
                if r != c {
                    assert!(d[(r, c)].abs() < 1e-9, "off-diagonal entry ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn canonical_reference_points() {
        use known_coords::*;
        // CAN at reference coordinates must be locally equivalent to the named
        // gates; here we check the stronger property for iSWAP/SWAP where the
        // canonical gate equals the named gate up to phase and local Paulis.
        let can_iswap = canonical(ISWAP[0], ISWAP[1], ISWAP[2]);
        assert!(can_iswap.approx_eq_up_to_phase(&iswap(), 1e-9));
        let can_swap = canonical(SWAP[0], SWAP[1], SWAP[2]);
        assert!(can_swap.approx_eq_up_to_phase(&swap(), 1e-9));
        let can_sqiswap = canonical(SQRT_ISWAP[0], SQRT_ISWAP[1], SQRT_ISWAP[2]);
        assert!(can_sqiswap.approx_eq_up_to_phase(&sqrt_iswap(), 1e-9));
    }

    #[test]
    fn rzz_is_canonical_zz() {
        let theta = 0.8;
        assert!(rzz(theta).approx_eq_up_to_phase(&canonical(0.0, 0.0, -theta / 2.0), 1e-9));
    }

    #[test]
    fn embedding_helpers() {
        let g = on_qubit0(&x()) * on_qubit1(&x());
        assert!(g.approx_eq(&x().kron(&x()), TOL));
    }
}
