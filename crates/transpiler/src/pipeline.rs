//! The staged transpilation pipeline of Fig. 10.
//!
//! `Quantum circuit → layout → routing → (count SWAPs) → basis translation
//! → analysis (count 2Q gates)`. The stages are assembled with
//! [`Pipeline::builder`], each with its own configuration:
//!
//! ```
//! use snailqc_transpiler::{Pipeline, LayoutStrategy, RouterConfig};
//! use snailqc_decompose::BasisGate;
//! use snailqc_topology::builders;
//! use snailqc_workloads::qft;
//!
//! let pipeline = Pipeline::builder()
//!     .layout(LayoutStrategy::Dense)
//!     .router(RouterConfig::default())
//!     .translate_to(BasisGate::SqrtISwap)
//!     .build();
//! let result = pipeline.run(&qft(8, true), &builders::hypercube(4));
//! assert!(result.report.basis_gate_count >= result.report.swap_count);
//! ```
//!
//! A run produces a [`TranspileResult`]: the routed (and optionally
//! basis-translated) circuit, the [`TranspileReport`] bundling the four data
//! series the paper collects for every (workload, size, topology, basis)
//! point — total SWAPs, critical-path SWAPs, total 2Q basis gates, and
//! critical-path 2Q basis gates (the pulse-duration proxy) — plus a
//! [`PassTrace`] recording per-stage wall time and gate/SWAP deltas for
//! observability.
//!
//! When `snailqc-obs` recording is on (see [`snailqc_obs::enable`]), every
//! stage additionally runs inside a tracing span (`pipeline.layout`,
//! `pipeline.routing`, …) nested under a `pipeline.run` root, and the
//! [`PassTrace`] captures each stage's counter deltas (router work counters,
//! cache hits) in [`PassTrace::stage_counters`]. Instrumentation only
//! records — routed output is bitwise-identical with recording on or off.

use crate::layout::{LayoutError, LayoutStrategy};
use crate::routing::{route_with_cache, RoutedCircuit, RouterConfig, RoutingCache};
use crate::translate::translate_to_basis;
use snailqc_circuit::Circuit;
use snailqc_decompose::BasisGate;
use snailqc_obs as obs;
use snailqc_topology::CouplingGraph;
use std::time::Instant;

/// Why a pipeline run could not produce a result. Today the only fallible
/// stage is layout (routing, translation and analysis are total on any
/// placed program); the enum leaves room for later stages to fail without
/// another API break.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TranspileError {
    /// The layout stage could not place the program — it does not fit in
    /// any single connected component of the device.
    Layout(LayoutError),
}

impl std::fmt::Display for TranspileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranspileError::Layout(e) => write!(f, "layout failed: {e}"),
        }
    }
}

impl std::error::Error for TranspileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TranspileError::Layout(e) => Some(e),
        }
    }
}

impl From<LayoutError> for TranspileError {
    fn from(e: LayoutError) -> Self {
        TranspileError::Layout(e)
    }
}

/// Options controlling the transpilation pipeline.
///
/// A plain-data configuration carrier, kept for callers that assemble
/// options field by field; [`Pipeline::from_options`] converts it into the
/// equivalent staged [`Pipeline`], which is what new code builds directly.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TranspileOptions {
    /// Initial-placement strategy (the paper uses dense placement).
    pub layout: LayoutStrategy,
    /// Router configuration.
    pub router: RouterConfig,
    /// Native basis gate for the final translation pass; `None` stops after
    /// routing (used for the gate-agnostic SWAP studies of Figs. 4/11/12).
    pub basis: Option<BasisGate>,
}

impl Default for TranspileOptions {
    fn default() -> Self {
        Self {
            layout: LayoutStrategy::Dense,
            router: RouterConfig::default(),
            basis: None,
        }
    }
}

impl TranspileOptions {
    /// Pipeline options with a basis-translation stage.
    pub fn with_basis(basis: BasisGate) -> Self {
        Self {
            basis: Some(basis),
            ..Self::default()
        }
    }

    /// Overrides the router seed (used to decorrelate sweep points).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.router.seed = seed;
        self
    }

    /// Enables noise-aware routing against the device calibration with the
    /// given fidelity weight (`0` keeps the router noise-blind).
    pub fn with_error_weight(mut self, error_weight: f64) -> Self {
        self.router.error_weight = error_weight;
        self
    }
}

/// How the translation stage picks its target basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum BasisChoice {
    /// Use the native basis of the device the pipeline runs on, when it has
    /// one (resolved by `snailqc_core::device::Device::transpile`; running
    /// directly on a bare [`CouplingGraph`] skips translation). This is the
    /// default: on a co-designed machine the modulator chooses the gate.
    Device,
    /// Always translate into this basis, whatever the device says.
    Fixed(BasisGate),
    /// Stop after routing (the gate-agnostic SWAP studies of Figs. 4/11/12).
    Skip,
}

impl BasisChoice {
    /// Resolves the translation target given a device's native basis.
    pub fn resolve(&self, native: Option<BasisGate>) -> Option<BasisGate> {
        match self {
            BasisChoice::Device => native,
            BasisChoice::Fixed(basis) => Some(*basis),
            BasisChoice::Skip => None,
        }
    }
}

/// The staged transpilation flow: layout → routing → translation → analysis.
///
/// Build one with [`Pipeline::builder`], then [`Pipeline::run`] it on any
/// number of (circuit, device) pairs; a pipeline is an immutable recipe and
/// every run is independent.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Pipeline {
    layout: LayoutStrategy,
    router: RouterConfig,
    translation: BasisChoice,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl Pipeline {
    /// Starts building a pipeline (dense layout, default router, translation
    /// to the device's native basis).
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// Re-opens this pipeline as a builder, to derive a variant (e.g. the
    /// same stages under a different seed).
    pub fn to_builder(&self) -> PipelineBuilder {
        PipelineBuilder {
            layout: self.layout,
            router: self.router,
            translation: self.translation,
        }
    }

    /// Converts [`TranspileOptions`] into the equivalent pipeline
    /// (`basis: None` maps to [`BasisChoice::Skip`], preserving the
    /// options' semantics exactly).
    pub fn from_options(options: &TranspileOptions) -> Self {
        Self {
            layout: options.layout,
            router: options.router,
            translation: match options.basis {
                Some(basis) => BasisChoice::Fixed(basis),
                None => BasisChoice::Skip,
            },
        }
    }

    /// The configured layout strategy.
    pub fn layout(&self) -> LayoutStrategy {
        self.layout
    }

    /// The configured router.
    pub fn router(&self) -> &RouterConfig {
        &self.router
    }

    /// The configured translation stage.
    pub fn translation(&self) -> BasisChoice {
        self.translation
    }

    /// Runs the pipeline on `circuit` against a bare coupling graph. With
    /// the default [`BasisChoice::Device`] translation, a bare graph carries
    /// no native basis, so translation is skipped; use
    /// [`PipelineBuilder::translate_to`] or run through
    /// `snailqc_core::device::Device` to get a translated circuit.
    ///
    /// # Panics
    /// Panics where [`Pipeline::try_run`] would return an error.
    pub fn run(&self, circuit: &Circuit, graph: &CouplingGraph) -> TranspileResult {
        self.run_with_native_basis(circuit, graph, None)
    }

    /// [`Pipeline::run`], reporting a [`TranspileError`] instead of
    /// panicking when the program cannot be placed on the device.
    pub fn try_run(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<TranspileResult, TranspileError> {
        self.try_run_with_native_basis(circuit, graph, None)
    }

    /// Runs the pipeline with the device's native basis supplied by the
    /// caller — the hook `snailqc_core::device::Device::transpile` uses to
    /// resolve [`BasisChoice::Device`] without this crate depending on the
    /// device layer.
    ///
    /// # Panics
    /// Panics where [`Pipeline::try_run_with_native_basis`] would error.
    pub fn run_with_native_basis(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        native_basis: Option<BasisGate>,
    ) -> TranspileResult {
        self.run_with_native_basis_cached(circuit, graph, native_basis, &RoutingCache::new())
    }

    /// Fallible form of [`Pipeline::run_with_native_basis`].
    pub fn try_run_with_native_basis(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        native_basis: Option<BasisGate>,
    ) -> Result<TranspileResult, TranspileError> {
        self.try_run_with_native_basis_cached(circuit, graph, native_basis, &RoutingCache::new())
    }

    /// [`Pipeline::run_with_native_basis`], reusing `cache`'s distance
    /// state across runs on the same graph. `snailqc_core::device::Device`
    /// owns one cache per device and threads it through here, so sweeps stop
    /// recomputing all-pairs BFS for every cell; output is bitwise-identical
    /// to the uncached path.
    ///
    /// # Panics
    /// Panics where [`Pipeline::try_run_with_native_basis_cached`] would
    /// error.
    pub fn run_with_native_basis_cached(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        native_basis: Option<BasisGate>,
        cache: &RoutingCache,
    ) -> TranspileResult {
        self.try_run_with_native_basis_cached(circuit, graph, native_basis, cache)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The full fallible pipeline run: layout → routing → translation →
    /// analysis, reusing `cache`'s distance state. Returns a
    /// [`TranspileError`] when the program cannot be placed (e.g. it
    /// straddles every connected component of a fragmented device) — the
    /// error the CLI and the serve daemon surface as a diagnostic instead of
    /// a crash.
    pub fn try_run_with_native_basis_cached(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
        native_basis: Option<BasisGate>,
        cache: &RoutingCache,
    ) -> Result<TranspileResult, TranspileError> {
        let basis = self.translation.resolve(native_basis);
        let _run_span = obs::span("pipeline.run");
        // One flag read for the whole run: per-stage counter snapshots cost
        // a registry copy each, so they are taken only while recording.
        let recording = obs::is_enabled();
        let mut trace = PassTrace::default();

        // Stage 1 — layout: pick the initial logical→physical placement.
        let started = Instant::now();
        let before = recording.then(obs::snapshot);
        let stage_span = obs::span("pipeline.layout");
        let layout = self.layout.try_compute(circuit, graph)?;
        drop(stage_span);
        trace.push(
            "layout",
            started,
            (circuit.len(), circuit.two_qubit_count()),
            (circuit.len(), circuit.two_qubit_count()),
        );
        trace.capture_stage_counters("layout", before);

        // Stage 2 — routing: insert SWAPs until every 2Q gate is adjacent.
        let started = Instant::now();
        let before = recording.then(obs::snapshot);
        let stage_span = obs::span("pipeline.routing");
        let routed = route_with_cache(circuit, graph, &layout, &self.router, cache);
        drop(stage_span);
        trace.push(
            "routing",
            started,
            (circuit.len(), circuit.two_qubit_count()),
            (routed.circuit.len(), routed.circuit.two_qubit_count()),
        );
        trace.capture_stage_counters("routing", before);

        // Stage 3 — translation: rewrite into the native basis, if any.
        let translated = basis.map(|basis| {
            let started = Instant::now();
            let before = recording.then(obs::snapshot);
            let stage_span = obs::span("pipeline.translation");
            let (translated, _) = translate_to_basis(&routed.circuit, basis);
            drop(stage_span);
            trace.push(
                "translation",
                started,
                (routed.circuit.len(), routed.circuit.two_qubit_count()),
                (translated.len(), translated.two_qubit_count()),
            );
            trace.capture_stage_counters("translation", before);
            translated
        });

        // Stage 4 — analysis: collect the paper's metrics.
        let started = Instant::now();
        let stage_span = obs::span("pipeline.analysis");
        let edge_rate = |a: usize, b: usize| self.router.edge_errors.rate(graph, a, b);
        let mut report = TranspileReport {
            logical_qubits: circuit.num_qubits(),
            physical_qubits: graph.num_qubits(),
            input_two_qubit_gates: circuit.two_qubit_count(),
            swap_count: routed.swap_count,
            swap_depth: routed.swap_depth(),
            routed_two_qubit_gates: routed.circuit.two_qubit_count(),
            routed_two_qubit_depth: routed.circuit.two_qubit_depth(),
            basis,
            basis_gate_count: 0,
            basis_gate_depth: 0,
            error_weight: self.router.error_weight,
            routed_edge_log_fidelity: edge_log_fidelity(&routed.circuit, &edge_rate),
            basis_edge_log_fidelity: 0.0,
        };
        if let Some(translated) = &translated {
            report.basis_gate_count = translated.two_qubit_count();
            report.basis_gate_depth = translated.two_qubit_depth();
            report.basis_edge_log_fidelity = edge_log_fidelity(translated, &edge_rate);
        }
        let final_gates = translated
            .as_ref()
            .map(|t| (t.len(), t.two_qubit_count()))
            .unwrap_or((routed.circuit.len(), routed.circuit.two_qubit_count()));
        drop(stage_span);
        trace.push("analysis", started, final_gates, final_gates);

        Ok(TranspileResult {
            routed,
            translated,
            report,
            trace,
        })
    }
}

/// Assembles a [`Pipeline`] stage by stage.
#[derive(Debug, Clone, Copy)]
pub struct PipelineBuilder {
    layout: LayoutStrategy,
    router: RouterConfig,
    translation: BasisChoice,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self {
            layout: LayoutStrategy::Dense,
            router: RouterConfig::default(),
            translation: BasisChoice::Device,
        }
    }
}

impl PipelineBuilder {
    /// Sets the initial-placement strategy.
    pub fn layout(mut self, layout: LayoutStrategy) -> Self {
        self.layout = layout;
        self
    }

    /// Sets the full router configuration.
    pub fn router(mut self, router: RouterConfig) -> Self {
        self.router = router;
        self
    }

    /// Overrides the router seed, keeping the rest of the configuration.
    pub fn seed(mut self, seed: u64) -> Self {
        self.router.seed = seed;
        self
    }

    /// Overrides the number of stochastic routing trials.
    pub fn trials(mut self, trials: usize) -> Self {
        self.router.trials = trials;
        self
    }

    /// Overrides the fidelity weight of the SWAP scoring (`0` = noise-blind).
    pub fn error_weight(mut self, error_weight: f64) -> Self {
        self.router.error_weight = error_weight;
        self
    }

    /// Always translate into `basis`, ignoring the device's native gate.
    pub fn translate_to(mut self, basis: BasisGate) -> Self {
        self.translation = BasisChoice::Fixed(basis);
        self
    }

    /// Stop after routing (gate-agnostic SWAP studies).
    pub fn routing_only(mut self) -> Self {
        self.translation = BasisChoice::Skip;
        self
    }

    /// Translate into the device's native basis when it has one (default).
    pub fn device_basis(mut self) -> Self {
        self.translation = BasisChoice::Device;
        self
    }

    /// Sets the translation stage explicitly.
    pub fn translation(mut self, choice: BasisChoice) -> Self {
        self.translation = choice;
        self
    }

    /// Finalizes the pipeline.
    pub fn build(self) -> Pipeline {
        Pipeline {
            layout: self.layout,
            router: self.router,
            translation: self.translation,
        }
    }
}

/// Wall time and gate/SWAP deltas of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct StageTrace {
    /// Stage name: `layout`, `routing`, `translation` or `analysis`.
    pub stage: &'static str,
    /// Wall time the stage took, in microseconds.
    pub micros: f64,
    /// Total gates entering the stage.
    pub gates_in: usize,
    /// Total gates leaving the stage.
    pub gates_out: usize,
    /// Two-qubit gates entering the stage.
    pub two_qubit_in: usize,
    /// Two-qubit gates leaving the stage.
    pub two_qubit_out: usize,
}

/// Counter deltas attributed to one pipeline stage, captured from the
/// `snailqc-obs` registry while recording is enabled.
///
/// Counters are process-global, so when several pipelines run concurrently
/// (batch mode, parallel sweeps) a stage's deltas include work other threads
/// did in the same interval — read them as "what the process did during this
/// stage", exact only for single-threaded runs.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct StageCounters {
    /// Stage name, matching [`StageTrace::stage`].
    pub stage: &'static str,
    /// `(counter name, increase during the stage)`, name-sorted; counters
    /// that did not move are omitted.
    pub counters: Vec<(String, u64)>,
}

/// Per-stage observability record of one pipeline run: which stages ran, how
/// long each took, and how each changed the circuit's gate counts.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct PassTrace {
    /// The stages that ran, in execution order.
    pub stages: Vec<StageTrace>,
    /// Per-stage metric deltas; empty unless `snailqc-obs` recording was on
    /// during the run (see [`StageCounters`]).
    pub stage_counters: Vec<StageCounters>,
}

impl PassTrace {
    fn capture_stage_counters(
        &mut self,
        stage: &'static str,
        before: Option<obs::MetricsSnapshot>,
    ) {
        let Some(before) = before else { return };
        let counters = obs::snapshot().counter_deltas_since(&before);
        if !counters.is_empty() {
            self.stage_counters.push(StageCounters { stage, counters });
        }
    }

    fn push(
        &mut self,
        stage: &'static str,
        started: Instant,
        (gates_in, two_qubit_in): (usize, usize),
        (gates_out, two_qubit_out): (usize, usize),
    ) {
        self.stages.push(StageTrace {
            stage,
            micros: started.elapsed().as_secs_f64() * 1e6,
            gates_in,
            gates_out,
            two_qubit_in,
            two_qubit_out,
        });
    }

    /// The trace of one stage by name, if it ran.
    pub fn stage(&self, name: &str) -> Option<&StageTrace> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// The captured counter deltas of one stage by name, if recording was
    /// on and any counter moved during the stage.
    pub fn stage_counter_deltas(&self, name: &str) -> Option<&StageCounters> {
        self.stage_counters.iter().find(|s| s.stage == name)
    }

    /// Total wall time across all stages, in microseconds.
    pub fn total_micros(&self) -> f64 {
        self.stages.iter().map(|s| s.micros).sum()
    }

    /// SWAP gates inserted by the routing stage (its two-qubit delta).
    pub fn swaps_inserted(&self) -> usize {
        self.stage("routing")
            .map(|s| s.two_qubit_out - s.two_qubit_in)
            .unwrap_or(0)
    }
}

/// The measurements collected by the Fig. 10 flow.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TranspileReport {
    /// Program qubits.
    pub logical_qubits: usize,
    /// Device qubits.
    pub physical_qubits: usize,
    /// Two-qubit gates in the input circuit (before routing).
    pub input_two_qubit_gates: usize,
    /// SWAP gates inserted by routing.
    pub swap_count: usize,
    /// Critical-path SWAP count after routing.
    pub swap_depth: usize,
    /// Two-qubit gates after routing (input gates + SWAPs).
    pub routed_two_qubit_gates: usize,
    /// Critical-path two-qubit count after routing.
    pub routed_two_qubit_depth: usize,
    /// Basis used for translation, if any.
    pub basis: Option<BasisGate>,
    /// Total basis-gate applications after translation (0 when no basis).
    pub basis_gate_count: usize,
    /// Critical-path basis-gate count — the paper's pulse-duration proxy.
    pub basis_gate_depth: usize,
    /// Fidelity weight the router scored SWAPs with (0 = noise-blind).
    pub error_weight: f64,
    /// `Σ ln(1 − err_e)` over the two-qubit gates of the *routed* circuit,
    /// using the per-edge error rates the router saw. `exp` of this is the
    /// routed circuit's control-channel fidelity at SWAP granularity.
    pub routed_edge_log_fidelity: f64,
    /// `Σ ln(1 − err_e)` over the basis gates of the *translated* circuit
    /// (0 when no basis was requested).
    pub basis_edge_log_fidelity: f64,
}

/// The full output of a pipeline run.
#[derive(Debug, Clone)]
pub struct TranspileResult {
    /// The routed physical circuit (before basis translation).
    pub routed: RoutedCircuit,
    /// The basis-translated circuit, when a basis was requested.
    pub translated: Option<Circuit>,
    /// The collected measurements.
    pub report: TranspileReport,
    /// Per-stage timings and gate deltas.
    pub trace: PassTrace,
}

/// `Σ ln(1 − err_e)` over every two-qubit gate of `circuit`, the log of the
/// circuit's control-channel success probability under per-edge error rates.
fn edge_log_fidelity(circuit: &Circuit, edge_rate: &impl Fn(usize, usize) -> f64) -> f64 {
    circuit
        .instructions()
        .iter()
        .filter(|inst| inst.is_two_qubit())
        .map(|inst| {
            let rate = edge_rate(inst.qubits[0], inst.qubits[1]).clamp(0.0, 0.999_999);
            (1.0 - rate).ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_topology::{builders, catalog};
    use snailqc_workloads::{ghz, qaoa_vanilla, qft};

    fn with_basis(basis: BasisGate) -> Pipeline {
        Pipeline::builder().translate_to(basis).build()
    }

    #[test]
    fn report_fields_are_consistent() {
        let c = qft(8, true);
        let graph = builders::square_lattice(3, 3);
        let result = with_basis(BasisGate::Cnot).run(&c, &graph);
        let r = result.report;
        assert_eq!(r.logical_qubits, 8);
        assert_eq!(r.physical_qubits, 9);
        assert_eq!(r.input_two_qubit_gates, c.two_qubit_count());
        assert_eq!(
            r.routed_two_qubit_gates,
            r.input_two_qubit_gates + r.swap_count
        );
        assert!(r.basis_gate_count >= r.routed_two_qubit_gates);
        assert!(r.basis_gate_depth <= r.basis_gate_count);
        assert!(r.swap_depth <= r.swap_count);
        let translated = result.translated.unwrap();
        assert_eq!(translated.two_qubit_count(), r.basis_gate_count);
    }

    #[test]
    fn bare_graph_run_skips_translation_under_device_choice() {
        let c = ghz(6);
        let graph = builders::line(6);
        let result = Pipeline::default().run(&c, &graph);
        assert!(result.translated.is_none());
        assert_eq!(result.report.basis_gate_count, 0);
        assert!(result.trace.stage("translation").is_none());
    }

    #[test]
    fn native_basis_resolves_the_device_choice() {
        let c = ghz(6);
        let graph = builders::line(6);
        let result =
            Pipeline::default().run_with_native_basis(&c, &graph, Some(BasisGate::SqrtISwap));
        assert_eq!(result.report.basis, Some(BasisGate::SqrtISwap));
        assert!(result.translated.is_some());
        // An explicit Skip ignores the native basis.
        let skipped = Pipeline::builder()
            .routing_only()
            .build()
            .run_with_native_basis(&c, &graph, Some(BasisGate::SqrtISwap));
        assert!(skipped.translated.is_none());
    }

    #[test]
    fn ghz_on_a_line_with_trivial_adjacency_needs_no_swaps() {
        let c = ghz(6);
        let graph = builders::line(6);
        let result = Pipeline::builder().routing_only().build().run(&c, &graph);
        assert_eq!(result.report.swap_count, 0);
    }

    #[test]
    fn corral_beats_heavy_hex_on_qaoa_swaps() {
        // Observation 2 in miniature: the densely connected SNAIL Corral
        // routes an all-to-all QAOA with far fewer SWAPs than heavy-hex.
        let c = qaoa_vanilla(12, 1, 3);
        let corral = catalog::corral11_16();
        let heavy = catalog::heavy_hex_20();
        let pipeline = Pipeline::default();
        let on_corral = pipeline.run(&c, &corral).report;
        let on_heavy = pipeline.run(&c, &heavy).report;
        assert!(
            on_corral.swap_count < on_heavy.swap_count,
            "corral {} vs heavy-hex {}",
            on_corral.swap_count,
            on_heavy.swap_count
        );
    }

    #[test]
    fn sqrt_iswap_beats_syc_on_total_gate_count() {
        // Observation 1: for the same routed circuit, the √iSWAP basis never
        // needs more applications than SYC.
        let c = qft(10, true);
        let graph = builders::hypercube(4);
        let siswap = with_basis(BasisGate::SqrtISwap).run(&c, &graph);
        let syc = with_basis(BasisGate::Syc).run(&c, &graph);
        assert!(siswap.report.basis_gate_count <= syc.report.basis_gate_count);
    }

    #[test]
    fn builder_configures_every_stage() {
        let pipeline = Pipeline::builder()
            .layout(LayoutStrategy::Trivial)
            .trials(2)
            .seed(99)
            .error_weight(0.5)
            .translate_to(BasisGate::SqrtISwap)
            .build();
        assert_eq!(pipeline.layout(), LayoutStrategy::Trivial);
        assert_eq!(pipeline.router().trials, 2);
        assert_eq!(pipeline.router().seed, 99);
        assert_eq!(pipeline.router().error_weight, 0.5);
        assert_eq!(
            pipeline.translation(),
            BasisChoice::Fixed(BasisGate::SqrtISwap)
        );
    }

    #[test]
    fn pass_trace_records_every_stage_and_the_swap_delta() {
        let c = qft(8, true);
        let graph = builders::square_lattice(3, 3);
        let result = with_basis(BasisGate::Cnot).run(&c, &graph);
        let names: Vec<&str> = result.trace.stages.iter().map(|s| s.stage).collect();
        assert_eq!(names, ["layout", "routing", "translation", "analysis"]);
        assert_eq!(result.trace.swaps_inserted(), result.report.swap_count);
        let routing = result.trace.stage("routing").unwrap();
        assert_eq!(routing.two_qubit_in, c.two_qubit_count());
        assert_eq!(routing.two_qubit_out, result.report.routed_two_qubit_gates);
        let translation = result.trace.stage("translation").unwrap();
        assert_eq!(translation.two_qubit_out, result.report.basis_gate_count);
        assert!(result.trace.total_micros() >= 0.0);
        for stage in &result.trace.stages {
            assert!(stage.micros >= 0.0, "{}", stage.stage);
        }
    }

    #[test]
    fn from_options_matches_the_explicitly_built_pipeline_bitwise() {
        let c = qft(10, true);
        let graph = catalog::tree_20();
        for options in [
            TranspileOptions::default(),
            TranspileOptions::with_basis(BasisGate::SqrtISwap).with_seed(7),
            TranspileOptions::with_basis(BasisGate::Cnot).with_error_weight(1.0),
        ] {
            let mut builder = Pipeline::builder()
                .layout(options.layout)
                .router(options.router);
            builder = match options.basis {
                Some(basis) => builder.translate_to(basis),
                None => builder.routing_only(),
            };
            let by_hand = builder.build();
            assert_eq!(Pipeline::from_options(&options), by_hand);
            let converted = Pipeline::from_options(&options).run(&c, &graph);
            let explicit = by_hand.run(&c, &graph);
            assert_eq!(converted.report, explicit.report);
            assert_eq!(
                converted.routed.circuit.instructions(),
                explicit.routed.circuit.instructions()
            );
        }
    }

    #[test]
    fn options_builders() {
        let o = TranspileOptions::with_basis(BasisGate::SqrtISwap).with_seed(99);
        assert_eq!(o.basis, Some(BasisGate::SqrtISwap));
        assert_eq!(o.router.seed, 99);
    }
}
