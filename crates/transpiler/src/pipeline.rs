//! The full transpilation-and-measurement flow of Fig. 10.
//!
//! `Quantum circuit → placement → routing → (count SWAPs) → basis translation
//! → (count 2Q gates)`. The [`TranspileReport`] bundles the four data series
//! the paper collects for every (workload, size, topology, basis) point:
//! total SWAPs, critical-path SWAPs, total 2Q basis gates, and critical-path
//! 2Q basis gates (the pulse-duration proxy).

use crate::layout::LayoutStrategy;
use crate::routing::{route, RoutedCircuit, RouterConfig};
use crate::translate::translate_to_basis;
use snailqc_circuit::Circuit;
use snailqc_decompose::BasisGate;
use snailqc_topology::CouplingGraph;

/// Options controlling the transpilation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TranspileOptions {
    /// Initial-placement strategy (the paper uses dense placement).
    pub layout: LayoutStrategy,
    /// Router configuration.
    pub router: RouterConfig,
    /// Native basis gate for the final translation pass; `None` stops after
    /// routing (used for the gate-agnostic SWAP studies of Figs. 4/11/12).
    pub basis: Option<BasisGate>,
}

impl Default for TranspileOptions {
    fn default() -> Self {
        Self {
            layout: LayoutStrategy::Dense,
            router: RouterConfig::default(),
            basis: None,
        }
    }
}

impl TranspileOptions {
    /// Pipeline options with a basis-translation stage.
    pub fn with_basis(basis: BasisGate) -> Self {
        Self {
            basis: Some(basis),
            ..Self::default()
        }
    }

    /// Overrides the router seed (used to decorrelate sweep points).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.router.seed = seed;
        self
    }

    /// Enables noise-aware routing against the device calibration with the
    /// given fidelity weight (`0` keeps the router noise-blind).
    pub fn with_error_weight(mut self, error_weight: f64) -> Self {
        self.router.error_weight = error_weight;
        self
    }
}

/// The measurements collected by the Fig. 10 flow.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct TranspileReport {
    /// Program qubits.
    pub logical_qubits: usize,
    /// Device qubits.
    pub physical_qubits: usize,
    /// Two-qubit gates in the input circuit (before routing).
    pub input_two_qubit_gates: usize,
    /// SWAP gates inserted by routing.
    pub swap_count: usize,
    /// Critical-path SWAP count after routing.
    pub swap_depth: usize,
    /// Two-qubit gates after routing (input gates + SWAPs).
    pub routed_two_qubit_gates: usize,
    /// Critical-path two-qubit count after routing.
    pub routed_two_qubit_depth: usize,
    /// Basis used for translation, if any.
    pub basis: Option<BasisGate>,
    /// Total basis-gate applications after translation (0 when no basis).
    pub basis_gate_count: usize,
    /// Critical-path basis-gate count — the paper's pulse-duration proxy.
    pub basis_gate_depth: usize,
    /// Fidelity weight the router scored SWAPs with (0 = noise-blind).
    pub error_weight: f64,
    /// `Σ ln(1 − err_e)` over the two-qubit gates of the *routed* circuit,
    /// using the per-edge error rates the router saw. `exp` of this is the
    /// routed circuit's control-channel fidelity at SWAP granularity.
    pub routed_edge_log_fidelity: f64,
    /// `Σ ln(1 − err_e)` over the basis gates of the *translated* circuit
    /// (0 when no basis was requested).
    pub basis_edge_log_fidelity: f64,
}

/// The full output of a pipeline run.
#[derive(Debug, Clone)]
pub struct TranspileResult {
    /// The routed physical circuit (before basis translation).
    pub routed: RoutedCircuit,
    /// The basis-translated circuit, when a basis was requested.
    pub translated: Option<Circuit>,
    /// The collected measurements.
    pub report: TranspileReport,
}

/// Runs placement, routing and (optionally) basis translation of `circuit`
/// onto `graph`, collecting the paper's metrics.
pub fn transpile(
    circuit: &Circuit,
    graph: &CouplingGraph,
    options: &TranspileOptions,
) -> TranspileResult {
    let layout = options.layout.compute(circuit, graph);
    let routed = route(circuit, graph, &layout, &options.router);
    let edge_rate = |a: usize, b: usize| options.router.edge_errors.rate(graph, a, b);

    let mut report = TranspileReport {
        logical_qubits: circuit.num_qubits(),
        physical_qubits: graph.num_qubits(),
        input_two_qubit_gates: circuit.two_qubit_count(),
        swap_count: routed.swap_count,
        swap_depth: routed.swap_depth(),
        routed_two_qubit_gates: routed.circuit.two_qubit_count(),
        routed_two_qubit_depth: routed.circuit.two_qubit_depth(),
        basis: options.basis,
        basis_gate_count: 0,
        basis_gate_depth: 0,
        error_weight: options.router.error_weight,
        routed_edge_log_fidelity: edge_log_fidelity(&routed.circuit, &edge_rate),
        basis_edge_log_fidelity: 0.0,
    };

    let translated = options.basis.map(|basis| {
        let (translated, _) = translate_to_basis(&routed.circuit, basis);
        report.basis_gate_count = translated.two_qubit_count();
        report.basis_gate_depth = translated.two_qubit_depth();
        report.basis_edge_log_fidelity = edge_log_fidelity(&translated, &edge_rate);
        translated
    });

    TranspileResult {
        routed,
        translated,
        report,
    }
}

/// `Σ ln(1 − err_e)` over every two-qubit gate of `circuit`, the log of the
/// circuit's control-channel success probability under per-edge error rates.
fn edge_log_fidelity(circuit: &Circuit, edge_rate: &impl Fn(usize, usize) -> f64) -> f64 {
    circuit
        .instructions()
        .iter()
        .filter(|inst| inst.is_two_qubit())
        .map(|inst| {
            let rate = edge_rate(inst.qubits[0], inst.qubits[1]).clamp(0.0, 0.999_999);
            (1.0 - rate).ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_topology::{builders, catalog};
    use snailqc_workloads::{ghz, qaoa_vanilla, qft};

    #[test]
    fn report_fields_are_consistent() {
        let c = qft(8, true);
        let graph = builders::square_lattice(3, 3);
        let result = transpile(&c, &graph, &TranspileOptions::with_basis(BasisGate::Cnot));
        let r = result.report;
        assert_eq!(r.logical_qubits, 8);
        assert_eq!(r.physical_qubits, 9);
        assert_eq!(r.input_two_qubit_gates, c.two_qubit_count());
        assert_eq!(
            r.routed_two_qubit_gates,
            r.input_two_qubit_gates + r.swap_count
        );
        assert!(r.basis_gate_count >= r.routed_two_qubit_gates);
        assert!(r.basis_gate_depth <= r.basis_gate_count);
        assert!(r.swap_depth <= r.swap_count);
        let translated = result.translated.unwrap();
        assert_eq!(translated.two_qubit_count(), r.basis_gate_count);
    }

    #[test]
    fn no_basis_skips_translation() {
        let c = ghz(6);
        let graph = builders::line(6);
        let result = transpile(&c, &graph, &TranspileOptions::default());
        assert!(result.translated.is_none());
        assert_eq!(result.report.basis_gate_count, 0);
    }

    #[test]
    fn ghz_on_a_line_with_trivial_adjacency_needs_no_swaps() {
        let c = ghz(6);
        let graph = builders::line(6);
        let result = transpile(&c, &graph, &TranspileOptions::default());
        assert_eq!(result.report.swap_count, 0);
    }

    #[test]
    fn corral_beats_heavy_hex_on_qaoa_swaps() {
        // Observation 2 in miniature: the densely connected SNAIL Corral
        // routes an all-to-all QAOA with far fewer SWAPs than heavy-hex.
        let c = qaoa_vanilla(12, 1, 3);
        let corral = catalog::corral11_16();
        let heavy = catalog::heavy_hex_20();
        let opts = TranspileOptions::default();
        let on_corral = transpile(&c, &corral, &opts).report;
        let on_heavy = transpile(&c, &heavy, &opts).report;
        assert!(
            on_corral.swap_count < on_heavy.swap_count,
            "corral {} vs heavy-hex {}",
            on_corral.swap_count,
            on_heavy.swap_count
        );
    }

    #[test]
    fn sqrt_iswap_beats_syc_on_total_gate_count() {
        // Observation 1: for the same routed circuit, the √iSWAP basis never
        // needs more applications than SYC.
        let c = qft(10, true);
        let graph = builders::hypercube(4);
        let siswap = transpile(
            &c,
            &graph,
            &TranspileOptions::with_basis(BasisGate::SqrtISwap),
        );
        let syc = transpile(&c, &graph, &TranspileOptions::with_basis(BasisGate::Syc));
        assert!(siswap.report.basis_gate_count <= syc.report.basis_gate_count);
    }

    #[test]
    fn options_builders() {
        let o = TranspileOptions::with_basis(BasisGate::SqrtISwap).with_seed(99);
        assert_eq!(o.basis, Some(BasisGate::SqrtISwap));
        assert_eq!(o.router.seed, 99);
    }
}
