//! Initial qubit placement (the "Placement" box of Fig. 10).
//!
//! The paper uses Qiskit's `DenseLayout`: program qubits are packed into the
//! most densely connected region of the device so that, before any routing,
//! as many program interactions as possible are already adjacent. A trivial
//! identity layout is also provided for tests and ablations.

use snailqc_circuit::Circuit;
use snailqc_topology::CouplingGraph;

/// A mapping between logical (program) qubits and physical (device) qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    logical_to_physical: Vec<usize>,
    physical_to_logical: Vec<Option<usize>>,
}

impl Layout {
    /// Builds a layout from an explicit logical→physical assignment.
    ///
    /// # Panics
    /// Panics if the assignment is not injective or references a physical
    /// qubit outside the device.
    pub fn new(logical_to_physical: Vec<usize>, num_physical: usize) -> Self {
        let mut physical_to_logical = vec![None; num_physical];
        for (logical, &physical) in logical_to_physical.iter().enumerate() {
            assert!(
                physical < num_physical,
                "physical qubit {physical} out of range"
            );
            assert!(
                physical_to_logical[physical].is_none(),
                "physical qubit {physical} assigned twice"
            );
            physical_to_logical[physical] = Some(logical);
        }
        Self {
            logical_to_physical,
            physical_to_logical,
        }
    }

    /// The identity layout on `n` qubits of an `num_physical`-qubit device.
    pub fn trivial(num_logical: usize, num_physical: usize) -> Self {
        assert!(num_logical <= num_physical);
        Self::new((0..num_logical).collect(), num_physical)
    }

    /// Number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.logical_to_physical.len()
    }

    /// Number of physical qubits.
    pub fn num_physical(&self) -> usize {
        self.physical_to_logical.len()
    }

    /// Physical qubit hosting `logical`.
    pub fn physical(&self, logical: usize) -> usize {
        self.logical_to_physical[logical]
    }

    /// Logical qubit hosted on `physical`, if any.
    pub fn logical(&self, physical: usize) -> Option<usize> {
        self.physical_to_logical[physical]
    }

    /// The full logical→physical vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.logical_to_physical
    }

    /// Swaps the logical occupants of two physical qubits (either or both may
    /// be unoccupied).
    pub fn swap_physical(&mut self, a: usize, b: usize) {
        let la = self.physical_to_logical[a];
        let lb = self.physical_to_logical[b];
        self.physical_to_logical[a] = lb;
        self.physical_to_logical[b] = la;
        if let Some(l) = la {
            self.logical_to_physical[l] = b;
        }
        if let Some(l) = lb {
            self.logical_to_physical[l] = a;
        }
    }
}

/// Strategy for choosing the initial layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum LayoutStrategy {
    /// Logical qubit `i` starts on physical qubit `i`.
    Trivial,
    /// Pack program qubits into the densest connected region of the device
    /// (Qiskit `DenseLayout` analogue), then match busy program qubits to
    /// well-connected physical qubits.
    Dense,
}

impl LayoutStrategy {
    /// Computes the initial layout for `circuit` on `graph`.
    pub fn compute(&self, circuit: &Circuit, graph: &CouplingGraph) -> Layout {
        match self {
            LayoutStrategy::Trivial => Layout::trivial(circuit.num_qubits(), graph.num_qubits()),
            LayoutStrategy::Dense => dense_layout(circuit, graph),
        }
    }
}

/// Greedy densest-subgraph placement.
///
/// For every possible seed qubit, grow a connected set of the required size
/// by repeatedly adding the outside qubit with the most edges into the set;
/// keep the set with the most internal edges. Program qubits are then
/// assigned to the chosen region with the busiest program qubits on the
/// best-connected physical qubits.
pub fn dense_layout(circuit: &Circuit, graph: &CouplingGraph) -> Layout {
    let k = circuit.num_qubits();
    let n = graph.num_qubits();
    assert!(k <= n, "circuit needs {k} qubits but device has only {n}");
    if k == 0 {
        return Layout::new(Vec::new(), n);
    }

    let mut best_set: Option<Vec<usize>> = None;
    let mut best_edges = 0usize;
    for seed in 0..n {
        let mut in_set = vec![false; n];
        let mut set = vec![seed];
        in_set[seed] = true;
        while set.len() < k {
            // Candidate = neighbor of the set with the most edges into it.
            let mut best_candidate = None;
            let mut best_score = 0usize;
            for &member in &set {
                for cand in graph.neighbors(member) {
                    if in_set[cand] {
                        continue;
                    }
                    let score = graph.neighbors(cand).filter(|&x| in_set[x]).count();
                    if score > best_score
                        || (score == best_score && best_candidate.is_none_or(|b: usize| cand < b))
                    {
                        best_score = score;
                        best_candidate = Some(cand);
                    }
                }
            }
            match best_candidate {
                Some(c) => {
                    in_set[c] = true;
                    set.push(c);
                }
                None => break, // disconnected device; give up on this seed
            }
        }
        if set.len() < k {
            continue;
        }
        let internal_edges = graph
            .edges()
            .filter(|&(a, b)| in_set[a] && in_set[b])
            .count();
        if internal_edges > best_edges || best_set.is_none() {
            best_edges = internal_edges;
            best_set = Some(set);
        }
    }
    let mut region = best_set.unwrap_or_else(|| (0..k).collect());

    // Rank physical qubits in the region by connectivity inside the region.
    let in_region: Vec<bool> = {
        let mut v = vec![false; n];
        for &p in &region {
            v[p] = true;
        }
        v
    };
    region.sort_by_key(|&p| {
        let deg = graph.neighbors(p).filter(|&x| in_region[x]).count();
        (std::cmp::Reverse(deg), p)
    });

    // Rank program qubits by how many two-qubit gates touch them.
    let mut usage = vec![0usize; k];
    for inst in circuit.instructions() {
        if inst.is_two_qubit() {
            for &q in &inst.qubits {
                usage[q] += 1;
            }
        }
    }
    let mut logical_order: Vec<usize> = (0..k).collect();
    logical_order.sort_by_key(|&q| (std::cmp::Reverse(usage[q]), q));

    let mut logical_to_physical = vec![0usize; k];
    for (rank, &logical) in logical_order.iter().enumerate() {
        logical_to_physical[logical] = region[rank];
    }
    Layout::new(logical_to_physical, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_topology::builders;

    fn interacting_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n - 1 {
            c.cx(i, i + 1);
        }
        c
    }

    #[test]
    fn trivial_layout_is_identity() {
        let l = Layout::trivial(3, 5);
        assert_eq!(l.as_slice(), &[0, 1, 2]);
        assert_eq!(l.logical(4), None);
        assert_eq!(l.physical(2), 2);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn layout_rejects_duplicates() {
        Layout::new(vec![0, 0], 3);
    }

    #[test]
    fn swap_physical_updates_both_directions() {
        let mut l = Layout::trivial(2, 4);
        l.swap_physical(1, 3);
        assert_eq!(l.physical(1), 3);
        assert_eq!(l.logical(3), Some(1));
        assert_eq!(l.logical(1), None);
        // Swapping two empty physical qubits is a no-op.
        l.swap_physical(1, 2);
        assert_eq!(l.logical(1), None);
        assert_eq!(l.logical(2), None);
    }

    #[test]
    fn dense_layout_is_a_valid_injection() {
        let graph = builders::square_lattice(4, 4);
        let circuit = interacting_circuit(6);
        let layout = dense_layout(&circuit, &graph);
        let mut seen = std::collections::HashSet::new();
        for q in 0..6 {
            assert!(seen.insert(layout.physical(q)));
            assert!(layout.physical(q) < 16);
        }
    }

    #[test]
    fn dense_layout_picks_a_dense_region() {
        // On a star graph, the densest 3-qubit region must include the hub.
        let graph = builders::star(8);
        let circuit = interacting_circuit(3);
        let layout = dense_layout(&circuit, &graph);
        let physical: Vec<usize> = (0..3).map(|q| layout.physical(q)).collect();
        assert!(physical.contains(&0), "hub not selected: {physical:?}");
    }

    #[test]
    fn dense_layout_on_tree_prefers_a_module() {
        // A 5-qubit program on the 20-qubit SNAIL tree should fit in one
        // module (a 5-clique), so every program pair is already adjacent.
        let graph = snailqc_topology::catalog::tree_20();
        let circuit = interacting_circuit(5);
        let layout = dense_layout(&circuit, &graph);
        for a in 0..5 {
            for b in (a + 1)..5 {
                assert!(
                    graph.has_edge(layout.physical(a), layout.physical(b)),
                    "qubits {a},{b} not adjacent"
                );
            }
        }
    }

    #[test]
    fn dense_layout_handles_full_device() {
        let graph = builders::square_lattice(3, 3);
        let circuit = interacting_circuit(9);
        let layout = dense_layout(&circuit, &graph);
        let mut phys: Vec<usize> = (0..9).map(|q| layout.physical(q)).collect();
        phys.sort_unstable();
        assert_eq!(phys, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn strategy_dispatch() {
        let graph = builders::square_lattice(3, 3);
        let circuit = interacting_circuit(4);
        let trivial = LayoutStrategy::Trivial.compute(&circuit, &graph);
        assert_eq!(trivial.as_slice(), &[0, 1, 2, 3]);
        let dense = LayoutStrategy::Dense.compute(&circuit, &graph);
        assert_eq!(dense.num_logical(), 4);
    }
}
