//! Initial qubit placement (the "Placement" box of Fig. 10).
//!
//! The paper uses Qiskit's `DenseLayout`: program qubits are packed into the
//! most densely connected region of the device so that, before any routing,
//! as many program interactions as possible are already adjacent. A trivial
//! identity layout is also provided for tests and ablations.
//!
//! # Scaling
//!
//! On devices up to [`EXHAUSTIVE_SEED_LIMIT`] qubits, [`dense_layout`] tries
//! every qubit as the growth seed — exactly the legacy all-seeds sweep, so
//! its output is bitwise-identical to the pre-kiloqubit implementation and
//! the PR-5 frozen digests hold. Above the limit an exhaustive sweep would
//! be O(n²·E); instead up to [`MAX_SEED_CANDIDATES`] seeds are spread across
//! the connected components large enough to hold the program (largest
//! components first, each contributing its highest-degree qubits from evenly
//! spaced spans), and growth breaks edge-count ties toward qubits discovered
//! closer to the seed. The depth tie-break matters: the legacy lowest-index
//! rule relies on trying every seed to stumble on a compact region, and with
//! few seeds it degenerates into low-index "strips" on lattices (measured
//! ~5× the SWAPs on a 625-qubit grid). Region growth itself is incremental
//! in both regimes: a max-heap keyed by edges-into-the-region picks each
//! addition in O(log E) and the internal-edge count accumulates as the
//! region grows, replacing the legacy per-seed recount of every graph edge.
//!
//! # Disconnected devices
//!
//! Growth never crosses a component boundary, so a layout is only possible
//! when some component holds the whole program. When none does,
//! [`try_dense_layout`] returns a [`LayoutError`] naming the shortfall —
//! the legacy code silently fell back to the `(0..k)` identity prefix,
//! which could straddle components and strand the router on unreachable
//! qubit pairs.

use snailqc_circuit::Circuit;
use snailqc_topology::CouplingGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Largest device (in qubits) on which [`dense_layout`] tries every qubit
/// as a region seed. This keeps every catalog topology (≤ 84 qubits) on the
/// legacy exhaustive path — bitwise-identical output — while kiloqubit
/// devices switch to component-seeded growth.
pub const EXHAUSTIVE_SEED_LIMIT: usize = 84;

/// Cap on the number of growth seeds tried above [`EXHAUSTIVE_SEED_LIMIT`],
/// spread across the connected components that can hold the program
/// (largest components first).
pub const MAX_SEED_CANDIDATES: usize = 16;

/// A mapping between logical (program) qubits and physical (device) qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    logical_to_physical: Vec<usize>,
    physical_to_logical: Vec<Option<usize>>,
}

impl Layout {
    /// Builds a layout from an explicit logical→physical assignment.
    ///
    /// # Panics
    /// Panics if the assignment is not injective or references a physical
    /// qubit outside the device.
    pub fn new(logical_to_physical: Vec<usize>, num_physical: usize) -> Self {
        let mut physical_to_logical = vec![None; num_physical];
        for (logical, &physical) in logical_to_physical.iter().enumerate() {
            assert!(
                physical < num_physical,
                "physical qubit {physical} out of range"
            );
            assert!(
                physical_to_logical[physical].is_none(),
                "physical qubit {physical} assigned twice"
            );
            physical_to_logical[physical] = Some(logical);
        }
        Self {
            logical_to_physical,
            physical_to_logical,
        }
    }

    /// The identity layout on `n` qubits of an `num_physical`-qubit device.
    pub fn trivial(num_logical: usize, num_physical: usize) -> Self {
        assert!(num_logical <= num_physical);
        Self::new((0..num_logical).collect(), num_physical)
    }

    /// Number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.logical_to_physical.len()
    }

    /// Number of physical qubits.
    pub fn num_physical(&self) -> usize {
        self.physical_to_logical.len()
    }

    /// Physical qubit hosting `logical`.
    pub fn physical(&self, logical: usize) -> usize {
        self.logical_to_physical[logical]
    }

    /// Logical qubit hosted on `physical`, if any.
    pub fn logical(&self, physical: usize) -> Option<usize> {
        self.physical_to_logical[physical]
    }

    /// The full logical→physical vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.logical_to_physical
    }

    /// Swaps the logical occupants of two physical qubits (either or both may
    /// be unoccupied).
    pub fn swap_physical(&mut self, a: usize, b: usize) {
        let la = self.physical_to_logical[a];
        let lb = self.physical_to_logical[b];
        self.physical_to_logical[a] = lb;
        self.physical_to_logical[b] = la;
        if let Some(l) = la {
            self.logical_to_physical[l] = b;
        }
        if let Some(l) = lb {
            self.logical_to_physical[l] = a;
        }
    }
}

/// Why an initial layout could not be computed: the program does not fit in
/// any single connected component of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayoutError {
    /// Logical qubits the circuit needs.
    pub requested: usize,
    /// Size of the device's largest connected component.
    pub largest_component: usize,
    /// Number of connected components the device has.
    pub components: usize,
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "circuit needs {} qubits but the largest connected component of the \
             device has only {} (device has {} component{})",
            self.requested,
            self.largest_component,
            self.components,
            if self.components == 1 { "" } else { "s" }
        )
    }
}

impl std::error::Error for LayoutError {}

/// Strategy for choosing the initial layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum LayoutStrategy {
    /// Logical qubit `i` starts on physical qubit `i`.
    Trivial,
    /// Pack program qubits into the densest connected region of the device
    /// (Qiskit `DenseLayout` analogue), then match busy program qubits to
    /// well-connected physical qubits.
    Dense,
}

impl LayoutStrategy {
    /// Computes the initial layout for `circuit` on `graph`.
    ///
    /// # Panics
    /// Panics where [`LayoutStrategy::try_compute`] would return an error.
    pub fn compute(&self, circuit: &Circuit, graph: &CouplingGraph) -> Layout {
        self.try_compute(circuit, graph)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Computes the initial layout for `circuit` on `graph`, reporting a
    /// [`LayoutError`] when the program does not fit in a single connected
    /// component (instead of handing the router an unroutable placement).
    pub fn try_compute(
        &self,
        circuit: &Circuit,
        graph: &CouplingGraph,
    ) -> Result<Layout, LayoutError> {
        match self {
            LayoutStrategy::Trivial => {
                let k = circuit.num_qubits();
                let n = graph.num_qubits();
                if k > n {
                    return Err(LayoutError {
                        requested: k,
                        largest_component: n,
                        components: 1,
                    });
                }
                Ok(Layout::trivial(k, n))
            }
            LayoutStrategy::Dense => try_dense_layout(circuit, graph),
        }
    }
}

/// Greedy densest-subgraph placement. See [`try_dense_layout`].
///
/// # Panics
/// Panics where [`try_dense_layout`] would return an error.
pub fn dense_layout(circuit: &Circuit, graph: &CouplingGraph) -> Layout {
    try_dense_layout(circuit, graph).unwrap_or_else(|e| panic!("{e}"))
}

/// Greedy densest-subgraph placement.
///
/// For each seed qubit (every qubit up to [`EXHAUSTIVE_SEED_LIMIT`] devices,
/// up to [`MAX_SEED_CANDIDATES`] component-spread seeds beyond), grow a
/// connected set of the required size by repeatedly adding the outside qubit
/// with the most edges into the set; keep the set with the most internal
/// edges. Program qubits are then assigned to the chosen region with the
/// busiest program qubits on the best-connected physical qubits.
///
/// # Errors
/// Returns a [`LayoutError`] when no connected component of the device can
/// hold the whole program (including the `k > n` case).
pub fn try_dense_layout(circuit: &Circuit, graph: &CouplingGraph) -> Result<Layout, LayoutError> {
    let k = circuit.num_qubits();
    let n = graph.num_qubits();
    if k == 0 {
        return Ok(Layout::new(Vec::new(), n));
    }

    let mut grower = RegionGrower::new(n);
    let mut best_set: Option<Vec<usize>> = None;
    let mut best_edges = 0usize;
    let mut try_seed = |seed: usize, compact: bool, grower: &mut RegionGrower| {
        if let Some((set, internal_edges)) = grower.grow(graph, seed, k, compact) {
            if internal_edges > best_edges || best_set.is_none() {
                best_edges = internal_edges;
                best_set = Some(set);
            }
        }
    };
    if n <= EXHAUSTIVE_SEED_LIMIT {
        // Legacy all-seeds sweep: bitwise-identical region choice.
        for seed in 0..n {
            try_seed(seed, false, &mut grower);
        }
    } else {
        for seed in spread_seeds(graph, k) {
            try_seed(seed, true, &mut grower);
        }
    }

    let Some(mut region) = best_set else {
        // No seed grew to size k: the program straddles every component.
        let components = graph.connected_components();
        return Err(LayoutError {
            requested: k,
            largest_component: components.first().map_or(0, |m| m.len()),
            components: components.len().max(1),
        });
    };

    // Rank physical qubits in the region by connectivity inside the region.
    let in_region: Vec<bool> = {
        let mut v = vec![false; n];
        for &p in &region {
            v[p] = true;
        }
        v
    };
    region.sort_by_key(|&p| {
        let deg = graph.neighbors(p).filter(|&x| in_region[x]).count();
        (Reverse(deg), p)
    });

    // Rank program qubits by how many two-qubit gates touch them.
    let mut usage = vec![0usize; k];
    for inst in circuit.instructions() {
        if inst.is_two_qubit() {
            for &q in &inst.qubits {
                usage[q] += 1;
            }
        }
    }
    let mut logical_order: Vec<usize> = (0..k).collect();
    logical_order.sort_by_key(|&q| (Reverse(usage[q]), q));

    let mut logical_to_physical = vec![0usize; k];
    for (rank, &logical) in logical_order.iter().enumerate() {
        logical_to_physical[logical] = region[rank];
    }
    Ok(Layout::new(logical_to_physical, n))
}

/// Picks up to [`MAX_SEED_CANDIDATES`] growth seeds on a large device:
/// every connected component that can hold a `k`-qubit program (largest
/// first) contributes seeds from evenly spaced spans of its index-sorted
/// members, each span seeding from its highest-degree qubit (lowest index
/// on degree ties). Spreading the spans keeps the seeds structurally
/// diverse — on a lattice they land in different rows instead of all
/// clustering at the low-index corner — so the best-of-seeds pass still
/// compares genuinely different regions. Returns an empty vector when no
/// component fits.
fn spread_seeds(graph: &CouplingGraph, k: usize) -> Vec<usize> {
    let eligible: Vec<Vec<usize>> = graph
        .connected_components()
        .into_iter()
        .filter(|members| members.len() >= k)
        .collect();
    let mut seeds = Vec::new();
    if eligible.is_empty() {
        return seeds;
    }
    let quota = (MAX_SEED_CANDIDATES / eligible.len()).max(1);
    for members in &eligible {
        let spans = quota.min(members.len());
        for j in 0..spans {
            let lo = j * members.len() / spans;
            let hi = ((j + 1) * members.len() / spans).max(lo + 1);
            let seed = members[lo..hi]
                .iter()
                .copied()
                .max_by_key(|&q| (graph.degree(q), Reverse(q)))
                .expect("spans are non-empty");
            seeds.push(seed);
            if seeds.len() == MAX_SEED_CANDIDATES {
                return seeds;
            }
        }
    }
    seeds
}

/// Reusable scratch state for greedy region growth: grows a connected set
/// from a seed, always adding the outside qubit with the most edges into the
/// set, while accumulating the region's internal edge count incrementally.
///
/// Edge-count ties break two ways. The legacy rule (`compact = false`, the
/// exhaustive ≤[`EXHAUSTIVE_SEED_LIMIT`] path) takes the lowest index —
/// bitwise-identical to the pre-kiloqubit implementation. The compact rule
/// (`compact = true`, the capped-seeds path) prefers the qubit discovered at
/// the smallest BFS depth from the seed, then the lowest index: with only a
/// handful of seeds the lowest-index rule walks lattices into long low-index
/// strips, while the depth tie-break keeps the region a ball around the
/// seed.
///
/// The heap holds `(edges-into-set, Reverse(depth), Reverse(qubit))`
/// entries with lazy invalidation: a popped entry is live only if its qubit
/// is still outside the set and its score matches the current counter (each
/// increment pushes a fresh entry, so the newest — highest — score is the
/// live one; a qubit's discovery depth never changes). On the legacy path
/// every entry carries depth 0, collapsing the ordering to the legacy "max
/// score, min index" choice, found in O(log E) instead of rescanning the
/// whole boundary per addition.
struct RegionGrower {
    in_set: Vec<bool>,
    edges_into: Vec<usize>,
    depth: Vec<u32>,
    heap: BinaryHeap<(usize, Reverse<u32>, Reverse<usize>)>,
    set: Vec<usize>,
}

impl RegionGrower {
    fn new(n: usize) -> Self {
        Self {
            in_set: vec![false; n],
            edges_into: vec![0; n],
            depth: vec![0; n],
            heap: BinaryHeap::new(),
            set: Vec::new(),
        }
    }

    /// Grows a size-`k` connected set from `seed`; returns the set (in
    /// growth order) and its internal edge count, or `None` when the seed's
    /// component has fewer than `k` qubits.
    fn grow(
        &mut self,
        graph: &CouplingGraph,
        seed: usize,
        k: usize,
        compact: bool,
    ) -> Option<(Vec<usize>, usize)> {
        self.set.push(seed);
        self.in_set[seed] = true;
        for nb in graph.neighbors(seed) {
            self.edges_into[nb] += 1;
            if compact {
                self.depth[nb] = 1;
            }
            self.heap
                .push((self.edges_into[nb], Reverse(self.depth[nb]), Reverse(nb)));
        }
        let mut internal_edges = 0usize;
        while self.set.len() < k {
            let mut live = None;
            while let Some((score, _, Reverse(cand))) = self.heap.pop() {
                if !self.in_set[cand] && self.edges_into[cand] == score {
                    live = Some((cand, score));
                    break;
                }
            }
            let Some((cand, score)) = live else {
                break; // boundary exhausted: component smaller than k
            };
            self.set.push(cand);
            self.in_set[cand] = true;
            internal_edges += score;
            for nb in graph.neighbors(cand) {
                if !self.in_set[nb] {
                    let first_discovery = self.edges_into[nb] == 0;
                    self.edges_into[nb] += 1;
                    if compact && first_discovery {
                        self.depth[nb] = self.depth[cand] + 1;
                    }
                    self.heap
                        .push((self.edges_into[nb], Reverse(self.depth[nb]), Reverse(nb)));
                }
            }
        }
        let grown = self.set.len() == k;
        let result = grown.then(|| (self.set.clone(), internal_edges));
        // Reset only what this growth touched, so a failed seed on a huge
        // device costs its component size, not O(n).
        for i in 0..self.set.len() {
            let member = self.set[i];
            self.in_set[member] = false;
            self.edges_into[member] = 0;
            self.depth[member] = 0;
            for nb in graph.neighbors(member) {
                self.edges_into[nb] = 0;
                self.depth[nb] = 0;
            }
        }
        self.set.clear();
        self.heap.clear();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_topology::builders;

    fn interacting_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n - 1 {
            c.cx(i, i + 1);
        }
        c
    }

    #[test]
    fn trivial_layout_is_identity() {
        let l = Layout::trivial(3, 5);
        assert_eq!(l.as_slice(), &[0, 1, 2]);
        assert_eq!(l.logical(4), None);
        assert_eq!(l.physical(2), 2);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn layout_rejects_duplicates() {
        Layout::new(vec![0, 0], 3);
    }

    #[test]
    fn swap_physical_updates_both_directions() {
        let mut l = Layout::trivial(2, 4);
        l.swap_physical(1, 3);
        assert_eq!(l.physical(1), 3);
        assert_eq!(l.logical(3), Some(1));
        assert_eq!(l.logical(1), None);
        // Swapping two empty physical qubits is a no-op.
        l.swap_physical(1, 2);
        assert_eq!(l.logical(1), None);
        assert_eq!(l.logical(2), None);
    }

    #[test]
    fn dense_layout_is_a_valid_injection() {
        let graph = builders::square_lattice(4, 4);
        let circuit = interacting_circuit(6);
        let layout = dense_layout(&circuit, &graph);
        let mut seen = std::collections::HashSet::new();
        for q in 0..6 {
            assert!(seen.insert(layout.physical(q)));
            assert!(layout.physical(q) < 16);
        }
    }

    #[test]
    fn dense_layout_picks_a_dense_region() {
        // On a star graph, the densest 3-qubit region must include the hub.
        let graph = builders::star(8);
        let circuit = interacting_circuit(3);
        let layout = dense_layout(&circuit, &graph);
        let physical: Vec<usize> = (0..3).map(|q| layout.physical(q)).collect();
        assert!(physical.contains(&0), "hub not selected: {physical:?}");
    }

    #[test]
    fn dense_layout_on_tree_prefers_a_module() {
        // A 5-qubit program on the 20-qubit SNAIL tree should fit in one
        // module (a 5-clique), so every program pair is already adjacent.
        let graph = snailqc_topology::catalog::tree_20();
        let circuit = interacting_circuit(5);
        let layout = dense_layout(&circuit, &graph);
        for a in 0..5 {
            for b in (a + 1)..5 {
                assert!(
                    graph.has_edge(layout.physical(a), layout.physical(b)),
                    "qubits {a},{b} not adjacent"
                );
            }
        }
    }

    #[test]
    fn dense_layout_handles_full_device() {
        let graph = builders::square_lattice(3, 3);
        let circuit = interacting_circuit(9);
        let layout = dense_layout(&circuit, &graph);
        let mut phys: Vec<usize> = (0..9).map(|q| layout.physical(q)).collect();
        phys.sort_unstable();
        assert_eq!(phys, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn dense_layout_on_disconnected_device_uses_one_component() {
        // Two islands: a 3×3 grid (qubits 0..9) and a 2-path (9, 10). A
        // 6-qubit program must land entirely inside the grid.
        let mut graph = CouplingGraph::new("islands", 11);
        for (a, b) in builders::square_lattice(3, 3).edges() {
            graph.add_edge(a, b);
        }
        graph.add_edge(9, 10);
        let circuit = interacting_circuit(6);
        let layout = try_dense_layout(&circuit, &graph).expect("6 qubits fit the 9-qubit grid");
        for q in 0..6 {
            assert!(layout.physical(q) < 9, "logical {q} strayed off the grid");
        }
    }

    #[test]
    fn dense_layout_errors_when_no_component_fits() {
        let graph = CouplingGraph::from_edges("islands", 6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let circuit = interacting_circuit(4);
        let err = try_dense_layout(&circuit, &graph).unwrap_err();
        assert_eq!(err.requested, 4);
        assert_eq!(err.largest_component, 3);
        assert_eq!(err.components, 2);
        assert!(err.to_string().contains("largest connected component"));
    }

    #[test]
    fn dense_layout_errors_when_device_too_small() {
        let graph = builders::line(3);
        let circuit = interacting_circuit(5);
        let err = try_dense_layout(&circuit, &graph).unwrap_err();
        assert_eq!(err.requested, 5);
        assert_eq!(err.largest_component, 3);
    }

    #[test]
    #[should_panic(expected = "largest connected component")]
    fn dense_layout_panicking_wrapper_reports_the_error() {
        let graph = CouplingGraph::from_edges("islands", 4, &[(0, 1), (2, 3)]);
        dense_layout(&interacting_circuit(3), &graph);
    }

    #[test]
    fn component_seeded_path_matches_exhaustive_on_a_connected_device() {
        // Same device twice: once under the exhaustive limit (grown per
        // seed), once forced down the component-seeded path by embedding it
        // unchanged in a graph that is above the limit only nominally. On a
        // connected device the component path seeds from the single
        // highest-degree qubit; the chosen region must still be a densest
        // region (every program pair adjacent on a tree module).
        let graph = snailqc_topology::catalog::tree_84();
        assert!(graph.num_qubits() <= EXHAUSTIVE_SEED_LIMIT);
        let circuit = interacting_circuit(5);
        let exhaustive = try_dense_layout(&circuit, &graph).unwrap();
        assert_eq!(exhaustive.num_logical(), 5);
        // 85-qubit variant: the 84q tree plus one dangling qubit attached to
        // qubit 0 — now over the limit, so the component path runs.
        let mut big = CouplingGraph::new("tree-85", 85);
        for (a, b) in graph.edges() {
            big.add_edge(a, b);
        }
        big.add_edge(0, 84);
        let seeded = try_dense_layout(&circuit, &big).unwrap();
        let mut phys: Vec<usize> = (0..5).map(|q| seeded.physical(q)).collect();
        phys.sort_unstable();
        assert_eq!(phys.len(), 5);
        for q in phys {
            assert!(q < 85);
        }
    }

    #[test]
    fn try_compute_trivial_rejects_oversized_programs() {
        let graph = builders::line(3);
        let err = LayoutStrategy::Trivial
            .try_compute(&interacting_circuit(4), &graph)
            .unwrap_err();
        assert_eq!(err.requested, 4);
    }

    #[test]
    fn strategy_dispatch() {
        let graph = builders::square_lattice(3, 3);
        let circuit = interacting_circuit(4);
        let trivial = LayoutStrategy::Trivial.compute(&circuit, &graph);
        assert_eq!(trivial.as_slice(), &[0, 1, 2, 3]);
        let dense = LayoutStrategy::Dense.compute(&circuit, &graph);
        assert_eq!(dense.num_logical(), 4);
    }
}
