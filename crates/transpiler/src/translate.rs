//! Basis translation (the "Basis Translation" box of Fig. 10).
//!
//! After routing, every two-qubit gate is rewritten into the machine's native
//! basis gate (CNOT for CR, SYC for FSIM, √iSWAP for the SNAIL) using the
//! analytic Weyl-chamber counting rules of [`snailqc_decompose::BasisGate`].
//! The pass is *structural*: it expands each two-qubit gate into exactly the
//! required number of basis-gate applications, which is what the paper's
//! metrics (total 2Q count and critical-path 2Q count / pulse duration)
//! measure; the interleaved single-qubit corrections are treated as free
//! (§3.1) and can be synthesized exactly on demand with
//! [`snailqc_decompose::NuOpDecomposer`].

use snailqc_circuit::Circuit;
use snailqc_decompose::BasisGate;

/// Summary of one basis-translation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct TranslationStats {
    /// Number of two-qubit gates before translation.
    pub input_two_qubit_gates: usize,
    /// Number of basis-gate applications emitted.
    pub output_basis_gates: usize,
    /// Number of input gates that were already native (one application).
    pub native_gates: usize,
}

/// Translates every two-qubit gate of `circuit` into `basis` applications.
///
/// Single-qubit gates are passed through unchanged. Returns the translated
/// circuit and per-pass statistics.
pub fn translate_to_basis(circuit: &Circuit, basis: BasisGate) -> (Circuit, TranslationStats) {
    let mut out = Circuit::new(circuit.num_qubits());
    let mut stats = TranslationStats {
        input_two_qubit_gates: 0,
        output_basis_gates: 0,
        native_gates: 0,
    };
    for inst in circuit.instructions() {
        if !inst.is_two_qubit() {
            out.push(inst.gate.clone(), &inst.qubits);
            continue;
        }
        stats.input_two_qubit_gates += 1;
        let count = basis.count_for_gate(&inst.gate);
        if count == 1 {
            stats.native_gates += 1;
        }
        for _ in 0..count {
            out.push(basis.gate(), &inst.qubits);
            stats.output_basis_gates += 1;
        }
    }
    (out, stats)
}

/// Convenience: the total number of basis gates a circuit needs without
/// materializing the translated circuit.
pub fn count_basis_gates(circuit: &Circuit, basis: BasisGate) -> usize {
    circuit
        .instructions()
        .iter()
        .filter(|i| i.is_two_qubit())
        .map(|i| basis.count_for_gate(&i.gate))
        .sum()
}

/// Critical-path basis-gate count (the paper's pulse-duration proxy): the
/// longest dependency chain where each two-qubit gate contributes its basis
/// decomposition length and single-qubit gates are free.
pub fn critical_path_basis_gates(circuit: &Circuit, basis: BasisGate) -> usize {
    circuit
        .weighted_depth(|inst| {
            if inst.is_two_qubit() {
                basis.count_for_gate(&inst.gate) as f64
            } else {
                0.0
            }
        })
        .round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_circuit::Circuit;
    use snailqc_workloads::{ghz, qft};

    #[test]
    fn ghz_translates_one_to_two_in_sqrt_iswap() {
        let c = ghz(5);
        let (out, stats) = translate_to_basis(&c, BasisGate::SqrtISwap);
        // Each CNOT becomes two √iSWAPs.
        assert_eq!(stats.input_two_qubit_gates, 4);
        assert_eq!(stats.output_basis_gates, 8);
        assert_eq!(out.two_qubit_count(), 8);
        assert_eq!(out.gate_counts()["siswap"], 8);
    }

    #[test]
    fn ghz_is_native_in_cnot_basis() {
        let c = ghz(5);
        let (out, stats) = translate_to_basis(&c, BasisGate::Cnot);
        assert_eq!(stats.output_basis_gates, 4);
        assert_eq!(stats.native_gates, 4);
        assert_eq!(out.two_qubit_count(), 4);
    }

    #[test]
    fn swaps_cost_three_in_both_main_bases() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        for basis in [BasisGate::Cnot, BasisGate::SqrtISwap] {
            let (out, _) = translate_to_basis(&c, basis);
            assert_eq!(out.two_qubit_count(), 3, "{}", basis.label());
        }
        let (out, _) = translate_to_basis(&c, BasisGate::Syc);
        assert_eq!(out.two_qubit_count(), 4);
    }

    #[test]
    fn qft_counts_follow_per_gate_rules() {
        // QFT's controlled-phase gates are all two-CNOT-class; its SWAPs are
        // three-of-anything.
        let n = 6;
        let c = qft(n, true);
        let cp_gates = n * (n - 1) / 2;
        let swaps = n / 2;
        assert_eq!(
            count_basis_gates(&c, BasisGate::Cnot),
            2 * cp_gates + 3 * swaps
        );
        assert_eq!(
            count_basis_gates(&c, BasisGate::SqrtISwap),
            2 * cp_gates + 3 * swaps
        );
        assert_eq!(
            count_basis_gates(&c, BasisGate::Syc),
            3 * cp_gates + 4 * swaps
        );
    }

    #[test]
    fn single_qubit_gates_pass_through() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.rz(0.3, 1);
        c.cx(0, 1);
        let (out, _) = translate_to_basis(&c, BasisGate::SqrtISwap);
        let counts = out.gate_counts();
        assert_eq!(counts["h"], 1);
        assert_eq!(counts["rz"], 1);
        assert!(!counts.contains_key("cx"));
    }

    #[test]
    fn critical_path_counts_weight_two_qubit_chains() {
        // Two parallel CNOTs then one dependent CNOT: critical path = 2 CNOTs
        // = 4 √iSWAPs.
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        c.cx(1, 2);
        assert_eq!(critical_path_basis_gates(&c, BasisGate::Cnot), 2);
        assert_eq!(critical_path_basis_gates(&c, BasisGate::SqrtISwap), 4);
        let (out, _) = translate_to_basis(&c, BasisGate::SqrtISwap);
        assert_eq!(out.two_qubit_depth(), 4);
    }

    #[test]
    fn count_helper_matches_full_translation() {
        let c = qft(7, true);
        for basis in BasisGate::all() {
            let (out, stats) = translate_to_basis(&c, basis);
            assert_eq!(out.two_qubit_count(), count_basis_gates(&c, basis));
            assert_eq!(stats.output_basis_gates, out.two_qubit_count());
        }
    }
}
