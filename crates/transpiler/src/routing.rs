//! SWAP routing (the "Routing" box of Fig. 10).
//!
//! The paper routes with Qiskit's `StochasticSwap`; we implement a
//! SABRE-style lookahead router with randomized tie-breaking and a
//! best-of-`trials` outer loop, which reproduces the same behaviour at the
//! granularity the study measures: the number of SWAP gates induced by a
//! topology, in total and on the critical path.

use crate::layout::Layout;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use snailqc_circuit::{Circuit, Gate, Instruction};
use snailqc_topology::CouplingGraph;

/// The result of routing a logical circuit onto a device.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The physical circuit: original gates remapped to physical qubits plus
    /// inserted SWAP gates. Defined on the device register.
    pub circuit: Circuit,
    /// Layout before the first gate.
    pub initial_layout: Layout,
    /// Layout after the last gate (SWAPs permute the mapping).
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
}

impl RoutedCircuit {
    /// Critical-path SWAP count of the routed circuit.
    pub fn swap_depth(&self) -> usize {
        self.circuit.swap_depth()
    }

    /// Total two-qubit gate count of the routed circuit (original 2Q gates
    /// plus inserted SWAPs).
    pub fn two_qubit_count(&self) -> usize {
        self.circuit.two_qubit_count()
    }
}

/// Configuration of the stochastic lookahead router.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct RouterConfig {
    /// Number of independent randomized routing attempts; the attempt with
    /// the fewest SWAPs wins (mirrors `StochasticSwap`'s trials).
    pub trials: usize,
    /// Size of the lookahead window used in the SWAP scoring heuristic.
    pub lookahead: usize,
    /// Weight of the lookahead term relative to the front layer.
    pub lookahead_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            trials: 4,
            lookahead: 20,
            lookahead_weight: 0.5,
            seed: 11,
        }
    }
}

impl RouterConfig {
    /// A deterministic single-trial configuration (useful in tests).
    pub fn deterministic(seed: u64) -> Self {
        Self {
            trials: 1,
            lookahead: 20,
            lookahead_weight: 0.5,
            seed,
        }
    }
}

/// Routes `circuit` onto `graph` starting from `initial_layout`, inserting
/// SWAP gates wherever a two-qubit gate acts on non-adjacent physical qubits.
///
/// # Panics
/// Panics if the device has fewer qubits than the circuit or the graph is
/// disconnected.
pub fn route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &Layout,
    config: &RouterConfig,
) -> RoutedCircuit {
    assert!(
        circuit.num_qubits() <= graph.num_qubits(),
        "device too small"
    );
    assert!(graph.is_connected(), "coupling graph must be connected");
    let dist = graph.distance_matrix();

    let mut best: Option<RoutedCircuit> = None;
    for trial in 0..config.trials.max(1) {
        let seed = config
            .seed
            .wrapping_add(trial as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let candidate = route_once(circuit, graph, initial_layout, &dist, config, seed);
        let better = match &best {
            None => true,
            Some(b) => candidate.swap_count < b.swap_count,
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("at least one routing trial")
}

fn route_once(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &Layout,
    dist: &[Vec<usize>],
    config: &RouterConfig,
    seed: u64,
) -> RoutedCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let instructions = circuit.instructions();
    let total = instructions.len();

    // Dependency DAG via per-qubit predecessor chains.
    let mut in_degree = vec![0usize; total];
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); total];
    {
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (idx, inst) in instructions.iter().enumerate() {
            for &q in &inst.qubits {
                if let Some(prev) = last_on_qubit[q] {
                    successors[prev].push(idx);
                    in_degree[idx] += 1;
                }
                last_on_qubit[q] = Some(idx);
            }
        }
    }

    let mut front: Vec<usize> = (0..total).filter(|&i| in_degree[i] == 0).collect();
    let mut layout = initial_layout.clone();
    let mut out = Circuit::new(graph.num_qubits());
    let mut executed = vec![false; total];
    let mut executed_count = 0usize;
    let mut swap_count = 0usize;
    let mut decay = vec![1.0f64; graph.num_qubits()];
    let mut swaps_since_progress = 0usize;

    while executed_count < total {
        // 1. Execute every front instruction that is currently executable.
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut next_front = Vec::with_capacity(front.len());
            for &idx in &front {
                let inst = &instructions[idx];
                let executable = match inst.qubits.len() {
                    1 => true,
                    _ => {
                        let a = layout.physical(inst.qubits[0]);
                        let b = layout.physical(inst.qubits[1]);
                        graph.has_edge(a, b)
                    }
                };
                if executable {
                    emit_mapped(&mut out, inst, &layout);
                    executed[idx] = true;
                    executed_count += 1;
                    progressed = true;
                    swaps_since_progress = 0;
                    for &succ in &successors[idx] {
                        in_degree[succ] -= 1;
                        if in_degree[succ] == 0 {
                            next_front.push(succ);
                        }
                    }
                } else {
                    next_front.push(idx);
                }
            }
            front = next_front;
            if progressed {
                decay.iter_mut().for_each(|d| *d = 1.0);
            }
        }
        if executed_count == total {
            break;
        }

        // 2. No front gate is executable: insert the best-scoring SWAP.
        let blocked: Vec<(usize, usize)> = front
            .iter()
            .filter(|&&i| instructions[i].qubits.len() == 2)
            .map(|&i| {
                (
                    layout.physical(instructions[i].qubits[0]),
                    layout.physical(instructions[i].qubits[1]),
                )
            })
            .collect();
        debug_assert!(
            !blocked.is_empty(),
            "router stalled with no blocked 2Q gate"
        );

        // Lookahead set: the next pending two-qubit gates in program order.
        let lookahead: Vec<(usize, usize)> = instructions
            .iter()
            .enumerate()
            .filter(|(i, inst)| !executed[*i] && inst.qubits.len() == 2 && !front.contains(i))
            .take(config.lookahead)
            .map(|(_, inst)| (inst.qubits[0], inst.qubits[1]))
            .collect();

        // Candidate SWAPs: every edge touching a physical qubit involved in a
        // blocked front gate.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in &blocked {
            for p in [a, b] {
                for q in graph.neighbors(p) {
                    let e = (p.min(q), p.max(q));
                    if !candidates.contains(&e) {
                        candidates.push(e);
                    }
                }
            }
        }

        let score_layout = |layout: &Layout| -> (f64, f64) {
            let front_cost: f64 = front
                .iter()
                .filter(|&&i| instructions[i].qubits.len() == 2)
                .map(|&i| {
                    let a = layout.physical(instructions[i].qubits[0]);
                    let b = layout.physical(instructions[i].qubits[1]);
                    dist[a][b] as f64
                })
                .sum();
            let look_cost: f64 = lookahead
                .iter()
                .map(|&(la, lb)| dist[layout.physical(la)][layout.physical(lb)] as f64)
                .sum();
            (front_cost, look_cost)
        };

        let mut best_swap = candidates[0];
        let mut best_score = f64::INFINITY;
        for &(p, q) in &candidates {
            let mut trial_layout = layout.clone();
            trial_layout.swap_physical(p, q);
            let (front_cost, look_cost) = score_layout(&trial_layout);
            let mut score = front_cost + config.lookahead_weight * look_cost;
            score *= decay[p].max(decay[q]);
            // Randomized tie-breaking keeps trials diverse (StochasticSwap).
            score += rng.gen::<f64>() * 1e-6;
            if score < best_score {
                best_score = score;
                best_swap = (p, q);
            }
        }

        // Fallback: if the heuristic has stalled for too long, walk the first
        // blocked gate together along a shortest path (guarantees progress).
        swaps_since_progress += 1;
        if swaps_since_progress > 4 * graph.num_qubits() {
            let (a, b) = blocked[0];
            let path = graph.shortest_path(a, b).expect("connected graph");
            best_swap = (path[0], path[1]);
        }

        let (p, q) = best_swap;
        out.push(Gate::Swap, &[p, q]);
        layout.swap_physical(p, q);
        swap_count += 1;
        decay[p] += 0.001;
        decay[q] += 0.001;
    }

    RoutedCircuit {
        circuit: out,
        initial_layout: initial_layout.clone(),
        final_layout: layout,
        swap_count,
    }
}

fn emit_mapped(out: &mut Circuit, inst: &Instruction, layout: &Layout) {
    let physical: Vec<usize> = inst.qubits.iter().map(|&q| layout.physical(q)).collect();
    out.push(inst.gate.clone(), &physical);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutStrategy;
    use snailqc_circuit::simulate;
    use snailqc_topology::builders;
    use snailqc_workloads::{qft, quantum_volume};

    fn route_with(
        circuit: &Circuit,
        graph: &CouplingGraph,
        strategy: LayoutStrategy,
        seed: u64,
    ) -> RoutedCircuit {
        let layout = strategy.compute(circuit, graph);
        route(
            circuit,
            graph,
            &layout,
            &RouterConfig {
                seed,
                ..RouterConfig::default()
            },
        )
    }

    /// Checks that the routed circuit implements the original circuit up to
    /// the tracked qubit permutation (statevector comparison).
    fn assert_semantics_preserved(original: &Circuit, routed: &RoutedCircuit) {
        assert_eq!(
            original.num_qubits(),
            routed.circuit.num_qubits(),
            "use equal-size device"
        );
        let sv_original = simulate(original);
        let sv_routed = simulate(&routed.circuit);
        // Physical qubit p holds logical qubit final_layout.logical(p); map it
        // back so the two states are expressed over logical qubits. Before
        // the circuit begins every qubit is |0⟩, so the initial layout does
        // not affect the all-zeros input state.
        let perm: Vec<usize> = (0..routed.circuit.num_qubits())
            .map(|p| routed.final_layout.logical(p).unwrap_or(p))
            .collect();
        let sv_logical = sv_routed.permute_qubits(&perm);
        let fidelity = sv_original.fidelity(&sv_logical);
        assert!(
            fidelity > 1.0 - 1e-7,
            "routing broke semantics: fidelity {fidelity}"
        );
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let graph = builders::line(4);
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(2, 3);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 1);
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.len(), c.len());
    }

    #[test]
    fn distant_gate_on_a_line_needs_swaps() {
        let graph = builders::line(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 2);
        // Distance 4 ⇒ at least 3 SWAPs with a trivial layout.
        assert!(routed.swap_count >= 3, "swaps = {}", routed.swap_count);
        assert_semantics_preserved(&c, &routed);
    }

    #[test]
    fn routed_gates_always_touch_adjacent_qubits() {
        let graph = builders::square_lattice(3, 3);
        let c = qft(9, true);
        let routed = route_with(&c, &graph, LayoutStrategy::Dense, 3);
        for inst in routed.circuit.instructions() {
            if inst.is_two_qubit() {
                assert!(
                    graph.has_edge(inst.qubits[0], inst.qubits[1]),
                    "gate on non-adjacent qubits {:?}",
                    inst.qubits
                );
            }
        }
    }

    #[test]
    fn routing_preserves_semantics_on_lattice() {
        let graph = builders::square_lattice(2, 3);
        let c = qft(6, true);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 4);
        assert_semantics_preserved(&c, &routed);
    }

    #[test]
    fn routing_preserves_semantics_on_heavy_hex_fragment() {
        let graph = builders::heavy_hex(1, 1);
        let n = graph.num_qubits();
        let c = quantum_volume(n, 3, 5);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 5);
        assert_semantics_preserved(&c, &routed);
    }

    #[test]
    fn non_swap_gate_count_is_preserved() {
        let graph = builders::line(6);
        let c = qft(6, false);
        let routed = route_with(&c, &graph, LayoutStrategy::Dense, 6);
        let original_2q = c.two_qubit_count();
        assert_eq!(
            routed.circuit.two_qubit_count() - routed.swap_count,
            original_2q
        );
        assert_eq!(routed.circuit.swap_count(), routed.swap_count);
    }

    #[test]
    fn complete_graph_never_needs_swaps() {
        let graph = builders::complete(8);
        let c = qft(8, true);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 7);
        assert_eq!(routed.swap_count, 0);
    }

    #[test]
    fn richer_topologies_route_with_fewer_swaps() {
        // The paper's core claim at routing granularity: QFT on the 16-qubit
        // hypercube needs fewer SWAPs than on a 16-qubit line.
        let c = qft(16, true);
        let line = builders::line(16);
        let hyper = builders::hypercube(4);
        let on_line = route_with(&c, &line, LayoutStrategy::Dense, 8);
        let on_hyper = route_with(&c, &hyper, LayoutStrategy::Dense, 8);
        assert!(
            on_hyper.swap_count < on_line.swap_count,
            "hypercube {} vs line {}",
            on_hyper.swap_count,
            on_line.swap_count
        );
    }

    #[test]
    fn more_trials_never_hurt() {
        let graph = builders::square_lattice(4, 4);
        let c = quantum_volume(16, 8, 9);
        let layout = LayoutStrategy::Dense.compute(&c, &graph);
        let one = route(
            &c,
            &graph,
            &layout,
            &RouterConfig {
                trials: 1,
                seed: 3,
                ..RouterConfig::default()
            },
        );
        let many = route(
            &c,
            &graph,
            &layout,
            &RouterConfig {
                trials: 6,
                seed: 3,
                ..RouterConfig::default()
            },
        );
        assert!(many.swap_count <= one.swap_count);
    }

    #[test]
    fn final_layout_tracks_swaps() {
        let graph = builders::line(3);
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 10);
        // Whatever SWAPs happened, the final layout must still be a bijection
        // over the occupied physical qubits.
        let mut seen = std::collections::HashSet::new();
        for l in 0..3 {
            assert!(seen.insert(routed.final_layout.physical(l)));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let graph = builders::square_lattice(3, 3);
        let c = quantum_volume(9, 5, 4);
        let a = route_with(&c, &graph, LayoutStrategy::Dense, 42);
        let b = route_with(&c, &graph, LayoutStrategy::Dense, 42);
        assert_eq!(a.swap_count, b.swap_count);
        assert_eq!(a.circuit.len(), b.circuit.len());
    }
}
