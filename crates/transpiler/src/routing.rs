//! SWAP routing (the "Routing" box of Fig. 10).
//!
//! The paper routes with Qiskit's `StochasticSwap`; we implement a
//! SABRE-style lookahead router with randomized tie-breaking and a
//! best-of-`trials` outer loop, which reproduces the same behaviour at the
//! granularity the study measures: the number of SWAP gates induced by a
//! topology, in total and on the critical path.
//!
//! # Hot-path architecture
//!
//! Routing is the inner kernel of every sweep in the reproduction, so the
//! implementation is organised around what is shared, what is incremental,
//! and what is parallel:
//!
//! * **Shared across trials** ([`route`]): the dependency DAG (per-qubit
//!   predecessor chains), the initial front, the program-order pending-2Q
//!   list, the compact `u16` hop matrix and (in noise-aware mode) the
//!   error-weighted Dijkstra rows are all layout-independent — they are
//!   built once per `route` call and borrowed by every trial. With a
//!   [`RoutingCache`] (see [`route_with_cache`]) the distance state is
//!   further shared across *calls* on the same graph, so a sweep stops
//!   recomputing all-pairs BFS for every (workload, size, seed) cell. On
//!   kiloqubit devices the distance rows additionally materialize on
//!   demand per source qubit, so memory scales with the qubits a program
//!   actually touches rather than with n².
//! * **Incremental within a trial** (`route_once`): the lookahead window
//!   is read from an intrusive linked list over pending two-qubit gates
//!   (O(lookahead) per SWAP decision, where a full rescan of the
//!   instruction stream — the previous implementation — was O(total²) per
//!   routed circuit); candidate SWAPs are deduplicated with an edge-indexed
//!   bitmap instead of a linear `Vec::contains`; and candidates are scored
//!   through one scratch swap/unswap of the live layout instead of a
//!   `Layout` clone per candidate. Adjacency tests on the blocked front use
//!   a flat `n × n` boolean matrix on small devices (the CSR binary search
//!   above the lazy-row threshold), and the trial loop reuses all of its
//!   per-decision scratch buffers, so steady-state routing allocates only
//!   the output circuit.
//! * **Parallel across trials**: the best-of-`trials` loop fans out with
//!   rayon — each trial derives its own RNG seed from the trial index — and
//!   the winner is selected by a deterministic trial-index-ordered
//!   reduction, so the routed output is independent of thread scheduling
//!   and bitwise-identical to the sequential loop.
//!
//! Per SWAP decision the work is O(front + lookahead + candidates·front),
//! and per routed circuit O(swaps · front-window) — independent of the
//! total instruction count, which only enters through the one-time DAG
//! build. The `crates/transpiler/tests/router_equivalence.rs` digests and
//! the frozen baselines in `noise_regression.rs` pin the output of this
//! implementation gate-for-gate to the pre-overhaul router.
//!
//! # Noise-aware mode
//!
//! The router can additionally be made *noise-aware*: when the coupling
//! graph carries heterogeneous per-edge error rates and
//! [`RouterConfig::error_weight`] is positive, SWAP candidates are scored
//! against an error-weighted distance matrix (Dijkstra over
//! `1 + w · penalty(e)` edge costs, with `penalty` the edge's log infidelity
//! normalized by the device's default rate) plus a direct penalty for
//! executing the SWAP itself on a noisy link. Per-edge penalties live in an
//! edge-indexed `Vec<f64>` (see [`CouplingGraph::edge_index`]) so every
//! cost-model read is an array access. Three safeguards keep the heuristic
//! stable on the continuous cost landscape: candidates are pruned to SWAPs
//! that make hop progress on the front layer (the weighted score chooses
//! *which* route, not *whether* to converge), a small relative jitter keeps
//! trials diverse where exact score ties are measure-zero, and the
//! best-of-`trials` winner is picked by a total-infidelity proxy (summed
//! edge penalties + depth) instead of raw SWAP count. With a uniform error
//! model — `error_weight = 0` or all edges equal — the scoring degenerates
//! to plain hop distances and the routed output is bitwise-identical to the
//! noise-blind router.

use crate::layout::Layout;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rayon::prelude::*;
use snailqc_circuit::{Circuit, Gate, Instruction};
use snailqc_obs as obs;
use snailqc_topology::distance::{HopMatrix, WeightedRows, UNREACHABLE};
use snailqc_topology::CouplingGraph;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Number of basis pulses a SWAP costs on the edge that executes it (three
/// CNOT-equivalents); scales the direct noise penalty of a SWAP candidate.
const SWAP_PULSES: f64 = 3.0;

/// Weight of one unit of two-qubit depth in the noise-aware trial-selection
/// metric, in normalized edge-penalty units. Matches the default error
/// model's decoherence-to-control ratio (10⁻² per pulse time vs 10⁻³ per
/// gate).
const DEPTH_PENALTY: f64 = 10.0;

/// The result of routing a logical circuit onto a device.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The physical circuit: original gates remapped to physical qubits plus
    /// inserted SWAP gates. Defined on the device register.
    pub circuit: Circuit,
    /// Layout before the first gate.
    pub initial_layout: Layout,
    /// Layout after the last gate (SWAPs permute the mapping).
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
}

impl RoutedCircuit {
    /// Critical-path SWAP count of the routed circuit.
    pub fn swap_depth(&self) -> usize {
        self.circuit.swap_depth()
    }

    /// Total two-qubit gate count of the routed circuit (original 2Q gates
    /// plus inserted SWAPs).
    pub fn two_qubit_count(&self) -> usize {
        self.circuit.two_qubit_count()
    }
}

/// Where the router reads per-edge error rates from.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub enum EdgeErrorSource {
    /// Use the rates stored on the [`CouplingGraph`] (calibrated device).
    Device,
    /// Ignore the graph's calibration and treat every edge as having this
    /// flat rate — forces noise-blind routing on a calibrated device.
    Uniform(f64),
}

impl EdgeErrorSource {
    /// Resolves the error rate of edge `(a, b)` under this source.
    pub fn rate(&self, graph: &CouplingGraph, a: usize, b: usize) -> f64 {
        match self {
            EdgeErrorSource::Device => graph.edge_error(a, b),
            EdgeErrorSource::Uniform(r) => *r,
        }
    }
}

/// Configuration of the stochastic lookahead router.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct RouterConfig {
    /// Number of independent randomized routing attempts; the attempt with
    /// the fewest SWAPs wins (mirrors `StochasticSwap`'s trials). Trials run
    /// in parallel; the winner is reduced in trial-index order, so the
    /// result never depends on scheduling.
    pub trials: usize,
    /// Size of the lookahead window used in the SWAP scoring heuristic.
    pub lookahead: usize,
    /// Weight of the lookahead term relative to the front layer.
    pub lookahead_weight: f64,
    /// Weight of the per-edge infidelity term in SWAP scoring; `0` routes by
    /// hop distance alone (noise-blind), `1` values the average edge's log
    /// infidelity as much as one extra hop.
    pub error_weight: f64,
    /// Where per-edge error rates come from.
    pub edge_errors: EdgeErrorSource,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            trials: 4,
            lookahead: 20,
            lookahead_weight: 0.5,
            error_weight: 0.0,
            edge_errors: EdgeErrorSource::Device,
            seed: 11,
        }
    }
}

impl RouterConfig {
    /// A deterministic single-trial configuration (useful in tests).
    pub fn deterministic(seed: u64) -> Self {
        Self {
            trials: 1,
            seed,
            ..Self::default()
        }
    }

    /// A noise-aware configuration reading the device calibration with the
    /// given fidelity weight.
    pub fn noise_aware(error_weight: f64) -> Self {
        Self {
            error_weight,
            ..Self::default()
        }
    }

    /// Overrides the fidelity weight, keeping everything else.
    pub fn with_error_weight(mut self, error_weight: f64) -> Self {
        self.error_weight = error_weight;
        self
    }

    /// The distance-matrix cache key of this configuration: the fields that
    /// change which weighted matrix the router scores against.
    fn matrix_key(&self) -> MatrixKey {
        let (tag, rate) = match self.edge_errors {
            EdgeErrorSource::Device => (0u64, 0u64),
            EdgeErrorSource::Uniform(r) => (1u64, r.to_bits()),
        };
        (self.error_weight.to_bits(), tag, rate)
    }
}

/// Cache key of one scoring matrix: `(error_weight bits, edge-source tag,
/// uniform-rate bits)` — see [`RouterConfig::matrix_key`].
type MatrixKey = (u64, u64, u64);

/// Precomputed noise data for one routing run: normalized per-edge penalties
/// used both for the weighted distance matrix and the direct SWAP penalty.
/// Penalties are indexed by the graph's stable lexicographic
/// [`edge index`](CouplingGraph::edge_index), so every read in the scoring
/// hot loop is a plain array access.
struct NoiseContext {
    /// `-ln(1 − err_e)` divided by the reference (default-rate) penalty,
    /// indexed by edge index; a typical edge sits near 1.0.
    penalties: Vec<f64>,
    /// `error_weight` echoed from the config.
    weight: f64,
}

impl NoiseContext {
    /// Builds the context, or `None` when the configuration is effectively
    /// noise-blind (zero weight or homogeneous edge errors) and the legacy
    /// hop-distance scoring should be used verbatim.
    ///
    /// Penalties are normalized by the *device default rate* rather than the
    /// calibration's mean, so degrading one edge raises that edge's cost and
    /// leaves every other edge untouched — a locality property the
    /// monotonicity regression suite relies on. (The mean is only used as a
    /// fallback reference when the default rate is zero.)
    fn build(graph: &CouplingGraph, config: &RouterConfig) -> Option<Self> {
        if config.error_weight <= 0.0 {
            return None;
        }
        let rate = |a: usize, b: usize| config.edge_errors.rate(graph, a, b);
        let penalty_of = |r: f64| -(1.0 - r.clamp(0.0, 0.999_999)).ln();
        let raw: Vec<f64> = graph.edges().map(|(a, b)| penalty_of(rate(a, b))).collect();
        let first = raw.first().copied()?;
        if raw.iter().all(|&p| p == first) {
            return None; // homogeneous noise cannot change SWAP choices
        }
        let mut reference = penalty_of(graph.default_edge_error());
        if reference <= 0.0 {
            reference = raw.iter().sum::<f64>() / raw.len() as f64;
        }
        let penalties = raw.into_iter().map(|p| p / reference).collect();
        Some(Self {
            penalties,
            weight: config.error_weight,
        })
    }

    /// Distance cost of traversing the edge with index `id`: one hop plus
    /// the weighted normalized infidelity.
    fn edge_cost(&self, id: usize) -> f64 {
        1.0 + self.weight * self.penalties[id]
    }

    /// Direct penalty for executing a SWAP on the edge with index `id`.
    fn swap_penalty(&self, id: usize) -> f64 {
        SWAP_PULSES * self.weight * self.penalties[id]
    }

    /// Total normalized penalty of a routed circuit: `Σ penalty(e)` over its
    /// two-qubit gates, with SWAPs weighted by their pulse count. Used to
    /// pick the winning trial in noise-aware mode.
    fn circuit_penalty(&self, circuit: &Circuit, graph: &CouplingGraph) -> f64 {
        circuit
            .instructions()
            .iter()
            .filter(|inst| inst.is_two_qubit())
            .map(|inst| {
                let id = graph
                    .edge_index(inst.qubits[0], inst.qubits[1])
                    .expect("routed gate sits on an edge");
                let p = self.penalties[id];
                if inst.gate.is_swap() {
                    SWAP_PULSES * p
                } else {
                    p
                }
            })
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Distance-matrix cache
// ---------------------------------------------------------------------------

/// Shareable cache of the per-graph distance state routing needs: the
/// compact `u16` hop matrix ([`HopMatrix`]), plus one weighted scoring
/// store ([`WeightedRows`]) per noise-aware (error weight, edge source)
/// configuration. Noise-blind scoring reads hop counts directly (`u16 →
/// f64` is value-exact), so it needs no separate scoring matrix at all.
///
/// One cache belongs to one graph — `snailqc_core::device::Device` owns one
/// per device and threads it through every transpile, so sweeps and batch
/// runs compute distance rows once per device instead of once per cell. On
/// kiloqubit devices (n ≥ [`snailqc_topology::distance::LAZY_ROW_THRESHOLD`]) rows materialize on
/// demand, so a small program only pays for the rows it touches. The cached
/// distances are exactly what an uncached [`route`] would compute, so routed
/// output is bitwise-identical either way.
///
/// Hit/miss accounting is **exact**, including under concurrent first use:
/// the miss is counted inside the one closure `OnceLock::get_or_init` /
/// the locked map's vacant entry runs, and every other caller counts a hit,
/// so `routing_cache.hits + routing_cache.misses` always equals the number
/// of cache accesses and each matrix accounts for exactly one miss.
#[derive(Debug, Default)]
pub struct RoutingCache {
    hops: OnceLock<Arc<HopMatrix>>,
    scoring: Mutex<BTreeMap<MatrixKey, Arc<WeightedRows>>>,
}

impl RoutingCache {
    /// An empty cache (distance state is computed and retained on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The hop matrix of `graph`, built on first use. Exactly one caller
    /// counts the miss (inside the init closure, which `OnceLock` runs once
    /// while blocking racers); every other call counts a hit.
    fn hops(&self, graph: &CouplingGraph) -> Arc<HopMatrix> {
        let mut miss = false;
        let hops = self
            .hops
            .get_or_init(|| {
                miss = true;
                if obs::is_enabled() {
                    obs::counter_add("routing_cache.misses", 1);
                }
                Arc::new(HopMatrix::new(graph))
            })
            .clone();
        if !miss && obs::is_enabled() {
            obs::counter_add("routing_cache.hits", 1);
        }
        hops
    }

    /// The weighted scoring store for a noise-aware `config`, built on first
    /// use. The vacant/occupied split under the map's mutex makes the
    /// hit/miss counts exact: the thread that inserts counts the one miss.
    fn scoring(
        &self,
        graph: &CouplingGraph,
        config: &RouterConfig,
        noise: &NoiseContext,
    ) -> Arc<WeightedRows> {
        let key = config.matrix_key();
        let mut cache = self.scoring.lock().expect("routing cache poisoned");
        match cache.entry(key) {
            Entry::Occupied(entry) => {
                if obs::is_enabled() {
                    obs::counter_add("routing_cache.hits", 1);
                }
                entry.get().clone()
            }
            Entry::Vacant(entry) => {
                if obs::is_enabled() {
                    obs::counter_add("routing_cache.misses", 1);
                }
                entry
                    .insert(Arc::new(WeightedRows::new(graph, |a, b| {
                        noise.edge_cost(graph.edge_index(a, b).expect("cost of an edge"))
                    })))
                    .clone()
            }
        }
    }

    /// Bytes of distance payload currently resident across the hop matrix
    /// and every scoring store — the number the perf harness tracks to keep
    /// kiloqubit devices off the old O(n²)-eager footprint.
    pub fn resident_distance_bytes(&self) -> usize {
        let hops = self.hops.get().map_or(0, |h| h.resident_bytes());
        let scoring: usize = self
            .scoring
            .lock()
            .expect("routing cache poisoned")
            .values()
            .map(|rows| rows.resident_bytes())
            .sum();
        hops + scoring
    }
}

/// Cap on the flat adjacency matrix: one byte per qubit pair, so 2 MiB
/// covers devices up to ~1448 qubits. The matrix is the trial inner loop's
/// hottest read; unlike the 8-byte `f64`/`usize` distance matrices this
/// rework evicts, the bool matrix stays a small fraction of the kiloqubit
/// memory ceiling (1 MiB at 1024 qubits).
const DENSE_ADJACENCY_MAX_BYTES: usize = 2 << 20;

/// Adjacency test for the trial inner loop: a flat boolean matrix wherever
/// it stays under [`DENSE_ADJACENCY_MAX_BYTES`], the CSR binary search on
/// anything larger. Both answer exactly [`CouplingGraph::has_edge`].
enum Adjacency {
    Dense { n: usize, flags: Vec<bool> },
    Sparse,
}

impl Adjacency {
    fn build(graph: &CouplingGraph) -> Self {
        let n = graph.num_qubits();
        if n.saturating_mul(n) > DENSE_ADJACENCY_MAX_BYTES {
            return Self::Sparse;
        }
        let mut flags = vec![false; n * n];
        for (a, b) in graph.edges() {
            flags[a * n + b] = true;
            flags[b * n + a] = true;
        }
        Self::Dense { n, flags }
    }

    #[inline]
    fn test(&self, graph: &CouplingGraph, a: usize, b: usize) -> bool {
        match self {
            Self::Dense { n, flags } => flags[a * n + b],
            Self::Sparse => graph.has_edge(a, b),
        }
    }
}

// ---------------------------------------------------------------------------
// Layout-independent per-circuit state
// ---------------------------------------------------------------------------

/// Everything about one (circuit, graph, config) routing problem that does
/// not depend on the evolving layout: built once in [`route`], borrowed by
/// every trial.
struct TrialTemplate {
    /// Remaining-predecessor count per instruction (cloned per trial).
    in_degree: Vec<usize>,
    /// Dependency-DAG successor lists.
    successors: Vec<Vec<usize>>,
    /// Instructions with no predecessors — the initial front.
    initial_front: Vec<usize>,
    /// Intrusive linked list over pending two-qubit instructions in program
    /// order (`total` is the end sentinel); cloned per trial and pruned as
    /// gates execute, so the lookahead window is read in O(lookahead)
    /// instead of rescanning the whole instruction stream.
    head2q: usize,
    next2q: Vec<usize>,
    prev2q: Vec<usize>,
}

impl TrialTemplate {
    fn build(circuit: &Circuit) -> Self {
        let instructions = circuit.instructions();
        let total = instructions.len();

        // Dependency DAG via per-qubit predecessor chains.
        let mut in_degree = vec![0usize; total];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (idx, inst) in instructions.iter().enumerate() {
            for &q in &inst.qubits {
                if let Some(prev) = last_on_qubit[q] {
                    successors[prev].push(idx);
                    in_degree[idx] += 1;
                }
                last_on_qubit[q] = Some(idx);
            }
        }
        let initial_front: Vec<usize> = (0..total).filter(|&i| in_degree[i] == 0).collect();

        // Program-order chain over two-qubit instructions.
        let mut next2q = vec![total; total];
        let mut prev2q = vec![total; total];
        let mut head2q = total;
        let mut last = total;
        for (idx, inst) in instructions.iter().enumerate() {
            if inst.qubits.len() != 2 {
                continue;
            }
            if last == total {
                head2q = idx;
            } else {
                next2q[last] = idx;
                prev2q[idx] = last;
            }
            last = idx;
        }

        Self {
            in_degree,
            successors,
            initial_front,
            head2q,
            next2q,
            prev2q,
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Routes `circuit` onto `graph` starting from `initial_layout`, inserting
/// SWAP gates wherever a two-qubit gate acts on non-adjacent physical qubits.
///
/// The graph may be disconnected as long as every physical qubit the layout
/// occupies sits in one connected component (the layout stage guarantees
/// this; see `LayoutStrategy::try_compute`).
///
/// # Panics
/// Panics if the device has fewer qubits than the circuit or the initial
/// layout straddles disconnected components.
pub fn route(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &Layout,
    config: &RouterConfig,
) -> RoutedCircuit {
    route_with_cache(circuit, graph, initial_layout, config, &RoutingCache::new())
}

/// [`route`], reusing `cache`'s distance matrices. The cache must belong to
/// `graph` (same structure and edge errors); `snailqc_core::device::Device`
/// maintains that pairing. Output is bitwise-identical to [`route`].
pub fn route_with_cache(
    circuit: &Circuit,
    graph: &CouplingGraph,
    initial_layout: &Layout,
    config: &RouterConfig,
    cache: &RoutingCache,
) -> RoutedCircuit {
    let _route_span = obs::span("router.route");
    assert!(
        circuit.num_qubits() <= graph.num_qubits(),
        "device too small"
    );
    let noise = NoiseContext::build(graph, config);
    let hops = cache.hops(graph);
    // Error-weighted Dijkstra rows steer lookahead cost away from noisy
    // links; noise-blind scoring reads hop counts directly (`u16 → f64` is
    // value-exact, so the scores match the old hop-derived f64 matrix bit
    // for bit).
    let weighted = noise
        .as_ref()
        .map(|noise| cache.scoring(graph, config, noise));

    // The occupied physical qubits must be mutually reachable — one hop row
    // from the first occupied qubit checks all of them, whatever the rest of
    // the device looks like.
    if circuit.num_qubits() > 0 {
        let anchor = initial_layout.physical(0);
        let anchor_row = hops.row(graph, anchor);
        for logical in 0..circuit.num_qubits() {
            assert!(
                anchor_row[initial_layout.physical(logical)] != UNREACHABLE,
                "initial layout straddles disconnected components \
                 (logical {logical} unreachable from logical 0)"
            );
        }
    }

    let adjacent = Adjacency::build(graph);
    let template = TrialTemplate::build(circuit);
    let shared = TrialShared {
        circuit,
        graph,
        initial_layout,
        hops: &hops,
        weighted: weighted.as_deref(),
        adjacent: &adjacent,
        noise: noise.as_ref(),
        config,
        template: &template,
    };

    // Every trial derives its seed from the trial index alone, so trials
    // are independent and safe to fan out; the winner is reduced in trial
    // order below, making the result identical to a sequential loop.
    let seeds: Vec<u64> = (0..config.trials.max(1))
        .map(|trial| {
            config
                .seed
                .wrapping_add(trial as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        })
        .collect();
    let trials: Vec<(RoutedCircuit, TrialStats)> = if seeds.len() == 1 {
        vec![route_once(&shared, seeds[0])]
    } else {
        seeds
            .par_iter()
            .map(|&seed| route_once(&shared, seed))
            .collect()
    };

    let mut work = TrialStats::default();
    let mut best: Option<RoutedCircuit> = None;
    for (candidate, trial_stats) in trials {
        work.accumulate(&trial_stats);
        let better = match &best {
            None => true,
            // Noise-blind trials compete on SWAP count (StochasticSwap);
            // noise-aware trials compete on a proxy for total infidelity:
            // the routed circuit's summed per-edge penalty (control channel)
            // plus its two-qubit depth (decoherence channel), with SWAP
            // count as the tiebreak.
            Some(b) => match &noise {
                None => candidate.swap_count < b.swap_count,
                Some(noise) => {
                    let metric = |c: &RoutedCircuit| {
                        noise.circuit_penalty(&c.circuit, graph)
                            + DEPTH_PENALTY * c.circuit.two_qubit_depth() as f64
                    };
                    let (cand, best_so_far) = (metric(&candidate), metric(b));
                    cand < best_so_far
                        || (cand == best_so_far && candidate.swap_count < b.swap_count)
                }
            },
        };
        if better {
            best = Some(candidate);
        }
    }
    let best = best.expect("at least one routing trial");

    // One registry flush per route call, far off the inner loop. The
    // counters feed `--metrics-json` / the perf bench's metrics block.
    if obs::is_enabled() {
        obs::counter_add("router.calls", 1);
        obs::counter_add("router.trials_run", seeds.len() as u64);
        obs::counter_add("router.swap_decisions", work.swap_decisions);
        obs::counter_add("router.swap_candidates_scored", work.candidates_scored);
        obs::counter_add("router.scratch_score_calls", work.scratch_score_calls);
        obs::counter_add(
            "router.lookahead_gates_examined",
            work.lookahead_gates_examined,
        );
        obs::counter_add("router.fallback_paths", work.fallback_paths);
        obs::counter_add("router.swaps_inserted", best.swap_count as u64);
    }
    best
}

/// Inner-loop work counters accumulated by one routing trial. Plain `u64`
/// locals in the trial loop — always collected (the adds are free next to
/// the scoring work) and flushed to the `snailqc-obs` registry once per
/// [`route_with_cache`] call, so instrumentation never touches the hot path
/// and never perturbs routed output.
#[derive(Debug, Default, Clone, Copy)]
struct TrialStats {
    /// SWAP decisions taken (equals SWAPs inserted by the trial).
    swap_decisions: u64,
    /// Candidate SWAPs evaluated by the scoring loop.
    candidates_scored: u64,
    /// Scratch swap/unswap score measurements of the live layout (scoring
    /// loop plus the noise-aware hop-progress filter).
    scratch_score_calls: u64,
    /// Pending two-qubit gates examined by lookahead-window walks.
    lookahead_gates_examined: u64,
    /// Times the shortest-path stall fallback overrode the heuristic.
    fallback_paths: u64,
}

impl TrialStats {
    fn accumulate(&mut self, other: &TrialStats) {
        self.swap_decisions += other.swap_decisions;
        self.candidates_scored += other.candidates_scored;
        self.scratch_score_calls += other.scratch_score_calls;
        self.lookahead_gates_examined += other.lookahead_gates_examined;
        self.fallback_paths += other.fallback_paths;
    }
}

/// The read-only state one trial borrows.
struct TrialShared<'a> {
    circuit: &'a Circuit,
    graph: &'a CouplingGraph,
    initial_layout: &'a Layout,
    hops: &'a HopMatrix,
    /// Weighted scoring rows — present exactly when `noise` is.
    weighted: Option<&'a WeightedRows>,
    adjacent: &'a Adjacency,
    noise: Option<&'a NoiseContext>,
    config: &'a RouterConfig,
    template: &'a TrialTemplate,
}

fn route_once(shared: &TrialShared<'_>, seed: u64) -> (RoutedCircuit, TrialStats) {
    let _trial_span = obs::span("router.trial");
    let mut stats = TrialStats::default();
    let TrialShared {
        circuit,
        graph,
        initial_layout,
        hops,
        weighted,
        adjacent,
        noise,
        config,
        template,
    } = *shared;
    // Scoring distance between two physical qubits: the weighted Dijkstra
    // row in noise-aware mode, the hop count otherwise (value-exact in f64).
    let edge_cost = |a: usize, b: usize| {
        noise
            .expect("weighted scoring implies a noise context")
            .edge_cost(graph.edge_index(a, b).expect("cost of an edge"))
    };
    let dist = |a: usize, b: usize| -> f64 {
        match weighted {
            Some(rows) => rows.row(graph, &edge_cost, a)[b],
            None => hops.row(graph, a)[b] as f64,
        }
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let instructions = circuit.instructions();
    let total = instructions.len();
    let n = graph.num_qubits();

    let mut in_degree = template.in_degree.clone();
    let mut front = template.initial_front.clone();
    let mut in_front = vec![false; total];
    for &idx in &front {
        in_front[idx] = true;
    }
    // Pending-2Q chain (pruned as gates execute).
    let mut head2q = template.head2q;
    let mut next2q = template.next2q.clone();
    let mut prev2q = template.prev2q.clone();
    let unlink2q = |idx: usize, head2q: &mut usize, next2q: &mut [usize], prev2q: &mut [usize]| {
        let (prev, next) = (prev2q[idx], next2q[idx]);
        if prev == total {
            *head2q = next;
        } else {
            next2q[prev] = next;
        }
        if next != total {
            prev2q[next] = prev;
        }
    };

    let mut layout = initial_layout.clone();
    let mut out = Circuit::new(n);
    let mut executed_count = 0usize;
    let mut swap_count = 0usize;
    let mut decay = vec![1.0f64; n];
    let mut swaps_since_progress = 0usize;
    // Per-decision scratch, reused across iterations — the trial inner loop
    // allocates nothing after this point (critical on kiloqubit devices,
    // where per-decision `Vec`s would dominate the routing time).
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
    let mut candidate_seen = vec![false; graph.num_edges()];
    let mut lookahead: Vec<(usize, usize)> = Vec::with_capacity(config.lookahead);
    let mut front_pairs: Vec<(usize, usize)> = Vec::new();
    let mut next_front: Vec<usize> = Vec::with_capacity(front.len());
    let mut mapped_qubits: Vec<usize> = Vec::with_capacity(2);

    while executed_count < total {
        // 1. Execute every front instruction that is currently executable.
        let mut progressed = true;
        while progressed {
            progressed = false;
            next_front.clear();
            for &idx in &front {
                let inst = &instructions[idx];
                let executable = match inst.qubits.len() {
                    1 => true,
                    _ => {
                        let a = layout.physical(inst.qubits[0]);
                        let b = layout.physical(inst.qubits[1]);
                        adjacent.test(graph, a, b)
                    }
                };
                if executable {
                    emit_mapped(&mut out, inst, &layout, &mut mapped_qubits);
                    in_front[idx] = false;
                    if inst.qubits.len() == 2 {
                        unlink2q(idx, &mut head2q, &mut next2q, &mut prev2q);
                    }
                    executed_count += 1;
                    progressed = true;
                    swaps_since_progress = 0;
                    for &succ in &template.successors[idx] {
                        in_degree[succ] -= 1;
                        if in_degree[succ] == 0 {
                            next_front.push(succ);
                            in_front[succ] = true;
                        }
                    }
                } else {
                    next_front.push(idx);
                }
            }
            std::mem::swap(&mut front, &mut next_front);
            if progressed {
                decay.iter_mut().for_each(|d| *d = 1.0);
            }
        }
        if executed_count == total {
            break;
        }

        // 2. No front gate is executable: insert the best-scoring SWAP.
        // After phase 1 the front holds only blocked two-qubit gates.
        front_pairs.clear();
        front_pairs.extend(
            front
                .iter()
                .filter(|&&i| instructions[i].qubits.len() == 2)
                .map(|&i| (instructions[i].qubits[0], instructions[i].qubits[1])),
        );
        debug_assert!(
            !front_pairs.is_empty(),
            "router stalled with no blocked 2Q gate"
        );

        // Lookahead set: the next pending two-qubit gates in program order —
        // a walk of the pending-2Q chain, skipping the front.
        lookahead.clear();
        let mut cursor = head2q;
        while cursor != total && lookahead.len() < config.lookahead {
            if !in_front[cursor] {
                let inst = &instructions[cursor];
                lookahead.push((inst.qubits[0], inst.qubits[1]));
            }
            cursor = next2q[cursor];
        }
        stats.lookahead_gates_examined += lookahead.len() as u64;

        // Candidate SWAPs: every edge touching a physical qubit involved in
        // a blocked front gate, first-occurrence order, deduplicated with an
        // edge-indexed bitmap.
        candidates.clear();
        for &(la, lb) in &front_pairs {
            let (a, b) = (layout.physical(la), layout.physical(lb));
            for p in [a, b] {
                for (q, id) in graph.neighbors_with_edge_ids(p) {
                    if !candidate_seen[id] {
                        candidate_seen[id] = true;
                        candidates.push((p.min(q), p.max(q), id));
                    }
                }
            }
        }
        for &(_, _, id) in &candidates {
            candidate_seen[id] = false;
        }

        let front_cost_of = |layout: &Layout| -> f64 {
            front_pairs
                .iter()
                .map(|&(la, lb)| dist(layout.physical(la), layout.physical(lb)))
                .sum()
        };
        let look_cost_of = |layout: &Layout| -> f64 {
            lookahead
                .iter()
                .map(|&(la, lb)| dist(layout.physical(la), layout.physical(lb)))
                .sum()
        };

        // Noise-aware mode only: the continuous weighted-distance landscape
        // has plateaus where a SWAP lowers the weighted cost without moving
        // the front closer in hops, and a greedy walk can wander over them
        // inserting SWAPs that never converge. Restrict the candidate set to
        // SWAPs that strictly reduce the front's total hop distance (falling
        // back to the full set when none does), and let the noise-weighted
        // score choose *which* progressing SWAP — i.e. which route — to take.
        if noise.is_some() {
            let front_hops = |layout: &Layout| -> usize {
                front_pairs
                    .iter()
                    .map(|&(la, lb)| {
                        hops.row(graph, layout.physical(la))[layout.physical(lb)] as usize
                    })
                    .sum()
            };
            let current = front_hops(&layout);
            // `swap_physical` is an involution, so the live layout serves as
            // its own scratch: swap, measure, swap back. Progressing
            // candidates are compacted in place (stable, so first-occurrence
            // order survives) instead of collected into a fresh `Vec`; when
            // none progresses the original candidate set is kept untouched.
            stats.scratch_score_calls += candidates.len() as u64;
            let mut kept = 0usize;
            for read in 0..candidates.len() {
                let (p, q, _) = candidates[read];
                layout.swap_physical(p, q);
                let after = front_hops(&layout);
                layout.swap_physical(p, q);
                if after < current {
                    candidates[kept] = candidates[read];
                    kept += 1;
                }
            }
            if kept > 0 {
                candidates.truncate(kept);
            }
        }

        let mut best_swap = (candidates[0].0, candidates[0].1);
        let mut best_score = f64::INFINITY;
        stats.candidates_scored += candidates.len() as u64;
        stats.scratch_score_calls += candidates.len() as u64;
        for &(p, q, id) in &candidates {
            layout.swap_physical(p, q);
            let (front_cost, look_cost) = (front_cost_of(&layout), look_cost_of(&layout));
            layout.swap_physical(p, q);
            let mut score = front_cost + config.lookahead_weight * look_cost;
            // Executing the SWAP itself burns pulses on edge (p, q); bias
            // away from noisy links even when the distances tie.
            if let Some(n) = noise {
                score += n.swap_penalty(id);
            }
            score *= decay[p].max(decay[q]);
            // Randomized tie-breaking keeps trials diverse (StochasticSwap).
            // Integer hop scores tie constantly, so an absolute 1e-6 nudge is
            // enough; continuous noise-weighted scores almost never tie, so
            // noisy mode needs a small relative jitter or every trial would
            // collapse onto the same route and best-of-N would buy nothing.
            score += rng.gen::<f64>() * 1e-6;
            if noise.is_some() {
                score *= 1.0 + 0.02 * rng.gen::<f64>();
            }
            if score < best_score {
                best_score = score;
                best_swap = (p, q);
            }
        }

        // Fallback: if the heuristic has stalled for too long, walk the first
        // blocked gate together along a shortest path (guarantees progress).
        swaps_since_progress += 1;
        if swaps_since_progress > 4 * n {
            let (la, lb) = front_pairs[0];
            let (a, b) = (layout.physical(la), layout.physical(lb));
            let path = graph.shortest_path(a, b).expect("connected graph");
            best_swap = (path[0], path[1]);
            stats.fallback_paths += 1;
        }

        let (p, q) = best_swap;
        out.push(Gate::Swap, &[p, q]);
        layout.swap_physical(p, q);
        swap_count += 1;
        stats.swap_decisions += 1;
        decay[p] += 0.001;
        decay[q] += 0.001;
    }

    (
        RoutedCircuit {
            circuit: out,
            initial_layout: initial_layout.clone(),
            final_layout: layout,
            swap_count,
        },
        stats,
    )
}

/// Pushes `inst` remapped through `layout`, staging the physical qubit
/// indices in the caller's reusable `scratch` buffer (`Circuit::push` copies
/// the slice, so the scratch never escapes).
fn emit_mapped(out: &mut Circuit, inst: &Instruction, layout: &Layout, scratch: &mut Vec<usize>) {
    scratch.clear();
    scratch.extend(inst.qubits.iter().map(|&q| layout.physical(q)));
    out.push(inst.gate.clone(), scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutStrategy;
    use snailqc_circuit::simulate;
    use snailqc_topology::builders;
    use snailqc_workloads::{qft, quantum_volume};

    fn route_with(
        circuit: &Circuit,
        graph: &CouplingGraph,
        strategy: LayoutStrategy,
        seed: u64,
    ) -> RoutedCircuit {
        let layout = strategy.compute(circuit, graph);
        route(
            circuit,
            graph,
            &layout,
            &RouterConfig {
                seed,
                ..RouterConfig::default()
            },
        )
    }

    /// Checks that the routed circuit implements the original circuit up to
    /// the tracked qubit permutation (statevector comparison).
    fn assert_semantics_preserved(original: &Circuit, routed: &RoutedCircuit) {
        assert_eq!(
            original.num_qubits(),
            routed.circuit.num_qubits(),
            "use equal-size device"
        );
        let sv_original = simulate(original);
        let sv_routed = simulate(&routed.circuit);
        // Physical qubit p holds logical qubit final_layout.logical(p); map it
        // back so the two states are expressed over logical qubits. Before
        // the circuit begins every qubit is |0⟩, so the initial layout does
        // not affect the all-zeros input state.
        let perm: Vec<usize> = (0..routed.circuit.num_qubits())
            .map(|p| routed.final_layout.logical(p).unwrap_or(p))
            .collect();
        let sv_logical = sv_routed.permute_qubits(&perm);
        let fidelity = sv_original.fidelity(&sv_logical);
        assert!(
            fidelity > 1.0 - 1e-7,
            "routing broke semantics: fidelity {fidelity}"
        );
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let graph = builders::line(4);
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(2, 3);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 1);
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.len(), c.len());
    }

    #[test]
    fn distant_gate_on_a_line_needs_swaps() {
        let graph = builders::line(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 2);
        // Distance 4 ⇒ at least 3 SWAPs with a trivial layout.
        assert!(routed.swap_count >= 3, "swaps = {}", routed.swap_count);
        assert_semantics_preserved(&c, &routed);
    }

    #[test]
    fn routed_gates_always_touch_adjacent_qubits() {
        let graph = builders::square_lattice(3, 3);
        let c = qft(9, true);
        let routed = route_with(&c, &graph, LayoutStrategy::Dense, 3);
        for inst in routed.circuit.instructions() {
            if inst.is_two_qubit() {
                assert!(
                    graph.has_edge(inst.qubits[0], inst.qubits[1]),
                    "gate on non-adjacent qubits {:?}",
                    inst.qubits
                );
            }
        }
    }

    #[test]
    fn routing_preserves_semantics_on_lattice() {
        let graph = builders::square_lattice(2, 3);
        let c = qft(6, true);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 4);
        assert_semantics_preserved(&c, &routed);
    }

    #[test]
    fn routing_preserves_semantics_on_heavy_hex_fragment() {
        let graph = builders::heavy_hex(1, 1);
        let n = graph.num_qubits();
        let c = quantum_volume(n, 3, 5);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 5);
        assert_semantics_preserved(&c, &routed);
    }

    #[test]
    fn non_swap_gate_count_is_preserved() {
        let graph = builders::line(6);
        let c = qft(6, false);
        let routed = route_with(&c, &graph, LayoutStrategy::Dense, 6);
        let original_2q = c.two_qubit_count();
        assert_eq!(
            routed.circuit.two_qubit_count() - routed.swap_count,
            original_2q
        );
        assert_eq!(routed.circuit.swap_count(), routed.swap_count);
    }

    #[test]
    fn complete_graph_never_needs_swaps() {
        let graph = builders::complete(8);
        let c = qft(8, true);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 7);
        assert_eq!(routed.swap_count, 0);
    }

    #[test]
    fn richer_topologies_route_with_fewer_swaps() {
        // The paper's core claim at routing granularity: QFT on the 16-qubit
        // hypercube needs fewer SWAPs than on a 16-qubit line.
        let c = qft(16, true);
        let line = builders::line(16);
        let hyper = builders::hypercube(4);
        let on_line = route_with(&c, &line, LayoutStrategy::Dense, 8);
        let on_hyper = route_with(&c, &hyper, LayoutStrategy::Dense, 8);
        assert!(
            on_hyper.swap_count < on_line.swap_count,
            "hypercube {} vs line {}",
            on_hyper.swap_count,
            on_line.swap_count
        );
    }

    #[test]
    fn more_trials_never_hurt() {
        let graph = builders::square_lattice(4, 4);
        let c = quantum_volume(16, 8, 9);
        let layout = LayoutStrategy::Dense.compute(&c, &graph);
        let one = route(
            &c,
            &graph,
            &layout,
            &RouterConfig {
                trials: 1,
                seed: 3,
                ..RouterConfig::default()
            },
        );
        let many = route(
            &c,
            &graph,
            &layout,
            &RouterConfig {
                trials: 6,
                seed: 3,
                ..RouterConfig::default()
            },
        );
        assert!(many.swap_count <= one.swap_count);
    }

    #[test]
    fn final_layout_tracks_swaps() {
        let graph = builders::line(3);
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let routed = route_with(&c, &graph, LayoutStrategy::Trivial, 10);
        // Whatever SWAPs happened, the final layout must still be a bijection
        // over the occupied physical qubits.
        let mut seen = std::collections::HashSet::new();
        for l in 0..3 {
            assert!(seen.insert(routed.final_layout.physical(l)));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let graph = builders::square_lattice(3, 3);
        let c = quantum_volume(9, 5, 4);
        let a = route_with(&c, &graph, LayoutStrategy::Dense, 42);
        let b = route_with(&c, &graph, LayoutStrategy::Dense, 42);
        assert_eq!(a.swap_count, b.swap_count);
        assert_eq!(a.circuit.len(), b.circuit.len());
    }

    #[test]
    fn cached_routing_is_bitwise_identical_to_uncached() {
        let graph = builders::calibrated(&builders::square_lattice(4, 4), 1e-3, 1.2, 17);
        let c = quantum_volume(12, 6, 8);
        let layout = LayoutStrategy::Dense.compute(&c, &graph);
        for config in [
            RouterConfig::default(),
            RouterConfig::noise_aware(1.0),
            RouterConfig {
                edge_errors: EdgeErrorSource::Uniform(0.01),
                ..RouterConfig::noise_aware(0.5)
            },
        ] {
            let fresh = route(&c, &graph, &layout, &config);
            let cache = RoutingCache::new();
            let cold = route_with_cache(&c, &graph, &layout, &config, &cache);
            let warm = route_with_cache(&c, &graph, &layout, &config, &cache);
            for routed in [&cold, &warm] {
                assert_eq!(fresh.swap_count, routed.swap_count);
                assert_eq!(
                    fresh.circuit.instructions(),
                    routed.circuit.instructions(),
                    "cache changed routed output"
                );
            }
        }
    }

    #[test]
    fn parallel_trials_are_schedule_independent() {
        // The trial fan-out runs on however many worker threads the machine
        // offers, with a different interleaving every run; the trial-index-
        // ordered reduction must make every repetition bitwise-identical.
        let graph = builders::square_lattice(4, 4);
        let c = quantum_volume(14, 7, 21);
        let layout = LayoutStrategy::Dense.compute(&c, &graph);
        for config in [
            RouterConfig {
                trials: 6,
                seed: 5,
                ..RouterConfig::default()
            },
            RouterConfig {
                trials: 6,
                seed: 5,
                ..RouterConfig::noise_aware(1.0)
            },
        ] {
            let graph = builders::calibrated(&graph, 1e-3, 1.2, 17);
            let first = route(&c, &graph, &layout, &config);
            for _ in 0..3 {
                let again = route(&c, &graph, &layout, &config);
                assert_eq!(first.swap_count, again.swap_count);
                assert_eq!(
                    first.circuit.instructions(),
                    again.circuit.instructions(),
                    "parallel trial reduction must not depend on scheduling"
                );
            }
        }
    }
}
