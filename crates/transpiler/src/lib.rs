//! # snailqc-transpiler
//!
//! The transpilation passes of the paper's evaluation flow (Fig. 10):
//!
//! * [`layout`] — initial placement (`DenseLayout` analogue + trivial layout).
//! * [`routing`] — SABRE-style stochastic SWAP routing with best-of-N trials
//!   (the `StochasticSwap` analogue), returning the routed physical circuit
//!   and the induced SWAP counts.
//! * [`translate`] — structural basis translation into CNOT, SYC or √iSWAP
//!   using the Weyl-chamber counting rules of `snailqc-decompose`.
//! * [`pipeline`] — the staged end-to-end flow: a [`Pipeline`] built via
//!   [`Pipeline::builder`] (layout → routing → translation → analysis) whose
//!   runs produce the [`pipeline::TranspileReport`] carrying the four series
//!   every figure of the paper plots — total SWAPs, critical-path SWAPs,
//!   total 2Q gates and critical-path 2Q gates — plus a [`PassTrace`] with
//!   per-stage timings and gate/SWAP deltas.
//!
//! Every stage is instrumented with `snailqc-obs` spans and counters; the
//! instrumentation records only (routed output is bitwise-identical with
//! recording on or off) and costs one atomic flag read per site when off.

#![warn(missing_docs)]

pub mod layout;
pub mod pipeline;
pub mod routing;
pub mod translate;

pub use layout::{dense_layout, try_dense_layout, Layout, LayoutError, LayoutStrategy};
pub use pipeline::{
    BasisChoice, PassTrace, Pipeline, PipelineBuilder, StageCounters, StageTrace, TranspileError,
    TranspileOptions, TranspileReport, TranspileResult,
};
pub use routing::{
    route, route_with_cache, EdgeErrorSource, RoutedCircuit, RouterConfig, RoutingCache,
};
pub use translate::{count_basis_gates, critical_path_basis_gates, translate_to_basis};
