//! Noise-aware routing regression suite.
//!
//! Three guarantees:
//!
//! 1. **Frozen baseline** — with the default (noise-blind) configuration the
//!    router reproduces the exact SWAP totals and depths the pre-noise-aware
//!    router produced, for every catalog topology (numbers captured from the
//!    router before the error-weighted refactor).
//! 2. **Uniform degeneration** — `error_weight = 0` on a calibrated device,
//!    and any positive `error_weight` on a device with all-equal edge
//!    errors, route bitwise-identically to the noise-blind router.
//! 3. **Monotonicity** — raising one edge's error rate never increases the
//!    number of two-qubit gates the noise-aware router schedules across that
//!    edge, on a fixed seed corpus.
//! 4. **API equivalence** — the staged [`Pipeline`] and the deprecated
//!    [`transpile`] shim produce bitwise-identical routed circuits and
//!    reports for every catalog topology (the PR-3 redesign regression).

use snailqc_circuit::Circuit;
use snailqc_topology::{builders, catalog, CouplingGraph};
use snailqc_transpiler::{Pipeline, RouterConfig, TranspileOptions};
use snailqc_workloads::Workload;

/// `(catalog name, workload, swap_count, swap_depth)` captured from the
/// pre-noise-aware router with `TranspileOptions::default()` on
/// `workload.generate(12, 7)`.
const BASELINE: [(&str, Workload, usize, usize); 32] = [
    ("heavy-hex-20", Workload::QaoaVanilla, 217, 124),
    ("hex-lattice-20", Workload::QaoaVanilla, 71, 40),
    ("square-lattice-16", Workload::QaoaVanilla, 45, 30),
    ("lattice-alt-diagonals-16", Workload::QaoaVanilla, 35, 23),
    ("hypercube-16", Workload::QaoaVanilla, 43, 24),
    ("tree-20", Workload::QaoaVanilla, 16, 14),
    ("tree-rr-20", Workload::QaoaVanilla, 18, 11),
    ("corral11-16", Workload::QaoaVanilla, 33, 22),
    ("corral12-16", Workload::QaoaVanilla, 22, 11),
    ("heavy-hex-84", Workload::QaoaVanilla, 245, 144),
    ("hex-lattice-84", Workload::QaoaVanilla, 116, 65),
    ("square-lattice-84", Workload::QaoaVanilla, 51, 34),
    ("lattice-alt-diagonals-84", Workload::QaoaVanilla, 27, 18),
    ("hypercube-84", Workload::QaoaVanilla, 41, 30),
    ("tree-84", Workload::QaoaVanilla, 15, 13),
    ("tree-rr-84", Workload::QaoaVanilla, 14, 8),
    ("heavy-hex-20", Workload::QuantumVolume, 199, 83),
    ("hex-lattice-20", Workload::QuantumVolume, 88, 42),
    ("square-lattice-16", Workload::QuantumVolume, 46, 23),
    ("lattice-alt-diagonals-16", Workload::QuantumVolume, 30, 16),
    ("hypercube-16", Workload::QuantumVolume, 36, 20),
    ("tree-20", Workload::QuantumVolume, 32, 25),
    ("tree-rr-20", Workload::QuantumVolume, 28, 19),
    ("corral11-16", Workload::QuantumVolume, 41, 22),
    ("corral12-16", Workload::QuantumVolume, 23, 15),
    ("heavy-hex-84", Workload::QuantumVolume, 100, 40),
    ("hex-lattice-84", Workload::QuantumVolume, 111, 54),
    ("square-lattice-84", Workload::QuantumVolume, 54, 30),
    ("lattice-alt-diagonals-84", Workload::QuantumVolume, 36, 21),
    ("hypercube-84", Workload::QuantumVolume, 34, 15),
    ("tree-84", Workload::QuantumVolume, 32, 29),
    ("tree-rr-84", Workload::QuantumVolume, 26, 16),
];

fn same_instructions(a: &Circuit, b: &Circuit) -> bool {
    a.len() == b.len()
        && a.instructions()
            .iter()
            .zip(b.instructions())
            .all(|(x, y)| x.gate == y.gate && x.qubits == y.qubits)
}

#[test]
fn noise_blind_router_matches_frozen_baseline_on_every_catalog_topology() {
    for &(name, workload, swaps, depth) in &BASELINE {
        let circuit = workload.generate(12, 7);
        let graph = catalog::by_name(name).unwrap();
        let report = Pipeline::default().run(&circuit, &graph).report;
        assert_eq!(
            (report.swap_count, report.swap_depth),
            (swaps, depth),
            "{} on {name}: router output drifted from the frozen baseline",
            workload.label()
        );
    }
}

#[test]
fn cached_pipeline_matches_the_uncached_run_bitwise_on_every_catalog_topology() {
    // Successor of the PR-3 acceptance regression (which compared the
    // Pipeline against the since-removed transpile() shim): for any
    // (graph, options) the Pipeline run with a shared, reused RoutingCache
    // is bitwise-identical to the fresh uncached run across all 16 catalog
    // topologies — same routed instructions, same report.
    use snailqc_decompose::BasisGate;
    use snailqc_transpiler::RoutingCache;
    let option_sets = [
        TranspileOptions::default(),
        TranspileOptions::with_basis(BasisGate::SqrtISwap).with_seed(23),
        TranspileOptions::default().with_error_weight(1.0),
    ];
    let names = catalog::names();
    assert_eq!(names.len(), 16, "catalog grew; extend the regression");
    for name in names {
        let graph = catalog::by_name(name).unwrap();
        let circuit = Workload::QuantumVolume.generate(12, 7);
        // One cache per graph, shared across every option set — the Device
        // ownership pattern, with warm matrices by the second iteration.
        let cache = RoutingCache::new();
        for options in &option_sets {
            let pipeline = Pipeline::from_options(options);
            let fresh = pipeline.run(&circuit, &graph);
            let cached = pipeline.run_with_native_basis_cached(&circuit, &graph, None, &cache);
            assert_eq!(
                fresh.report, cached.report,
                "{name}: cached pipeline report drifted from the uncached run"
            );
            assert!(
                same_instructions(&fresh.routed.circuit, &cached.routed.circuit),
                "{name}: cached pipeline routed circuit drifted from the uncached run"
            );
            match (&fresh.translated, &cached.translated) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!(same_instructions(a, b), "{name}"),
                _ => panic!("{name}: translation presence diverged"),
            }
        }
    }
}

#[test]
fn uniform_error_models_route_bitwise_identically() {
    // On a heterogeneous calibrated device, `error_weight = 0` must take the
    // legacy path; on a uniform device, any weight must degenerate to it.
    for name in catalog::names() {
        let graph = catalog::by_name(name).unwrap();
        let calibrated = builders::calibrated(&graph, 1e-3, 1.2, 17);
        let circuit = Workload::QaoaVanilla.generate(12, 7);

        let blind = Pipeline::default().run(&circuit, &graph);
        let zero_weight_on_calibrated = Pipeline::default().run(&circuit, &calibrated);
        let weighted_on_uniform = Pipeline::builder()
            .router(RouterConfig::noise_aware(1.0))
            .build()
            .run(&circuit, &graph);

        for (label, run) in [
            (
                "error_weight=0 on calibrated device",
                &zero_weight_on_calibrated,
            ),
            ("error_weight=1 on uniform device", &weighted_on_uniform),
        ] {
            assert!(
                same_instructions(&blind.routed.circuit, &run.routed.circuit),
                "{label} diverged from the noise-blind router on {name}"
            );
            assert_eq!(blind.report.swap_count, run.report.swap_count, "{name}");
            assert_eq!(blind.report.swap_depth, run.report.swap_depth, "{name}");
        }
    }
}

/// Counts two-qubit gates (including SWAPs) routed across physical edge `e`.
fn gates_on_edge(circuit: &Circuit, e: (usize, usize)) -> usize {
    circuit
        .instructions()
        .iter()
        .filter(|inst| inst.is_two_qubit())
        .filter(|inst| {
            let (a, b) = (inst.qubits[0], inst.qubits[1]);
            (a.min(b), a.max(b)) == e
        })
        .count()
}

#[test]
fn raising_one_edges_error_never_attracts_traffic_to_it() {
    // Fixed corpus: (graph, workload, seed) triples with every edge of the
    // device probed one at a time. Monotonicity at 10× degradation: the
    // noise-aware router must never route *more* gates across the degraded
    // edge than it did before the degradation. Routing is a chaotic greedy
    // heuristic, so this is pinned to seeds where the property holds and
    // guards against future regressions in noise avoidance; it is not a
    // universal guarantee over all seeds.
    let corpus: Vec<(CouplingGraph, Workload, u64)> = vec![
        (builders::ring(8), Workload::QaoaVanilla, 3),
        (builders::hypercube(3), Workload::Qft, 2),
        (catalog::corral11_16(), Workload::QuantumVolume, 4),
        (builders::square_lattice(3, 3), Workload::QaoaVanilla, 4),
    ];
    for (graph, workload, seed) in corpus {
        let circuit = workload.generate(graph.num_qubits().min(8), seed);
        let edges: Vec<(usize, usize)> = graph.edges().collect();
        let pipeline = Pipeline::builder()
            .router(RouterConfig {
                trials: 1,
                seed,
                ..RouterConfig::noise_aware(1.0)
            })
            .build();
        for &(a, b) in &edges {
            let base = pipeline.run(&circuit, &graph);
            let mut degraded = graph.clone();
            degraded.scale_edge_error(a, b, 10.0);
            let noisy = pipeline.run(&circuit, &degraded);
            let before = gates_on_edge(&base.routed.circuit, (a, b));
            let after = gates_on_edge(&noisy.routed.circuit, (a, b));
            assert!(
                after <= before,
                "{} on {} seed {seed}: degrading edge ({a},{b}) 10x raised its \
                 traffic from {before} to {after} gates",
                workload.label(),
                graph.name()
            );
        }
    }
}
