//! Property-based tests for layout, routing and basis translation: the
//! transpiler must preserve program structure for *any* workload/topology
//! combination, not just the curated ones.

use proptest::prelude::*;
use snailqc_circuit::{simulate, Circuit, Gate};
use snailqc_decompose::BasisGate;
use snailqc_topology::builders;
use snailqc_topology::CouplingGraph;
use snailqc_transpiler::{
    count_basis_gates, route, translate_to_basis, LayoutStrategy, Pipeline, RouterConfig,
};

/// Random logical circuit over `n` qubits with 1Q and 2Q gates.
fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(
        (0..5u8, 0..1000u32, 0..1000u32, 0.0..std::f64::consts::TAU),
        1..max_gates,
    )
    .prop_map(move |ops| {
        let mut c = Circuit::new(n);
        for (kind, a, b, angle) in ops {
            let q0 = a as usize % n;
            let mut q1 = b as usize % n;
            if q1 == q0 {
                q1 = (q0 + 1) % n;
            }
            match kind {
                0 => c.h(q0),
                1 => c.rz(angle, q0),
                2 => c.cx(q0, q1),
                3 => c.push(Gate::CPhase(angle), &[q0, q1]),
                _ => c.rzz(angle, q0, q1),
            }
        }
        c
    })
}

/// A small pool of devices with at least 8 qubits each.
fn device(idx: usize) -> CouplingGraph {
    match idx % 5 {
        0 => builders::line(9),
        1 => builders::ring(10),
        2 => builders::square_lattice(3, 3),
        3 => builders::hypercube(3),
        _ => builders::tree4(1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn routing_preserves_gate_multiset(circuit in arb_circuit(8, 30), dev in 0usize..5, seed in 0u64..500) {
        let graph = device(dev);
        let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
        let routed = route(&circuit, &graph, &layout, &RouterConfig::deterministic(seed));
        // Every non-SWAP gate of the output corresponds 1:1 to an input gate.
        // The router may interleave gates on independent qubits (a legal
        // topological reordering), so compare as multisets.
        let mut original: Vec<&'static str> =
            circuit.instructions().iter().map(|i| i.gate.name()).collect();
        let mut routed_names: Vec<&'static str> = routed
            .circuit
            .instructions()
            .iter()
            .filter(|i| !i.gate.is_swap())
            .map(|i| i.gate.name())
            .collect();
        original.sort_unstable();
        routed_names.sort_unstable();
        prop_assert_eq!(original, routed_names);
        prop_assert_eq!(routed.circuit.swap_count(), routed.swap_count);
    }

    #[test]
    fn routed_two_qubit_gates_respect_the_device(circuit in arb_circuit(8, 30), dev in 0usize..5, seed in 0u64..500) {
        let graph = device(dev);
        let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
        let routed = route(&circuit, &graph, &layout, &RouterConfig::deterministic(seed));
        for inst in routed.circuit.instructions() {
            if inst.is_two_qubit() {
                prop_assert!(graph.has_edge(inst.qubits[0], inst.qubits[1]));
            }
        }
    }

    #[test]
    fn final_layout_is_always_a_valid_injection(circuit in arb_circuit(8, 25), dev in 0usize..5, seed in 0u64..500) {
        let graph = device(dev);
        let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
        let routed = route(&circuit, &graph, &layout, &RouterConfig::deterministic(seed));
        let mut seen = std::collections::HashSet::new();
        for l in 0..circuit.num_qubits() {
            let p = routed.final_layout.physical(l);
            prop_assert!(p < graph.num_qubits());
            prop_assert!(seen.insert(p));
            prop_assert_eq!(routed.final_layout.logical(p), Some(l));
        }
    }

    #[test]
    fn translation_multiplies_within_worst_case_bounds(circuit in arb_circuit(6, 25)) {
        for basis in [BasisGate::Cnot, BasisGate::SqrtISwap, BasisGate::Syc] {
            let (translated, stats) = translate_to_basis(&circuit, basis);
            prop_assert_eq!(stats.input_two_qubit_gates, circuit.two_qubit_count());
            prop_assert_eq!(translated.two_qubit_count(), stats.output_basis_gates);
            prop_assert!(stats.output_basis_gates <= basis.worst_case() * circuit.two_qubit_count());
            prop_assert_eq!(count_basis_gates(&circuit, basis), stats.output_basis_gates);
            // Only the basis gate's mnemonic appears among 2Q gates.
            for inst in translated.instructions() {
                if inst.is_two_qubit() {
                    prop_assert_eq!(inst.gate.name(), basis.gate().name());
                }
            }
        }
    }

    #[test]
    fn pipeline_report_invariants_hold(circuit in arb_circuit(8, 25), dev in 0usize..5, seed in 0u64..200) {
        let graph = device(dev);
        let pipeline = Pipeline::builder()
            .layout(LayoutStrategy::Dense)
            .router(RouterConfig { trials: 1, seed, ..RouterConfig::default() })
            .translate_to(BasisGate::SqrtISwap)
            .build();
        let report = pipeline.run(&circuit, &graph).report;
        prop_assert_eq!(report.input_two_qubit_gates, circuit.two_qubit_count());
        prop_assert_eq!(
            report.routed_two_qubit_gates,
            report.input_two_qubit_gates + report.swap_count
        );
        prop_assert!(report.swap_depth <= report.swap_count);
        prop_assert!(report.basis_gate_depth <= report.basis_gate_count);
        prop_assert!(report.basis_gate_count >= report.routed_two_qubit_gates);
        prop_assert!(report.basis_gate_count <= 3 * report.routed_two_qubit_gates);
    }

    #[test]
    fn dense_layout_is_injective_on_any_device(circuit in arb_circuit(8, 20), dev in 0usize..5) {
        let graph = device(dev);
        let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
        let mut seen = std::collections::HashSet::new();
        for q in 0..circuit.num_qubits() {
            prop_assert!(seen.insert(layout.physical(q)));
        }
    }

    #[test]
    fn complete_device_is_always_swap_free(circuit in arb_circuit(8, 30), seed in 0u64..200) {
        let graph = builders::complete(8);
        let layout = LayoutStrategy::Trivial.compute(&circuit, &graph);
        let routed = route(&circuit, &graph, &layout, &RouterConfig::deterministic(seed));
        prop_assert_eq!(routed.swap_count, 0);
    }

    #[test]
    fn noise_aware_routing_still_respects_the_device(
        circuit in arb_circuit(8, 30),
        dev in 0usize..5,
        seed in 0u64..500,
        spread in 0.0f64..2.0,
        error_weight in 0.0f64..3.0,
    ) {
        let graph = builders::calibrated(&device(dev), 1e-3, spread, seed ^ 0xA5A5);
        let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
        let config = RouterConfig {
            trials: 1,
            seed,
            ..RouterConfig::noise_aware(error_weight)
        };
        let routed = route(&circuit, &graph, &layout, &config);
        for inst in routed.circuit.instructions() {
            if inst.is_two_qubit() {
                prop_assert!(graph.has_edge(inst.qubits[0], inst.qubits[1]));
            }
        }
        // Non-SWAP gates survive as a multiset (no gate lost to rerouting).
        let mut original: Vec<&'static str> =
            circuit.instructions().iter().map(|i| i.gate.name()).collect();
        let mut routed_names: Vec<&'static str> = routed
            .circuit
            .instructions()
            .iter()
            .filter(|i| !i.gate.is_swap())
            .map(|i| i.gate.name())
            .collect();
        original.sort_unstable();
        routed_names.sort_unstable();
        prop_assert_eq!(original, routed_names);
    }

    #[test]
    fn noise_aware_routing_preserves_semantics(
        circuit in arb_circuit(8, 20),
        dev in 0usize..2,
        seed in 0u64..200,
        error_weight in 0.0f64..3.0,
    ) {
        // Route onto an equal-sized calibrated device and compare
        // statevectors: the routed circuit must implement the original up to
        // the tracked qubit permutation, no matter how noisy the links are.
        let n = circuit.num_qubits();
        let base = if dev == 0 { builders::hypercube(3) } else { builders::ring(8) };
        prop_assert_eq!(base.num_qubits(), n);
        let graph = builders::calibrated(&base, 1e-3, 1.5, seed);
        let layout = LayoutStrategy::Trivial.compute(&circuit, &graph);
        let config = RouterConfig {
            trials: 1,
            seed,
            ..RouterConfig::noise_aware(error_weight)
        };
        let routed = route(&circuit, &graph, &layout, &config);
        let sv_original = simulate(&circuit);
        let sv_routed = simulate(&routed.circuit);
        let perm: Vec<usize> = (0..n)
            .map(|p| routed.final_layout.logical(p).unwrap_or(p))
            .collect();
        let sv_logical = sv_routed.permute_qubits(&perm);
        let fidelity = sv_original.fidelity(&sv_logical);
        prop_assert!(
            fidelity > 1.0 - 1e-7,
            "noise-aware routing broke semantics: fidelity {}",
            fidelity
        );
        // The dedicated verification engine must reach the same conclusion.
        let verdict = snailqc_sim::verify_equivalent(&circuit, &routed);
        prop_assert!(verdict.is_equivalent(), "{verdict}");
    }

    /// `verify_equivalent` endorses every routed circuit on every device in
    /// the pool — the sim crate's dense engine handles the general
    /// (non-Clifford) circuits arb_circuit produces, including routes onto
    /// more physical qubits than the circuit has logical ones. Devices above
    /// the dense ceiling fall back to Pauli spot checks, which must at least
    /// be consistent (never a refutation).
    #[test]
    fn verification_engine_endorses_routed_circuits(
        circuit in arb_circuit(8, 20),
        dev in 0usize..5,
        seed in 0u64..500,
    ) {
        let graph = device(dev);
        let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
        let routed = route(&circuit, &graph, &layout, &RouterConfig::deterministic(seed));
        let verdict = snailqc_sim::verify_equivalent(&circuit, &routed);
        if graph.num_qubits() <= snailqc_sim::DENSE_VERIFY_MAX_QUBITS || circuit.is_clifford() {
            prop_assert!(verdict.is_equivalent(), "dev={dev} seed={seed}: {verdict}");
        } else {
            prop_assert!(verdict.is_consistent(), "dev={dev} seed={seed}: {verdict}");
        }
    }

    /// Routed Clifford circuits are verified by the stabilizer engine —
    /// exact group equality, no floating-point tolerance involved.
    #[test]
    fn clifford_routes_are_stabilizer_verified(
        dev in 0usize..5,
        gates in 10usize..60,
        seed in 0u64..500,
    ) {
        let circuit = snailqc_workloads::random_clifford_circuit(8, gates, seed);
        prop_assert!(circuit.is_clifford());
        let graph = device(dev);
        let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
        let routed = route(&circuit, &graph, &layout, &RouterConfig::deterministic(seed));
        let verdict = snailqc_sim::verify_equivalent(&circuit, &routed);
        prop_assert!(verdict.is_equivalent(), "dev={dev} seed={seed}: {verdict}");
    }
}
