//! Exact routing-cache hit/miss accounting under concurrent first use.
//!
//! This is deliberately the only test in this binary: the observability
//! counters are process-global, so sharing a binary with any other test
//! that routes would leak foreign cache traffic into the deltas asserted
//! here. One `#[test]` also means no sibling test races the counters while
//! the parallel batches run.

use rayon::prelude::*;
use snailqc_topology::{builders, catalog};
use snailqc_transpiler::{dense_layout, route_with_cache, RouterConfig, RoutingCache};

fn cache_counters() -> (u64, u64) {
    let snapshot = snailqc_obs::snapshot();
    (
        snapshot.counter("routing_cache.hits").unwrap_or(0),
        snapshot.counter("routing_cache.misses").unwrap_or(0),
    )
}

#[test]
fn parallel_first_use_counts_exactly_one_miss_per_matrix() {
    snailqc_obs::enable();
    const CALLERS: u64 = 16;

    // Noise-blind: the only distance state is the hop matrix, and every
    // route call accesses the cache exactly once. Sixteen threads race the
    // first build; the `get_or_init` closure runs once, so exactly one of
    // them may count the miss — everyone else must count a hit.
    let graph = catalog::by_name("heavy-hex-84").expect("catalog");
    let circuit = snailqc_workloads::ghz(10);
    let config = RouterConfig::default();
    let layout = dense_layout(&circuit, &graph);
    let cache = RoutingCache::new();
    let (hits_before, misses_before) = cache_counters();
    let routed: Vec<usize> = (0..CALLERS)
        .collect::<Vec<_>>()
        .par_iter()
        .map(|_| route_with_cache(&circuit, &graph, &layout, &config, &cache).swap_count)
        .collect();
    assert!(routed.iter().all(|&s| s == routed[0]), "non-deterministic");
    let (hits, misses) = cache_counters();
    assert_eq!(
        misses - misses_before,
        1,
        "hop matrix must miss exactly once"
    );
    assert_eq!(
        hits - hits_before,
        CALLERS - 1,
        "every other caller is a hit"
    );

    // Noise-aware on a calibrated graph: two matrices (hops + one weighted
    // scoring store), so two misses total across another racing batch, and
    // hits + misses still equals the exact number of cache accesses (two
    // per call).
    let noisy = builders::calibrated(&graph, 1e-3, 1.5, 7);
    let config = RouterConfig::default().with_error_weight(1.0);
    let layout = dense_layout(&circuit, &noisy);
    let cache = RoutingCache::new();
    let (hits_before, misses_before) = cache_counters();
    let _: Vec<usize> = (0..CALLERS)
        .collect::<Vec<_>>()
        .par_iter()
        .map(|_| route_with_cache(&circuit, &noisy, &layout, &config, &cache).swap_count)
        .collect();
    let (hits, misses) = cache_counters();
    assert_eq!(misses - misses_before, 2, "one miss per matrix, no more");
    assert_eq!(
        (hits - hits_before) + (misses - misses_before),
        2 * CALLERS,
        "hits + misses must equal the exact number of cache accesses"
    );
}
