//! Kiloqubit-scale regression suite: digest stability on 625- and
//! 1024-qubit devices (two runs, and across trial parallelism), plus the
//! disconnected-device layout/routing semantics the compact-distance rework
//! fixed.
//!
//! The graphs are built from `snailqc_topology::builders` directly (the
//! same generators behind `devices/grid_625.json` and
//! `devices/hypercube_1024.json`) so this crate's tests stay independent of
//! the device layer above it.

use snailqc_topology::{builders, CouplingGraph};
use snailqc_transpiler::{
    dense_layout, route, try_dense_layout, LayoutStrategy, Pipeline, RoutedCircuit, RouterConfig,
};

/// FNV-1a digest of the routed instruction stream plus the final layout —
/// the same fingerprint the frozen `router_equivalence` suite uses.
fn digest(routed: &RoutedCircuit) -> u64 {
    let mut bytes = Vec::new();
    for inst in routed.circuit.instructions() {
        bytes.extend_from_slice(format!("{:?}|{:?};", inst.gate, inst.qubits).as_bytes());
    }
    bytes.extend_from_slice(format!("final={:?}", routed.final_layout.as_slice()).as_bytes());
    snailqc_util::fnv1a_64(&bytes)
}

fn route_kiloqubit(graph: &CouplingGraph, qubits: usize) -> RoutedCircuit {
    let circuit = snailqc_workloads::ghz(qubits);
    let layout = dense_layout(&circuit, graph);
    route(&circuit, graph, &layout, &RouterConfig::default())
}

/// Beyond digest stability: the stabilizer engine proves the kiloqubit
/// routes are *semantically* correct — GHZ is Clifford, so equivalence on
/// 625 and 1024 physical qubits is decided exactly, with no tolerance.
#[test]
fn kiloqubit_routes_are_stabilizer_verified() {
    let cells = [
        (builders::square_lattice(25, 25), 600usize),
        (builders::hypercube(10), 1000),
    ];
    for (graph, qubits) in &cells {
        let circuit = snailqc_workloads::ghz(*qubits);
        let layout = dense_layout(&circuit, graph);
        let routed = route(&circuit, graph, &layout, &RouterConfig::default());
        let verdict = snailqc_sim::verify_equivalent(&circuit, &routed);
        assert!(verdict.is_equivalent(), "{}: {verdict}", graph.name());
    }
}

/// Two independent runs on the same kiloqubit cell must agree bit for bit,
/// and the digest must not depend on how many worker threads the trial
/// fan-out uses (the `RAYON_NUM_THREADS` knob).
#[test]
fn kiloqubit_digests_are_stable_across_runs_and_parallelism() {
    let cells = [
        (builders::square_lattice(25, 25), 600usize),
        (builders::hypercube(10), 1000),
    ];
    for (graph, qubits) in &cells {
        let first = digest(&route_kiloqubit(graph, *qubits));
        let second = digest(&route_kiloqubit(graph, *qubits));
        assert_eq!(first, second, "{}: rerun changed the digest", graph.name());

        for threads in ["1", "4"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            let parallel = digest(&route_kiloqubit(graph, *qubits));
            std::env::remove_var("RAYON_NUM_THREADS");
            assert_eq!(
                first,
                parallel,
                "{}: digest depends on trial parallelism ({threads} threads)",
                graph.name()
            );
        }
    }
}

/// A layout on a fragmented device sits inside one connected component, and
/// routing accepts it — the end-to-end path the old
/// `assert!(graph.is_connected())` used to reject outright.
#[test]
fn disconnected_device_routes_within_the_largest_component() {
    // A 4×4 grid (16 qubits) plus a 6-qubit line, fused into one 22-qubit
    // graph with no edges between the parts.
    let mut graph = CouplingGraph::new("grid-plus-line", 22);
    for (a, b) in builders::square_lattice(4, 4).edges() {
        graph.add_edge(a, b);
    }
    for q in 16..21 {
        graph.add_edge(q, q + 1);
    }

    let circuit = snailqc_workloads::ghz(10);
    let layout = try_dense_layout(&circuit, &graph).expect("largest component fits 10 qubits");
    // Every occupied physical qubit lands in the 16-qubit grid component.
    for logical in 0..circuit.num_qubits() {
        assert!(layout.physical(logical) < 16, "layout strayed off the grid");
    }
    let routed = route(&circuit, &graph, &layout, &RouterConfig::default());
    assert_eq!(digest(&routed), digest(&routed), "routable");

    // Asking for more qubits than the largest component holds is an error
    // carrying the component geometry, not a panic or a bogus layout.
    let too_big = snailqc_workloads::ghz(20);
    let err = try_dense_layout(&too_big, &graph).expect_err("20 > 16");
    assert_eq!(err.requested, 20);
    assert_eq!(err.largest_component, 16);
    assert_eq!(err.components, 2);

    // The pipeline surfaces the same failure as a `TranspileError`.
    let err = Pipeline::builder()
        .layout(LayoutStrategy::Dense)
        .build()
        .try_run(&too_big, &graph)
        .expect_err("pipeline must refuse the placement");
    assert!(
        err.to_string().contains("largest connected component"),
        "unexpected error text: {err}"
    );
}
