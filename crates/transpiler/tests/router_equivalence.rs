//! Bitwise router-equivalence suite.
//!
//! The PR-5 hot-path overhaul (CSR coupling graphs, incremental SABRE
//! scoring, parallel trials) must not change a single routed gate. This
//! suite freezes an FNV-1a digest of the full routed instruction stream —
//! gate variants, parameters and physical qubit operands, plus the final
//! layout — for every catalog topology in both a noise-blind and a
//! noise-aware (heterogeneous calibrated edges, `error_weight = 1`)
//! configuration, captured from the pre-overhaul router at commit 7cd796e.
//!
//! Any future change to candidate enumeration order, RNG draw order, or
//! floating-point summation order in the router trips these digests.
//!
//! Regenerate the tables (only when an *intentional* routing change lands)
//! with:
//!
//! ```text
//! SNAILQC_BLESS=1 cargo test -p snailqc-transpiler --test router_equivalence -- --nocapture
//! ```

use snailqc_sim::{verify_equivalent, Verdict, DENSE_VERIFY_MAX_QUBITS};
use snailqc_topology::{builders, catalog};
use snailqc_transpiler::{route, LayoutStrategy, RoutedCircuit, RouterConfig};
use snailqc_workloads::Workload;

/// FNV-1a digest of a routed circuit: every instruction's gate (debug form
/// covers the variant and any `f64` parameters bit-exactly — equal bits
/// print identically) and operand list, then the final layout permutation.
fn digest(routed: &RoutedCircuit) -> u64 {
    let mut bytes = Vec::new();
    for inst in routed.circuit.instructions() {
        bytes.extend_from_slice(format!("{:?}|{:?};", inst.gate, inst.qubits).as_bytes());
    }
    bytes.extend_from_slice(format!("final={:?}", routed.final_layout.as_slice()).as_bytes());
    snailqc_util::fnv1a_64(&bytes)
}

fn route_cell(name: &str, noise_aware: bool) -> RoutedCircuit {
    let graph = catalog::by_name(name).unwrap();
    let (graph, config, workload) = if noise_aware {
        (
            builders::calibrated(&graph, 1e-3, 1.2, 17),
            RouterConfig::noise_aware(1.0),
            Workload::QaoaVanilla,
        )
    } else {
        (graph, RouterConfig::default(), Workload::QuantumVolume)
    };
    let circuit = workload.generate(12, 7);
    let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
    route(&circuit, &graph, &layout, &config)
}

/// `(catalog name, noise-blind digest, noise-aware digest)` frozen from the
/// pre-overhaul router. Noise-blind cells route Quantum Volume (12, 7) with
/// `RouterConfig::default()`; noise-aware cells route QAOA Vanilla (12, 7)
/// with `RouterConfig::noise_aware(1.0)` on a `calibrated(1e-3, 1.2, 17)`
/// copy of the graph.
const FROZEN: [(&str, u64, u64); 16] = [
    ("heavy-hex-20", 0xe711a9c2bbefdb6b, 0xa75042d92e9a42ee),
    ("hex-lattice-20", 0x5d3b056b6a63e60a, 0xe1529fa5062a32f3),
    ("square-lattice-16", 0xb074677d630ca68a, 0x8dd7843d79cb467c),
    (
        "lattice-alt-diagonals-16",
        0xd0a2fe0f307dda56,
        0x3717fe0139eb9667,
    ),
    ("hypercube-16", 0x820f0d4861275979, 0x1c51a578567252b7),
    ("tree-20", 0xf53fc88932078a19, 0xfc59d67680a0b985),
    ("tree-rr-20", 0x87b3ee5016bc63b3, 0x8d251c688a65d32b),
    ("corral11-16", 0x6146a8d82d8431cb, 0xa11c8822c11d943a),
    ("corral12-16", 0xf3d02398fdac3308, 0xbdfc6430d41929f4),
    ("heavy-hex-84", 0x0dbf1337390e780e, 0xf9e02768c6d87a10),
    ("hex-lattice-84", 0x08236cd6bda8ecd9, 0xaa8ceb49579e5bd1),
    ("square-lattice-84", 0x49cac421b065f5e1, 0x54b4e4c76ee32f6a),
    (
        "lattice-alt-diagonals-84",
        0x8f1212b5a205de23,
        0x6d319517de283dbf,
    ),
    ("hypercube-84", 0x90f181d77dbba17b, 0x2adc1268ae2e6a6d),
    ("tree-84", 0xeda4d456de0b192e, 0xfc59d67680a0b985),
    ("tree-rr-84", 0xe855985248f1c989, 0xad5871155722f50c),
];

#[test]
fn routed_output_is_bitwise_identical_to_the_pre_overhaul_router() {
    let bless = std::env::var("SNAILQC_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false);
    assert_eq!(
        catalog::names().len(),
        FROZEN.len(),
        "catalog grew; re-bless"
    );
    if bless {
        println!("const FROZEN: [(&str, u64, u64); {}] = [", FROZEN.len());
    }
    for name in catalog::names() {
        let blind = digest(&route_cell(name, false));
        let aware = digest(&route_cell(name, true));
        if bless {
            println!("    (\"{name}\", {blind:#018x}, {aware:#018x}),");
            continue;
        }
        let (_, frozen_blind, frozen_aware) = FROZEN
            .iter()
            .find(|(n, _, _)| *n == name)
            .unwrap_or_else(|| panic!("{name} missing from FROZEN; re-bless"));
        assert_eq!(
            blind, *frozen_blind,
            "{name}: noise-blind routed output drifted from the frozen pre-overhaul router"
        );
        assert_eq!(
            aware, *frozen_aware,
            "{name}: noise-aware routed output drifted from the frozen pre-overhaul router"
        );
    }
    if bless {
        println!("];");
    }
}

/// Digest equality says the router's output hasn't *changed*; this test
/// says it is *correct*. Every noise-blind catalog cell is checked against
/// the source circuit with the sim crate's verification engine: devices
/// small enough for the dense engine must prove equivalence outright, and
/// the larger 84-qubit devices (QV is non-Clifford, so the stabilizer
/// engine cannot close them) must at least pass Pauli spot checks.
#[test]
fn frozen_cells_are_semantically_verified() {
    let circuit = Workload::QuantumVolume.generate(12, 7);
    for name in catalog::names() {
        let graph = catalog::by_name(name).unwrap();
        let routed = route_cell(name, false);
        let verdict = verify_equivalent(&circuit, &routed);
        if graph.num_qubits() <= DENSE_VERIFY_MAX_QUBITS {
            assert!(verdict.is_equivalent(), "{name}: {verdict}");
        } else {
            assert!(
                verdict.is_consistent(),
                "{name}: routed output refuted: {verdict}"
            );
        }
    }
}

/// On an 84-qubit device a routed *Clifford* QV circuit is provable
/// exactly: the stabilizer engine scales where dense simulation cannot.
#[test]
fn clifford_qv_is_exactly_verified_on_the_large_devices() {
    let circuit = snailqc_workloads::clifford_qv(12, 7, 7);
    for name in ["heavy-hex-84", "hypercube-84", "tree-rr-84"] {
        let graph = catalog::by_name(name).unwrap();
        let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
        let routed = route(&circuit, &graph, &layout, &RouterConfig::default());
        let verdict = verify_equivalent(&circuit, &routed);
        assert!(matches!(verdict, Verdict::Equivalent), "{name}: {verdict}");
    }
}

#[test]
fn tracing_enabled_routing_is_bitwise_identical_to_the_frozen_digests() {
    // The observability acceptance criterion: with spans and counters
    // recording, every catalog topology routes to the exact same frozen
    // digests as the uninstrumented baseline — instrumentation observes,
    // it never steers. (Skipped under SNAILQC_BLESS so blessing prints one
    // table.)
    if std::env::var("SNAILQC_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return;
    }
    snailqc_obs::enable();
    for &(name, frozen_blind, frozen_aware) in &FROZEN {
        assert_eq!(
            digest(&route_cell(name, false)),
            frozen_blind,
            "{name}: noise-blind routed output drifted with tracing enabled"
        );
        assert_eq!(
            digest(&route_cell(name, true)),
            frozen_aware,
            "{name}: noise-aware routed output drifted with tracing enabled"
        );
    }
    // And the run really was recorded: trial spans and router counters.
    let spans = snailqc_obs::take_spans();
    assert!(
        spans.iter().any(|s| s.name == "router.trial"),
        "no router.trial spans recorded"
    );
    let snapshot = snailqc_obs::snapshot();
    let trials = snapshot.counter("router.trials_run").unwrap_or(0);
    let scored = snapshot
        .counter("router.swap_candidates_scored")
        .unwrap_or(0);
    assert!(trials >= 2 * FROZEN.len() as u64, "trials_run = {trials}");
    assert!(scored > 0, "swap_candidates_scored = {scored}");
    snailqc_obs::disable();
}
