//! Disabled-path overhead guard for the observability layer.
//!
//! The span/counter call sites sit next to (and, for the trial counters,
//! inside) the router hot path, so the disabled fast path has to stay a
//! relaxed atomic load + branch. This test routes the 84-qubit cell with
//! recording off — the real workload the instrumentation rides along with —
//! then micro-benchmarks the disabled ops and fails if one costs more than
//! a (deliberately generous, debug-build-safe) per-op budget. It catches
//! structural regressions — a lock, an allocation, or an eager snapshot on
//! the disabled path — not nanosecond drift.

use std::time::Instant;

use snailqc_obs as obs;
use snailqc_topology::catalog;
use snailqc_transpiler::{route, LayoutStrategy, RouterConfig};
use snailqc_workloads::Workload;

/// Upper bound per disabled span+counter+histogram op, in nanoseconds.
/// The real cost is a few relaxed loads (single-digit ns in release); the
/// budget leaves two orders of magnitude of headroom for unoptimized debug
/// builds and noisy CI machines while still catching an accidental mutex
/// or allocation (micro- not nanosecond territory once contended).
const BUDGET_NANOS_PER_OP: u64 = 2_000;
const OPS: u64 = 200_000;

#[test]
fn disabled_span_and_counter_ops_stay_within_budget_on_the_84q_cell() {
    obs::disable();

    // The workload the instrumentation is embedded in: route the 84-qubit
    // heavy-hex cell with recording off. This exercises every disabled call
    // site in the router inner loop and must record nothing.
    let graph = catalog::by_name("heavy-hex-84").unwrap();
    let circuit = Workload::QuantumVolume.generate(24, 11);
    let layout = LayoutStrategy::Dense.compute(&circuit, &graph);
    let routed = route(&circuit, &graph, &layout, &RouterConfig::default());
    assert!(routed.swap_count > 0, "cell routed trivially");
    assert!(
        obs::take_spans().is_empty(),
        "disabled routing recorded spans"
    );
    assert_eq!(
        obs::snapshot().counter("router.trials_run").unwrap_or(0),
        0,
        "disabled routing recorded counters"
    );

    // Micro-benchmark the disabled ops themselves. Cached handles first —
    // that is what a hot loop would hold.
    let counter = obs::counter("overhead.guard_counter");
    let histogram = obs::histogram("overhead.guard_histogram");
    let started = Instant::now();
    for i in 0..OPS {
        let _span = obs::span("overhead.guard_span");
        counter.add(i);
        histogram.record(i);
    }
    let elapsed = started.elapsed();

    let per_op = elapsed.as_nanos() as u64 / OPS;
    assert!(
        per_op <= BUDGET_NANOS_PER_OP,
        "disabled span+counter+histogram op took {per_op} ns (budget {BUDGET_NANOS_PER_OP} ns) \
         over {OPS} iterations — did something heavy land on the disabled path?"
    );
    assert_eq!(counter.value(), 0, "disabled counter accumulated");
    assert!(obs::take_spans().is_empty(), "disabled spans recorded");
}
