//! Clifford workload corpus for the stabilizer verification engine.
//!
//! Three generators whose every gate lies in the Clifford group (see
//! [`snailqc_circuit::Gate::is_clifford`]), so the `snailqc-sim` tableau
//! engine can verify their routed forms exactly at any size:
//!
//! * [`clifford_ghz`] — GHZ preparation at the catalog device sizes (a thin
//!   re-export of [`crate::ghz()`], which is already Clifford).
//! * [`clifford_qv`] — Quantum Volume layer structure with the Haar-random
//!   SU(4) blocks replaced by random two-qubit *Clifford* blocks.
//! * [`random_clifford_circuit`] — an RB-style stream of uniformly drawn
//!   one- and two-qubit Clifford gates on random operands.
//!
//! All generators are deterministic per seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use snailqc_circuit::{Circuit, Gate};

/// One-qubit Clifford generators sampled by the random builders. Products of
/// these cover the full 24-element single-qubit Clifford group.
const CLIFFORD_1Q: [Gate; 8] = [
    Gate::H,
    Gate::S,
    Gate::Sdg,
    Gate::SX,
    Gate::X,
    Gate::Y,
    Gate::Z,
    Gate::I,
];

/// Two-qubit Clifford entanglers sampled by the random builders, including
/// the parameterised gates at their Clifford angles.
fn clifford_2q(rng: &mut StdRng) -> Gate {
    match rng.gen_range(0..6) {
        0 => Gate::CX,
        1 => Gate::CZ,
        2 => Gate::ISwap,
        3 => Gate::Swap,
        4 => Gate::RZZ(std::f64::consts::FRAC_PI_2),
        _ => Gate::CPhase(std::f64::consts::PI),
    }
}

/// GHZ state preparation — already a pure Clifford circuit; re-exported here
/// so the Clifford corpus is self-contained.
pub fn clifford_ghz(num_qubits: usize) -> Circuit {
    crate::ghz(num_qubits)
}

/// A random two-qubit Clifford block: a short dressing of one-qubit
/// Cliffords around one or two entanglers.
fn clifford_block(circuit: &mut Circuit, a: usize, b: usize, rng: &mut StdRng) {
    for &q in &[a, b] {
        for _ in 0..rng.gen_range(1..3usize) {
            let g = CLIFFORD_1Q[rng.gen_range(0..CLIFFORD_1Q.len())].clone();
            circuit.push(g, &[q]);
        }
    }
    circuit.push(clifford_2q(rng), &[a, b]);
    if rng.gen_bool(0.5) {
        for &q in &[a, b] {
            let g = CLIFFORD_1Q[rng.gen_range(0..CLIFFORD_1Q.len())].clone();
            circuit.push(g, &[q]);
        }
        circuit.push(clifford_2q(rng), &[a, b]);
    }
}

/// A Clifford-restricted Quantum Volume circuit: `depth` layers of a random
/// qubit pairing, each pair coupled by a random two-qubit Clifford block
/// instead of a Haar-random SU(4).
pub fn clifford_qv(num_qubits: usize, depth: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2, "clifford QV needs at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(num_qubits);
    let mut order: Vec<usize> = (0..num_qubits).collect();
    for _ in 0..depth {
        order.shuffle(&mut rng);
        for pair in order.chunks_exact(2) {
            clifford_block(&mut circuit, pair[0], pair[1], &mut rng);
        }
    }
    circuit
}

/// An RB-style random Clifford circuit: `num_gates` gates drawn uniformly
/// from the one-qubit Clifford generators (2/3 of draws) and the two-qubit
/// entanglers (1/3 of draws) on uniformly random operands.
pub fn random_clifford_circuit(num_qubits: usize, num_gates: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2, "random clifford needs at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(num_qubits);
    for _ in 0..num_gates {
        if rng.gen_range(0..3) < 2 {
            let q = rng.gen_range(0..num_qubits);
            let g = CLIFFORD_1Q[rng.gen_range(0..CLIFFORD_1Q.len())].clone();
            circuit.push(g, &[q]);
        } else {
            let a = rng.gen_range(0..num_qubits);
            let mut b = rng.gen_range(0..num_qubits);
            if b == a {
                b = (a + 1) % num_qubits;
            }
            circuit.push(clifford_2q(&mut rng), &[a, b]);
        }
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_corpus_circuit_is_clifford() {
        assert!(clifford_ghz(9).is_clifford());
        for seed in 0..5 {
            assert!(clifford_qv(8, 8, seed).is_clifford(), "qv seed {seed}");
            assert!(
                random_clifford_circuit(8, 60, seed).is_clifford(),
                "rb seed {seed}"
            );
        }
        // The real QV workload is NOT Clifford — the corpus is distinct.
        assert!(!crate::quantum_volume(8, 8, 0).is_clifford());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(clifford_qv(8, 6, 3), clifford_qv(8, 6, 3));
        assert_ne!(clifford_qv(8, 6, 3), clifford_qv(8, 6, 4));
        assert_eq!(
            random_clifford_circuit(10, 50, 7),
            random_clifford_circuit(10, 50, 7)
        );
        assert_ne!(
            random_clifford_circuit(10, 50, 7),
            random_clifford_circuit(10, 50, 8)
        );
    }

    #[test]
    fn qv_layers_pair_disjoint_qubits() {
        let c = clifford_qv(8, 5, 11);
        assert!(
            c.two_qubit_count() >= 5 * 4,
            "at least one entangler per pair"
        );
    }
}
