//! GHZ state preparation circuits.
//!
//! SupermarQ's GHZ benchmark: a Hadamard followed by a CNOT chain. The
//! entangling pattern is a path, so the benchmark rewards topologies with
//! good *local* connectivity (the paper notes the Tree excels here, §6.2).

use snailqc_circuit::Circuit;

/// Generates an `num_qubits`-qubit GHZ preparation circuit
/// (`H` on qubit 0 followed by a CNOT chain).
pub fn ghz(num_qubits: usize) -> Circuit {
    assert!(num_qubits >= 2, "GHZ needs at least two qubits");
    let mut c = Circuit::new(num_qubits);
    c.h(0);
    for q in 0..num_qubits - 1 {
        c.cx(q, q + 1);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_circuit::simulate;

    #[test]
    fn gate_counts() {
        for n in [2, 5, 16, 80] {
            let c = ghz(n);
            assert_eq!(c.two_qubit_count(), n - 1, "n = {n}");
            assert_eq!(c.gate_counts()["h"], 1);
        }
    }

    #[test]
    fn produces_ghz_state() {
        for n in [2, 4, 7] {
            let sv = simulate(&ghz(n));
            assert!((sv.probability(0) - 0.5).abs() < 1e-9, "n = {n}");
            assert!((sv.probability((1 << n) - 1) - 0.5).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn interactions_form_a_chain() {
        let c = ghz(6);
        assert_eq!(
            c.interaction_pairs(),
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        );
    }

    #[test]
    fn depth_is_linear() {
        let c = ghz(10);
        assert_eq!(c.two_qubit_depth(), 9);
    }
}
