//! QAOA "vanilla" proxy circuits.
//!
//! Follows SupermarQ's `QAOAVanillaProxy`: depth-1 QAOA applied to a
//! fully-connected Sherrington–Kirkpatrick model with random ±1 couplings.
//! The cost layer therefore contains one `ZZ` interaction for every qubit
//! pair, which — like QFT — makes the benchmark dominated by data movement on
//! sparse topologies (paper §3.2, Fig. 4).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use snailqc_circuit::{Circuit, Gate};

/// Generates a depth-`p` vanilla QAOA circuit on the SK model over
/// `num_qubits` qubits, with couplings drawn from ±1 using `seed`.
pub fn qaoa_vanilla(num_qubits: usize, p: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    // Random ±1 SK couplings.
    let mut weights = Vec::new();
    for i in 0..num_qubits {
        for j in (i + 1)..num_qubits {
            let w: f64 = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            weights.push((i, j, w));
        }
    }
    // Fixed representative variational angles (the structure, not the values,
    // determines transpilation cost).
    let gamma = 0.4;
    let beta = 0.8;

    let mut c = Circuit::new(num_qubits);
    for q in 0..num_qubits {
        c.h(q);
    }
    for layer in 0..p {
        let scale = 1.0 / (layer as f64 + 1.0);
        for &(i, j, w) in &weights {
            c.push(Gate::RZZ(2.0 * gamma * w * scale), &[i, j]);
        }
        for q in 0..num_qubits {
            c.rx(2.0 * beta * scale, q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_layer_covers_every_pair() {
        for n in [3, 5, 8, 12] {
            let c = qaoa_vanilla(n, 1, 1);
            assert_eq!(c.two_qubit_count(), n * (n - 1) / 2, "n = {n}");
            let mut pairs = c.interaction_pairs();
            pairs.sort_unstable();
            pairs.dedup();
            assert_eq!(pairs.len(), n * (n - 1) / 2, "n = {n}");
        }
    }

    #[test]
    fn single_qubit_layer_counts() {
        let n = 6;
        let c = qaoa_vanilla(n, 1, 2);
        let counts = c.gate_counts();
        assert_eq!(counts["h"], n);
        assert_eq!(counts["rx"], n);
        assert_eq!(counts["rzz"], n * (n - 1) / 2);
    }

    #[test]
    fn depth_p_scales_two_qubit_count() {
        let n = 5;
        let c1 = qaoa_vanilla(n, 1, 3);
        let c3 = qaoa_vanilla(n, 3, 3);
        assert_eq!(c3.two_qubit_count(), 3 * c1.two_qubit_count());
    }

    #[test]
    fn weights_are_seeded() {
        let a = qaoa_vanilla(6, 1, 5);
        let b = qaoa_vanilla(6, 1, 5);
        let c = qaoa_vanilla(6, 1, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn couplings_are_plus_minus_one() {
        let c = qaoa_vanilla(5, 1, 9);
        for inst in c.instructions() {
            if let Gate::RZZ(theta) = inst.gate {
                assert!((theta.abs() - 0.8).abs() < 1e-12, "theta = {theta}");
            }
        }
    }
}
