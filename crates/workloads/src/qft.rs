//! Quantum Fourier Transform circuits.
//!
//! The textbook construction used by Qiskit's `QFT` class: a cascade of
//! Hadamards and controlled-phase rotations, optionally followed by the
//! qubit-reversal SWAP network (enabled by default, as in the paper's
//! experiments). QFT is the paper's stress test for long-range connectivity —
//! every qubit interacts with every other qubit exactly once.

use snailqc_circuit::Circuit;
use std::f64::consts::PI;

/// Generates an `num_qubits`-qubit QFT circuit.
///
/// `with_swaps` appends the final qubit-reversal SWAP network (⌊n/2⌋ SWAPs),
/// matching Qiskit's default.
pub fn qft(num_qubits: usize, with_swaps: bool) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for i in 0..num_qubits {
        c.h(i);
        for j in (i + 1)..num_qubits {
            let angle = PI / f64::powi(2.0, (j - i) as i32);
            c.cp(angle, j, i);
        }
    }
    if with_swaps {
        for i in 0..num_qubits / 2 {
            c.swap(i, num_qubits - 1 - i);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_circuit::simulate;

    #[test]
    fn gate_counts_follow_closed_form() {
        for n in [2, 3, 5, 8, 16] {
            let c = qft(n, true);
            let counts = c.gate_counts();
            assert_eq!(counts["h"], n, "n = {n}");
            assert_eq!(counts["cp"], n * (n - 1) / 2, "n = {n}");
            assert_eq!(counts.get("swap").copied().unwrap_or(0), n / 2, "n = {n}");
        }
    }

    #[test]
    fn without_swaps_has_no_swaps() {
        let c = qft(6, false);
        assert_eq!(c.swap_count(), 0);
        assert_eq!(c.two_qubit_count(), 15);
    }

    #[test]
    fn every_qubit_pair_interacts_exactly_once() {
        let n = 7;
        let c = qft(n, false);
        let mut pairs = c.interaction_pairs();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), n * (n - 1) / 2);
    }

    #[test]
    fn qft_of_zero_state_is_uniform_superposition() {
        let n = 4;
        let c = qft(n, true);
        let sv = simulate(&c);
        let expected = 1.0 / f64::powi(2.0, n as i32);
        for idx in 0..(1 << n) {
            assert!((sv.probability(idx) - expected).abs() < 1e-9, "index {idx}");
        }
    }

    #[test]
    fn qft_followed_by_inverse_is_identity() {
        let n = 5;
        let c = qft(n, true);
        let mut round_trip = c.clone();
        round_trip.compose(&c.inverse());
        let sv = simulate(&round_trip);
        assert!((sv.probability(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn phase_angles_decay_geometrically() {
        let c = qft(4, false);
        // The first controlled-phase on qubit 0 uses π/2, the next π/4, …
        let mut angles = Vec::new();
        for inst in c.instructions() {
            if let snailqc_circuit::Gate::CPhase(a) = inst.gate {
                if inst.qubits[1] == 0 {
                    angles.push(a);
                }
            }
        }
        assert_eq!(angles.len(), 3);
        assert!((angles[0] - PI / 2.0).abs() < 1e-12);
        assert!((angles[1] - PI / 4.0).abs() < 1e-12);
        assert!((angles[2] - PI / 8.0).abs() < 1e-12);
    }
}
