//! Quantum Volume model circuits.
//!
//! The standard QV construction (Cross et al. 2019, as implemented by Qiskit's
//! `QuantumVolume` class): `depth` layers, each consisting of a random
//! permutation of the qubits followed by Haar-random SU(4) blocks on the
//! ⌊n/2⌋ resulting pairs. QV circuits are the paper's headline workload (the
//! 2.57×/5.63× SWAP and 3.16×/6.11× 2Q-gate reductions are averaged over QV
//! sizes 16–80).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use snailqc_circuit::{Circuit, Gate};
use snailqc_math::random::haar_unitary4;

/// Generates a Quantum Volume model circuit on `num_qubits` qubits with
/// `depth` layers of random-pairing SU(4) blocks.
pub fn quantum_volume(num_qubits: usize, depth: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2, "quantum volume needs at least two qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new(num_qubits);
    let mut order: Vec<usize> = (0..num_qubits).collect();
    for _ in 0..depth {
        order.shuffle(&mut rng);
        for pair in order.chunks_exact(2) {
            let u = haar_unitary4(&mut rng);
            circuit.push(Gate::Unitary2(u), &[pair[0], pair[1]]);
        }
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_circuit::simulate;

    #[test]
    fn gate_count_matches_layer_structure() {
        for n in [2, 4, 5, 8, 9] {
            let c = quantum_volume(n, n, 3);
            assert_eq!(c.two_qubit_count(), (n / 2) * n, "n = {n}");
            assert_eq!(c.len(), (n / 2) * n);
        }
    }

    #[test]
    fn all_gates_are_two_qubit_unitaries() {
        let c = quantum_volume(6, 6, 1);
        for inst in c.instructions() {
            assert_eq!(inst.gate.name(), "unitary2");
            assert!(inst.gate.matrix4().unwrap().is_unitary(1e-9));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed_and_distinct_across_seeds() {
        let a = quantum_volume(6, 6, 10);
        let b = quantum_volume(6, 6, 10);
        let c = quantum_volume(6, 6, 11);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn each_layer_touches_disjoint_pairs() {
        let n = 8;
        let c = quantum_volume(n, n, 5);
        // Gates come out layer by layer: within each chunk of n/2 gates the
        // operand sets are disjoint.
        for layer in c.instructions().chunks(n / 2) {
            let mut seen = std::collections::HashSet::new();
            for inst in layer {
                for &q in &inst.qubits {
                    assert!(seen.insert(q), "qubit {q} repeated within a layer");
                }
            }
        }
    }

    #[test]
    fn produces_normalized_states() {
        let c = quantum_volume(4, 4, 2);
        let sv = simulate(&c);
        assert!((sv.total_probability() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn depth_is_bounded_by_layer_count() {
        let c = quantum_volume(8, 8, 9);
        assert!(c.two_qubit_depth() <= 8);
        assert!(c.two_qubit_depth() >= 1);
    }
}
