//! CDKM (Cuccaro–Draper–Kutin–Moulton) ripple-carry adder circuits.
//!
//! The construction mirrors Qiskit's `CDKMRippleCarryAdder`: a chain of MAJ
//! gates computing carries in place, a CNOT writing the carry-out, and a
//! chain of UMA gates uncomputing the carries while writing the sum into the
//! `b` register. Toffolis are expanded into the textbook 6-CNOT network so
//! the emitted circuit contains only 1- and 2-qubit gates, as required by the
//! transpilation flow.

use snailqc_circuit::{Circuit, Gate};

/// Register layout of [`cdkm_adder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderLayout {
    /// Number of bits per addend.
    pub state_bits: usize,
}

impl AdderLayout {
    /// The carry-in qubit.
    pub fn cin(&self) -> usize {
        0
    }
    /// Qubit holding bit `i` of addend `a` (unchanged by the adder).
    pub fn a(&self, i: usize) -> usize {
        1 + i
    }
    /// Qubit holding bit `i` of addend `b` (receives bit `i` of the sum).
    pub fn b(&self, i: usize) -> usize {
        1 + self.state_bits + i
    }
    /// The carry-out qubit.
    pub fn cout(&self) -> usize {
        1 + 2 * self.state_bits
    }
    /// Total register width: `2 * state_bits + 2`.
    pub fn num_qubits(&self) -> usize {
        2 * self.state_bits + 2
    }
}

/// Appends a Toffoli gate expanded into the standard 6-CNOT network.
pub fn append_toffoli(c: &mut Circuit, ctrl0: usize, ctrl1: usize, target: usize) {
    c.h(target);
    c.cx(ctrl1, target);
    c.push(Gate::Tdg, &[target]);
    c.cx(ctrl0, target);
    c.push(Gate::T, &[target]);
    c.cx(ctrl1, target);
    c.push(Gate::Tdg, &[target]);
    c.cx(ctrl0, target);
    c.push(Gate::T, &[ctrl1]);
    c.push(Gate::T, &[target]);
    c.h(target);
    c.cx(ctrl0, ctrl1);
    c.push(Gate::T, &[ctrl0]);
    c.push(Gate::Tdg, &[ctrl1]);
    c.cx(ctrl0, ctrl1);
}

fn maj(c: &mut Circuit, x: usize, y: usize, z: usize) {
    c.cx(z, y);
    c.cx(z, x);
    append_toffoli(c, x, y, z);
}

fn uma(c: &mut Circuit, x: usize, y: usize, z: usize) {
    append_toffoli(c, x, y, z);
    c.cx(z, x);
    c.cx(x, y);
}

/// Builds an in-place ripple-carry adder over two `state_bits`-bit registers.
///
/// The circuit maps `|cin⟩|a⟩|b⟩|0⟩ ↦ |cin⟩|a⟩|a + b + cin mod 2ⁿ⟩|carry⟩`
/// on the layout described by [`AdderLayout`]. Total width is
/// `2 * state_bits + 2` qubits.
pub fn cdkm_adder(state_bits: usize) -> Circuit {
    assert!(state_bits >= 1, "adder needs at least one state bit");
    let layout = AdderLayout { state_bits };
    let mut c = Circuit::new(layout.num_qubits());

    // Carry chain: MAJ(carry_in_wire, b_i, a_i).
    maj(&mut c, layout.cin(), layout.b(0), layout.a(0));
    for i in 1..state_bits {
        maj(&mut c, layout.a(i - 1), layout.b(i), layout.a(i));
    }
    // Write the carry out.
    c.cx(layout.a(state_bits - 1), layout.cout());
    // Uncompute carries and produce sum bits.
    for i in (1..state_bits).rev() {
        uma(&mut c, layout.a(i - 1), layout.b(i), layout.a(i));
    }
    uma(&mut c, layout.cin(), layout.b(0), layout.a(0));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_circuit::{simulate, Circuit};

    /// Runs the adder on classical inputs and reads back (sum, carry).
    fn run_adder(state_bits: usize, a: usize, b: usize, cin: bool) -> (usize, bool, usize) {
        let layout = AdderLayout { state_bits };
        let mut c = Circuit::new(layout.num_qubits());
        if cin {
            c.x(layout.cin());
        }
        for i in 0..state_bits {
            if (a >> i) & 1 == 1 {
                c.x(layout.a(i));
            }
            if (b >> i) & 1 == 1 {
                c.x(layout.b(i));
            }
        }
        c.compose(&cdkm_adder(state_bits));
        let sv = simulate(&c);
        // The state stays computational: find the single basis state with
        // probability ~1.
        let mut best = 0;
        let mut best_p = -1.0;
        for idx in 0..sv.amplitudes().len() {
            if sv.probability(idx) > best_p {
                best_p = sv.probability(idx);
                best = idx;
            }
        }
        assert!(best_p > 0.999, "state not classical (p = {best_p})");
        // Decode: qubit q corresponds to bit (n-1-q) of the index.
        let n = layout.num_qubits();
        let bit = |q: usize| (best >> (n - 1 - q)) & 1;
        let mut sum = 0usize;
        for i in 0..state_bits {
            sum |= bit(layout.b(i)) << i;
        }
        let carry = bit(layout.cout()) == 1;
        let mut a_out = 0usize;
        for i in 0..state_bits {
            a_out |= bit(layout.a(i)) << i;
        }
        (sum, carry, a_out)
    }

    #[test]
    fn toffoli_expansion_matches_truth_table() {
        for input in 0..8usize {
            let mut c = Circuit::new(3);
            // Qubit 0 is the MSB of the index; use qubits (0,1) as controls
            // and 2 as target.
            for q in 0..3 {
                if (input >> (2 - q)) & 1 == 1 {
                    c.x(q);
                }
            }
            append_toffoli(&mut c, 0, 1, 2);
            let sv = simulate(&c);
            let controls_set = (input >> 2) & 1 == 1 && (input >> 1) & 1 == 1;
            let expected = if controls_set { input ^ 1 } else { input };
            assert!(
                sv.probability(expected) > 0.999,
                "input {input}: expected {expected}"
            );
        }
    }

    #[test]
    fn one_bit_adder_truth_table() {
        for a in 0..2 {
            for b in 0..2 {
                for cin in [false, true] {
                    let (sum, carry, a_out) = run_adder(1, a, b, cin);
                    let total = a + b + cin as usize;
                    assert_eq!(sum, total % 2, "a={a} b={b} cin={cin}");
                    assert_eq!(carry, total >= 2, "a={a} b={b} cin={cin}");
                    assert_eq!(a_out, a, "addend register must be preserved");
                }
            }
        }
    }

    #[test]
    fn two_bit_adder_exhaustive() {
        for a in 0..4 {
            for b in 0..4 {
                let (sum, carry, a_out) = run_adder(2, a, b, false);
                let total = a + b;
                assert_eq!(sum, total % 4, "a={a} b={b}");
                assert_eq!(carry, total >= 4, "a={a} b={b}");
                assert_eq!(a_out, a);
            }
        }
    }

    #[test]
    fn three_bit_adder_spot_checks() {
        for (a, b) in [(5, 3), (7, 7), (1, 6), (4, 4)] {
            let (sum, carry, _) = run_adder(3, a, b, false);
            assert_eq!(sum, (a + b) % 8, "a={a} b={b}");
            assert_eq!(carry, a + b >= 8, "a={a} b={b}");
        }
    }

    #[test]
    fn register_width_and_counts() {
        let c = cdkm_adder(4);
        assert_eq!(c.num_qubits(), 10);
        // Each MAJ/UMA contributes one Toffoli (6 CX) and 2 CX; plus the
        // carry-out CX: total CX = 8 * (6 + 2) + 1.
        assert_eq!(c.gate_counts()["cx"], 8 * 8 + 1);
        assert_eq!(c.swap_count(), 0);
    }

    #[test]
    fn only_one_and_two_qubit_gates() {
        let c = cdkm_adder(3);
        for inst in c.instructions() {
            assert!(inst.gate.num_qubits() <= 2);
        }
    }
}
