//! # snailqc-workloads
//!
//! Parameterized benchmark circuit generators, matching the workload suite of
//! the paper's evaluation (§5): Quantum Volume, QFT and the CDKM ripple-carry
//! adder (Qiskit circuits), plus the QAOA vanilla proxy, TIM Hamiltonian
//! simulation and GHZ state preparation (SupermarQ circuits). Every generator
//! is a function of the problem size so the paper's size sweeps (4–16 and
//! 8–80 qubits) can be regenerated automatically.

#![warn(missing_docs)]

pub mod adder;
pub mod clifford;
pub mod ghz;
pub mod qaoa;
pub mod qft;
pub mod quantum_volume;
pub mod tim;

pub use adder::cdkm_adder;
pub use clifford::{clifford_ghz, clifford_qv, random_clifford_circuit};
pub use ghz::ghz;
pub use qaoa::qaoa_vanilla;
pub use qft::qft;
pub use quantum_volume::quantum_volume;
pub use tim::tim_hamiltonian;

use snailqc_circuit::Circuit;

/// The benchmark workloads used throughout the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize)]
pub enum Workload {
    /// Quantum Volume model circuits (random SU(4) layers).
    QuantumVolume,
    /// Quantum Fourier Transform.
    Qft,
    /// QAOA "vanilla" proxy: depth-1 QAOA on the fully connected
    /// Sherrington–Kirkpatrick model.
    QaoaVanilla,
    /// Trotterized transverse-field Ising model Hamiltonian simulation.
    TimHamiltonian,
    /// CDKM (Cuccaro) ripple-carry adder.
    Adder,
    /// GHZ state preparation.
    Ghz,
}

impl Workload {
    /// Display label matching the paper's figure column headers.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::QuantumVolume => "Quantum Volume",
            Workload::Qft => "QFT",
            Workload::QaoaVanilla => "QAOA Vanilla",
            Workload::TimHamiltonian => "TIM Hamiltonian",
            Workload::Adder => "Adder",
            Workload::Ghz => "GHZ",
        }
    }

    /// Every workload, in the order the paper's figures present them.
    pub fn all() -> [Workload; 6] {
        [
            Workload::QuantumVolume,
            Workload::Qft,
            Workload::QaoaVanilla,
            Workload::TimHamiltonian,
            Workload::Adder,
            Workload::Ghz,
        ]
    }

    /// The workload identified by a CLI-style name (forgiving about case and
    /// separators): `qv`/`quantum-volume`, `qft`, `qaoa`/`qaoa-vanilla`,
    /// `tim`/`tim-hamiltonian`, `adder`, `ghz`.
    pub fn by_name(name: &str) -> Option<Workload> {
        Some(match snailqc_util::normalize_name(name).as_str() {
            "qv" | "quantumvolume" => Workload::QuantumVolume,
            "qft" => Workload::Qft,
            "qaoa" | "qaoavanilla" => Workload::QaoaVanilla,
            "tim" | "timhamiltonian" => Workload::TimHamiltonian,
            "adder" | "cdkmadder" => Workload::Adder,
            "ghz" => Workload::Ghz,
            _ => return None,
        })
    }

    /// Canonical CLI names of every workload, in figure order.
    pub fn names() -> [&'static str; 6] {
        [
            "quantum-volume",
            "qft",
            "qaoa-vanilla",
            "tim-hamiltonian",
            "adder",
            "ghz",
        ]
    }

    /// Generates the workload circuit and serializes it as OpenQASM 2.0, so
    /// every built-in generator can export its circuits to other toolchains.
    pub fn emit_qasm(&self, num_qubits: usize, seed: u64) -> String {
        snailqc_qasm::emit(&self.generate(num_qubits, seed))
    }

    /// Generates the workload circuit and serializes it as OpenQASM 3.0 —
    /// the v3 twin of [`Workload::emit_qasm`], so every catalog workload is
    /// expressible in both dialects.
    pub fn emit_qasm_v3(&self, num_qubits: usize, seed: u64) -> String {
        snailqc_qasm::emit_v3(&self.generate(num_qubits, seed))
    }

    /// Generates the workload circuit and serializes it in the given QASM
    /// dialect.
    pub fn emit_qasm_versioned(
        &self,
        num_qubits: usize,
        seed: u64,
        version: snailqc_qasm::QasmVersion,
    ) -> String {
        snailqc_qasm::emit_versioned(&self.generate(num_qubits, seed), version)
    }

    /// Generates the workload circuit on (at most) `num_qubits` qubits.
    ///
    /// The adder uses the largest `2a + 2 ≤ num_qubits` register it can fit;
    /// all other workloads use exactly `num_qubits` qubits. `seed` controls
    /// the randomized workloads (Quantum Volume unitaries, QAOA weights) so
    /// sweeps are reproducible.
    pub fn generate(&self, num_qubits: usize, seed: u64) -> Circuit {
        match self {
            Workload::QuantumVolume => quantum_volume(num_qubits, num_qubits, seed),
            Workload::Qft => qft(num_qubits, true),
            Workload::QaoaVanilla => qaoa_vanilla(num_qubits, 1, seed),
            Workload::TimHamiltonian => tim_hamiltonian(num_qubits, 1),
            Workload::Adder => {
                let state_bits = ((num_qubits.max(4) - 2) / 2).max(1);
                cdkm_adder(state_bits)
            }
            Workload::Ghz => ghz(num_qubits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_generate_nonempty_circuits() {
        for w in Workload::all() {
            let c = w.generate(8, 7);
            assert!(!c.is_empty(), "{}", w.label());
            assert!(c.num_qubits() <= 8, "{}", w.label());
            assert!(c.two_qubit_count() > 0, "{}", w.label());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for w in Workload::all() {
            let a = w.generate(8, 42);
            let b = w.generate(8, 42);
            assert_eq!(a.len(), b.len(), "{}", w.label());
            assert_eq!(
                a.interaction_pairs(),
                b.interaction_pairs(),
                "{}",
                w.label()
            );
        }
    }

    #[test]
    fn labels_match_paper_headers() {
        assert_eq!(Workload::QaoaVanilla.label(), "QAOA Vanilla");
        assert_eq!(Workload::TimHamiltonian.label(), "TIM Hamiltonian");
    }

    #[test]
    fn names_resolve_back_to_workloads() {
        for (name, expected) in Workload::names().iter().zip(Workload::all()) {
            assert_eq!(Workload::by_name(name), Some(expected), "{name}");
        }
        assert_eq!(Workload::by_name("QV"), Some(Workload::QuantumVolume));
        assert_eq!(Workload::by_name("qaoa"), Some(Workload::QaoaVanilla));
        assert_eq!(Workload::by_name("unknown"), None);
    }

    #[test]
    fn every_workload_exports_parseable_qasm_in_both_dialects() {
        for w in Workload::all() {
            for version in [snailqc_qasm::QasmVersion::V2, snailqc_qasm::QasmVersion::V3] {
                let text = w.emit_qasm_versioned(8, 7, version);
                let parsed = snailqc_qasm::parse_any(&text).unwrap_or_else(|e| {
                    panic!(
                        "{} ({version}): emitted QASM failed to parse: {e}",
                        w.label()
                    )
                });
                assert_eq!(parsed.version, version, "{}", w.label());
                let direct = w.generate(8, 7);
                assert_eq!(parsed.circuit, direct, "{} ({version})", w.label());
            }
        }
    }

    #[test]
    fn every_workload_exports_parseable_qasm() {
        for w in Workload::all() {
            let text = w.emit_qasm(8, 7);
            let parsed = snailqc_qasm::parse(&text)
                .unwrap_or_else(|e| panic!("{}: emitted QASM failed to parse: {e}", w.label()));
            let direct = w.generate(8, 7);
            assert_eq!(
                parsed.circuit.num_qubits(),
                direct.num_qubits(),
                "{}",
                w.label()
            );
            assert_eq!(parsed.circuit.len(), direct.len(), "{}", w.label());
            assert_eq!(
                parsed.circuit.interaction_pairs(),
                direct.interaction_pairs(),
                "{}",
                w.label()
            );
        }
    }
}
