//! Transverse-field Ising model (TIM) Hamiltonian simulation circuits.
//!
//! Follows SupermarQ's `HamiltonianSimulation` benchmark: first-order Trotter
//! evolution of the 1D transverse-field Ising chain
//! `H = Σᵢ ZᵢZᵢ₊₁ + h Σᵢ Xᵢ`. Interactions are nearest-neighbor on a line, so
//! the benchmark routes almost for free on every topology — the paper uses it
//! as the "easy" counterpart to QFT/QAOA.

use snailqc_circuit::Circuit;

/// Generates a TIM Hamiltonian-simulation circuit on `num_qubits` qubits with
/// the given number of first-order Trotter steps.
pub fn tim_hamiltonian(num_qubits: usize, trotter_steps: usize) -> Circuit {
    assert!(num_qubits >= 2);
    let total_time = 1.0;
    let field = 0.2;
    let dt = total_time / trotter_steps.max(1) as f64;
    let mut c = Circuit::new(num_qubits);
    // Start in the +X ground state of the driver.
    for q in 0..num_qubits {
        c.h(q);
    }
    for _ in 0..trotter_steps.max(1) {
        // ZZ couplings along the chain.
        for q in 0..num_qubits - 1 {
            c.rzz(2.0 * dt, q, q + 1);
        }
        // Transverse field.
        for q in 0..num_qubits {
            c.rx(2.0 * field * dt, q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_circuit::simulate;

    #[test]
    fn chain_interactions_only() {
        let n = 8;
        let c = tim_hamiltonian(n, 1);
        for (a, b) in c.interaction_pairs() {
            assert_eq!(b, a + 1, "non-neighbor interaction ({a}, {b})");
        }
        assert_eq!(c.two_qubit_count(), n - 1);
    }

    #[test]
    fn trotter_steps_scale_counts() {
        let n = 6;
        let one = tim_hamiltonian(n, 1);
        let four = tim_hamiltonian(n, 4);
        assert_eq!(four.two_qubit_count(), 4 * one.two_qubit_count());
        assert_eq!(four.gate_counts()["rx"], 4 * one.gate_counts()["rx"]);
    }

    #[test]
    fn zero_steps_defaults_to_one() {
        let c = tim_hamiltonian(4, 0);
        assert_eq!(c.two_qubit_count(), 3);
    }

    #[test]
    fn state_stays_normalized() {
        let c = tim_hamiltonian(6, 3);
        let sv = simulate(&c);
        assert!((sv.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_qubit_depth_is_small_for_chain() {
        // ZZ gates on a chain can interleave: even and odd bonds form two
        // layers per Trotter step at most... the serial emission order gives
        // a depth of at most n-1 but the critical path is what routing cares
        // about after scheduling; here we just pin the emitted structure.
        let c = tim_hamiltonian(10, 1);
        assert!(c.two_qubit_depth() <= 9);
        assert!(c.two_qubit_depth() >= 2);
    }
}
