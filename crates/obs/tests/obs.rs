//! Behavioural tests for the global span/metrics machinery.
//!
//! These tests toggle the process-global enabled flag and drain the global
//! collectors, so they serialize on one mutex — `cargo test` runs tests in
//! the same binary concurrently and the flag is shared state.

use std::sync::{Mutex, MutexGuard};

use snailqc_obs as obs;

fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::disable();
    obs::reset();
    guard
}

#[test]
fn disabled_instrumentation_records_nothing() {
    let _guard = exclusive();
    {
        let _span = obs::span("never.recorded");
        obs::counter_add("never.counted", 5);
        obs::counter("never.counted_handle").add(7);
        obs::histogram_record("never.sampled", 9);
        obs::gauge_set("never.gauged", 1.0);
    }
    assert!(obs::take_spans().is_empty());
    let snapshot = obs::snapshot();
    assert_eq!(snapshot.counter("never.counted"), None);
    // The handle interned the name, but the add was dropped.
    assert_eq!(snapshot.counter("never.counted_handle"), Some(0));
    assert!(snapshot.histogram("never.sampled").is_none());
}

#[test]
fn spans_nest_and_drain_with_parent_links() {
    let _guard = exclusive();
    obs::enable();
    {
        let _outer = obs::span("outer");
        {
            let _inner = obs::span_with("inner", "detail-text");
        }
        let _sibling = obs::span("sibling");
    }
    obs::disable();
    let spans = obs::take_spans();
    assert_eq!(spans.len(), 3);
    let outer = spans.iter().find(|s| s.name == "outer").unwrap();
    let inner = spans.iter().find(|s| s.name == "inner").unwrap();
    let sibling = spans.iter().find(|s| s.name == "sibling").unwrap();
    assert_eq!(outer.parent, 0);
    assert_eq!(inner.parent, outer.id);
    assert_eq!(sibling.parent, outer.id);
    assert_eq!(inner.detail.as_deref(), Some("detail-text"));
    assert!(inner.start_ns >= outer.start_ns);
    assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    // Drained means gone.
    assert!(obs::take_spans().is_empty());
}

#[test]
fn worker_thread_spans_flush_when_the_thread_exits() {
    let _guard = exclusive();
    obs::enable();
    {
        let _span = obs::span("main.thread");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _span = obs::span("worker.thread");
                });
            }
        });
    }
    obs::disable();
    let spans = obs::take_spans();
    let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker.thread").collect();
    let main = spans.iter().find(|s| s.name == "main.thread").unwrap();
    assert_eq!(workers.len(), 4);
    // Worker spans are roots on their own threads, with distinct tids.
    for worker in &workers {
        assert_eq!(worker.parent, 0);
        assert_ne!(worker.tid, main.tid);
    }
}

#[test]
fn counters_and_histograms_accumulate_and_reset() {
    let _guard = exclusive();
    obs::enable();
    let counter = obs::counter("test.counter");
    counter.add(10);
    counter.incr();
    obs::counter_add("test.counter", 4);
    let histogram = obs::histogram("test.hist");
    for value in [1u64, 2, 3, 100, 1000] {
        histogram.record(value);
    }
    obs::gauge_set("test.gauge", 2.5);
    obs::disable();

    let snapshot = obs::snapshot();
    assert_eq!(snapshot.counter("test.counter"), Some(15));
    assert_eq!(counter.value(), 15);
    let summary = snapshot.histogram("test.hist").unwrap();
    assert_eq!(summary.count, 5);
    assert_eq!(summary.sum, 1106);
    assert_eq!(summary.min, 1);
    assert_eq!(summary.max, 1000);
    assert!(summary.p50 <= summary.p90 && summary.p90 <= summary.p99);
    assert!(summary.p99 >= 1000 && summary.p99 <= 1023);
    assert!(snapshot
        .gauges
        .iter()
        .any(|(name, value)| name == "test.gauge" && *value == 2.5));

    obs::reset();
    let cleared = obs::snapshot();
    assert_eq!(cleared.counter("test.counter"), Some(0));
    assert_eq!(cleared.histogram("test.hist").unwrap().count, 0);
    // Cached handles survive a reset and keep recording.
    obs::enable();
    counter.incr();
    obs::disable();
    assert_eq!(obs::snapshot().counter("test.counter"), Some(1));
}

#[test]
fn counter_deltas_since_reports_only_increases() {
    let _guard = exclusive();
    obs::enable();
    obs::counter_add("delta.a", 2);
    let before = obs::snapshot();
    obs::counter_add("delta.a", 3);
    obs::counter_add("delta.b", 1);
    let after = obs::snapshot();
    obs::disable();
    let deltas = after.counter_deltas_since(&before);
    assert!(deltas.contains(&("delta.a".to_string(), 3)));
    assert!(deltas.contains(&("delta.b".to_string(), 1)));
    assert!(!deltas.iter().any(|(name, _)| name == "delta.a_missing"));
}

#[test]
fn chrome_trace_of_a_real_run_parses_and_nests() {
    let _guard = exclusive();
    obs::enable();
    {
        let _outer = obs::span("trace.outer");
        let _inner = obs::span("trace.inner");
    }
    obs::disable();
    let spans = obs::take_spans();
    let json = obs::chrome_trace(&spans);
    let value = serde_json::from_str(&json).expect("trace is valid JSON");
    let events = match value.get("traceEvents").unwrap() {
        serde::Value::Array(events) => events.clone(),
        other => panic!("traceEvents is {other:?}"),
    };
    assert_eq!(events.len(), 2);
    let find = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name") == Some(&serde::Value::String(name.to_string())))
            .unwrap()
            .clone()
    };
    let outer = find("trace.outer");
    let inner = find("trace.inner");
    assert_eq!(
        inner.get("args").unwrap().get("parent"),
        outer.get("args").unwrap().get("id")
    );
}
