//! Named counters, gauges, and fixed-bucket histograms.
//!
//! Metrics are interned by `&'static str` name in a global registry and
//! backed by plain atomics, so recording never blocks: the registry mutex
//! is taken only to look a name up (or on [`snapshot`]/[`reset_metrics`]),
//! and cached handles ([`Counter`], [`Histogram`]) skip it entirely.
//!
//! Histograms use 65 fixed log₂ buckets: bucket *i* holds values whose bit
//! length is *i* (bucket 0 holds only 0). Quantile queries walk the bucket
//! array and report the bucket's upper bound, so p50/p90/p99 are at most
//! one power of two above the true quantile — plenty for latency triage,
//! and recording stays a handful of relaxed atomic ops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::is_enabled;

/// One bucket per possible bit length of a `u64`, plus bucket 0 for zero.
const BUCKETS: usize = 65;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, Arc<AtomicU64>>,
    gauges: BTreeMap<&'static str, Arc<AtomicU64>>,
    histograms: BTreeMap<&'static str, Arc<HistogramCell>>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(Default::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Handle to a named monotonic counter. Cheap to clone; safe to cache in
/// hot loops — [`Counter::add`] touches only one atomic.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`; a no-op while observability is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if is_enabled() && n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1; a no-op while observability is disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (readable even while disabled).
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Look up (interning on first use) the counter registered under `name`.
pub fn counter(name: &'static str) -> Counter {
    Counter(registry().counters.entry(name).or_default().clone())
}

/// One-shot `counter(name).add(n)` for call sites too cold to cache a
/// handle. Checks the enabled flag before touching the registry.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if is_enabled() && n != 0 {
        counter(name).0.fetch_add(n, Ordering::Relaxed);
    }
}

/// Set the gauge registered under `name` to `value` (last write wins).
#[inline]
pub fn gauge_set(name: &'static str, value: f64) {
    if is_enabled() {
        registry()
            .gauges
            .entry(name)
            .or_default()
            .store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Lock-free storage behind a [`Histogram`] handle.
struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCell {
    fn record(&self, value: u64) {
        let index = bucket_index(value);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn summarize(&self) -> HistogramSummary {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        // Clamp quantile estimates to the observed extremes so a histogram
        // whose samples all share one bucket reports exact values.
        let clamp = |q: u64| q.clamp(min, max);
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            min: if count == 0 { 0 } else { min },
            max,
            p50: if count == 0 {
                0
            } else {
                clamp(quantile(&buckets, count, 0.50))
            },
            p90: if count == 0 {
                0
            } else {
                clamp(quantile(&buckets, count, 0.90))
            },
            p99: if count == 0 {
                0
            } else {
                clamp(quantile(&buckets, count, 0.99))
            },
        }
    }
}

/// `value == 0` → bucket 0; otherwise the value's bit length.
fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Upper bound of the bucket that contains the `q`-quantile sample.
fn quantile(buckets: &[u64], count: u64, q: f64) -> u64 {
    let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (index, &bucket_count) in buckets.iter().enumerate() {
        seen += bucket_count;
        if seen >= rank {
            return bucket_upper_bound(index);
        }
    }
    bucket_upper_bound(BUCKETS - 1)
}

/// Largest value that lands in bucket `index`.
fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Handle to a named histogram. Cheap to clone; safe to cache in hot loops.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Record one sample; a no-op while observability is disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if is_enabled() {
            self.0.record(value);
        }
    }
}

/// Look up (interning on first use) the histogram registered under `name`.
pub fn histogram(name: &'static str) -> Histogram {
    Histogram(registry().histograms.entry(name).or_default().clone())
}

/// One-shot `histogram(name).record(value)` for cold call sites.
#[inline]
pub fn histogram_record(name: &'static str, value: u64) {
    if is_enabled() {
        histogram(name).0.record(value);
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (wrapping add on overflow).
    pub sum: u64,
    /// Arithmetic mean, 0.0 when empty.
    pub mean: f64,
    /// Smallest sample, 0 when empty.
    pub min: u64,
    /// Largest sample, 0 when empty.
    pub max: u64,
    /// Estimated median (log₂-bucket upper bound, clamped to min/max).
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// Point-in-time copy of every registered metric, name-sorted.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` for every registered histogram.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Value of the counter registered under `name`, if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Summary of the histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Per-counter increase since `earlier` (counters absent earlier count
    /// from zero; non-positive deltas are dropped).
    pub fn counter_deltas_since(&self, earlier: &MetricsSnapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter_map(|(name, now)| {
                let before = earlier.counter(name).unwrap_or(0);
                (*now > before).then(|| (name.clone(), now - before))
            })
            .collect()
    }
}

/// Copy out every registered metric. Works while disabled (values simply
/// stop moving), so exporters can run after [`crate::disable`].
pub fn snapshot() -> MetricsSnapshot {
    let registry = registry();
    MetricsSnapshot {
        counters: registry
            .counters
            .iter()
            .map(|(name, v)| (name.to_string(), v.load(Ordering::Relaxed)))
            .collect(),
        gauges: registry
            .gauges
            .iter()
            .map(|(name, v)| (name.to_string(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect(),
        histograms: registry
            .histograms
            .iter()
            .map(|(name, cell)| (name.to_string(), cell.summarize()))
            .collect(),
    }
}

/// Zero every registered metric in place. Cached handles stay valid (they
/// share the same atomics), so long-lived loops keep recording afterwards.
pub fn reset_metrics() {
    let registry = registry();
    for value in registry.counters.values() {
        value.store(0, Ordering::Relaxed);
    }
    for value in registry.gauges.values() {
        value.store(0f64.to_bits(), Ordering::Relaxed);
    }
    for cell in registry.histograms.values() {
        cell.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_bounds_bracket_their_members() {
        for value in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            assert!(value <= bucket_upper_bound(bucket_index(value)));
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantile_walks_cumulative_counts() {
        // 10 samples of value 1 (bucket 1), 10 of value ~1000 (bucket 10).
        let mut buckets = vec![0u64; BUCKETS];
        buckets[1] = 10;
        buckets[10] = 10;
        assert_eq!(quantile(&buckets, 20, 0.50), 1);
        assert_eq!(quantile(&buckets, 20, 0.90), 1023);
        assert_eq!(quantile(&buckets, 20, 0.99), 1023);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let cell = HistogramCell::default();
        let summary = cell.summarize();
        assert_eq!(summary.count, 0);
        assert_eq!(summary.min, 0);
        assert_eq!(summary.max, 0);
        assert_eq!(summary.p99, 0);
    }
}
