//! RAII tracing spans with parent/child nesting.
//!
//! Each thread owns a private buffer (`thread_local!`) holding its open-span
//! stack and finished events, so recording a span is lock-free: the only
//! synchronisation on the hot path is one atomic fetch-add for the span id.
//! Buffers drain into the global collector either when the owning thread
//! exits (the buffer's `Drop` flushes) or when [`take_spans`] runs. The
//! workspace `rayon` stand-in joins its scoped workers before returning, so
//! a caller that drains after a parallel region always sees worker spans.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::is_enabled;

/// One finished span: a named interval with thread and ancestry metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name, e.g. `"pipeline.routing"`.
    pub name: &'static str,
    /// Optional free-form annotation (file name, cell label, …).
    pub detail: Option<String>,
    /// Unique id of this span (process-wide, never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for roots.
    pub parent: u64,
    /// Small dense id of the recording thread (1-based, process-wide).
    pub tid: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static COLLECTOR: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());

fn lock_collector() -> MutexGuard<'static, Vec<SpanEvent>> {
    COLLECTOR.lock().unwrap_or_else(|e| e.into_inner())
}

/// All spans share one epoch so timestamps are comparable across threads.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

struct ThreadBuffer {
    tid: u64,
    /// Ids of currently open spans on this thread, innermost last.
    open: Vec<u64>,
    events: Vec<SpanEvent>,
}

impl ThreadBuffer {
    fn new() -> Self {
        ThreadBuffer {
            tid: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            open: Vec::new(),
            events: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if !self.events.is_empty() {
            lock_collector().append(&mut self.events);
        }
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer::new());
}

/// In-flight span state carried by an armed [`SpanGuard`].
struct OpenSpan {
    name: &'static str,
    detail: Option<String>,
    id: u64,
    parent: u64,
    tid: u64,
    start_ns: u64,
}

/// RAII guard returned by [`span`]/[`span_with`]; records the interval from
/// creation to drop. When observability is disabled the guard is an empty
/// shell and both construction and drop are branch-only.
#[must_use = "a span measures the interval until the guard is dropped"]
pub struct SpanGuard(Option<OpenSpan>);

/// Open a span. Near-free when disabled: one relaxed atomic load.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard(None);
    }
    SpanGuard(open(name, None))
}

/// Open a span with a free-form detail string (evaluated only when enabled
/// because the argument is taken by value — prefer `span_with(n, x.to_string())`
/// only in already-cold code, or guard with [`is_enabled`]).
#[inline]
pub fn span_with(name: &'static str, detail: impl Into<String>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard(None);
    }
    SpanGuard(open(name, Some(detail.into())))
}

#[cold]
fn open(name: &'static str, detail: Option<String>) -> Option<OpenSpan> {
    BUFFER
        .try_with(|buffer| {
            let mut buffer = buffer.borrow_mut();
            let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
            let parent = buffer.open.last().copied().unwrap_or(0);
            buffer.open.push(id);
            OpenSpan {
                name,
                detail,
                id,
                parent,
                tid: buffer.tid,
                start_ns: now_ns(),
            }
        })
        .ok()
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.0.take() else {
            return;
        };
        let dur_ns = now_ns().saturating_sub(open.start_ns);
        let _ = BUFFER.try_with(|buffer| {
            let mut buffer = buffer.borrow_mut();
            // Guards normally drop innermost-first; popping back to this id
            // also recovers if an outer guard outlived a leaked inner one.
            if let Some(pos) = buffer.open.iter().rposition(|&id| id == open.id) {
                buffer.open.truncate(pos);
            }
            buffer.events.push(SpanEvent {
                name: open.name,
                detail: open.detail,
                id: open.id,
                parent: open.parent,
                tid: open.tid,
                start_ns: open.start_ns,
                dur_ns,
            });
        });
    }
}

/// Drain every finished span recorded so far (this thread's buffer plus the
/// global collector), sorted by start time for deterministic export. Spans
/// still open, or buffered on other live threads, are not included.
pub fn take_spans() -> Vec<SpanEvent> {
    let _ = BUFFER.try_with(|buffer| buffer.borrow_mut().flush());
    let mut spans = std::mem::take(&mut *lock_collector());
    spans.sort_by_key(|s| (s.start_ns, s.id));
    spans
}
