//! Exporters: Chrome trace-event JSON, a flat metrics JSON snapshot, and a
//! human-readable summary table.

use serde::Value;

use crate::metrics::MetricsSnapshot;
use crate::span::SpanEvent;

fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Render spans as Chrome trace-event JSON (the `{"traceEvents": [...]}`
/// object form), loadable in Perfetto or `chrome://tracing`. Each span
/// becomes one complete (`"ph": "X"`) event; timestamps and durations are
/// microseconds as the format requires, and span/parent ids are carried in
/// `args` so the nesting survives even in viewers that re-sort events.
pub fn chrome_trace(spans: &[SpanEvent]) -> String {
    let events: Vec<Value> = spans
        .iter()
        .map(|span| {
            let mut args = vec![
                ("id", Value::UInt(span.id)),
                ("parent", Value::UInt(span.parent)),
            ];
            if let Some(detail) = &span.detail {
                args.push(("detail", Value::String(detail.clone())));
            }
            object(vec![
                ("name", Value::String(span.name.to_string())),
                ("cat", Value::String("snailqc".to_string())),
                ("ph", Value::String("X".to_string())),
                ("ts", Value::Float(span.start_ns as f64 / 1_000.0)),
                ("dur", Value::Float(span.dur_ns as f64 / 1_000.0)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(span.tid)),
                ("args", object(args)),
            ])
        })
        .collect();
    let trace = object(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::String("ms".to_string())),
        (
            "otherData",
            object(vec![(
                "generator",
                Value::String("snailqc-obs".to_string()),
            )]),
        ),
    ]);
    serde_json::to_string(&trace).expect("trace serialization is infallible")
}

/// Convert a metrics snapshot to a JSON value with top-level `counters`,
/// `gauges`, and `histograms` objects keyed by metric name.
pub fn metrics_to_value(snapshot: &MetricsSnapshot) -> Value {
    let counters = Value::Object(
        snapshot
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), Value::UInt(*value)))
            .collect(),
    );
    let gauges = Value::Object(
        snapshot
            .gauges
            .iter()
            // Gauge values are caller-controlled f64s; JSON cannot express a
            // non-finite one (and the serializer now rejects them), so the
            // documented export policy is: non-finite gauges export as null.
            .map(|(name, value)| {
                let value = if value.is_finite() {
                    Value::Float(*value)
                } else {
                    Value::Null
                };
                (name.clone(), value)
            })
            .collect(),
    );
    let histograms = Value::Object(
        snapshot
            .histograms
            .iter()
            .map(|(name, summary)| {
                (
                    name.clone(),
                    object(vec![
                        ("count", Value::UInt(summary.count)),
                        ("sum", Value::UInt(summary.sum)),
                        ("mean", Value::Float(summary.mean)),
                        ("min", Value::UInt(summary.min)),
                        ("max", Value::UInt(summary.max)),
                        ("p50", Value::UInt(summary.p50)),
                        ("p90", Value::UInt(summary.p90)),
                        ("p99", Value::UInt(summary.p99)),
                    ]),
                )
            })
            .collect(),
    );
    object(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// Pretty-printed JSON form of [`metrics_to_value`].
pub fn metrics_json(snapshot: &MetricsSnapshot) -> String {
    serde_json::to_string_pretty(&metrics_to_value(snapshot))
        .expect("metrics serialization is infallible")
}

/// Render a metrics snapshot as an aligned, human-readable table (the
/// `SNAILQC_TRACE=1` stderr summary).
pub fn summary_table(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let name_width = snapshot
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(snapshot.gauges.iter().map(|(n, _)| n.len()))
        .chain(snapshot.histograms.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(4)
        .max(4);
    if !snapshot.counters.is_empty() {
        out.push_str("counters\n");
        for (name, value) in &snapshot.counters {
            out.push_str(&format!("  {name:<name_width$}  {value}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges\n");
        for (name, value) in &snapshot.gauges {
            out.push_str(&format!("  {name:<name_width$}  {value}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms (count / mean / p50 / p90 / p99 / max)\n");
        for (name, s) in &snapshot.histograms {
            out.push_str(&format!(
                "  {name:<name_width$}  {} / {:.1} / {} / {} / {} / {}\n",
                s.count, s.mean, s.p50, s.p90, s.p99, s.max
            ));
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSummary;

    fn sample_span() -> SpanEvent {
        SpanEvent {
            name: "test.span",
            detail: Some("cell".to_string()),
            id: 7,
            parent: 3,
            tid: 2,
            start_ns: 1_500,
            dur_ns: 2_000,
        }
    }

    #[test]
    fn chrome_trace_emits_complete_events_with_micros() {
        let json = chrome_trace(&[sample_span()]);
        let value = serde_json::from_str(&json).unwrap();
        let events = match value.get("traceEvents").unwrap() {
            Value::Array(events) => events,
            other => panic!("traceEvents is {other:?}"),
        };
        assert_eq!(events.len(), 1);
        let event = &events[0];
        assert_eq!(event.get("ph").unwrap(), &Value::String("X".to_string()));
        assert_eq!(event.get("ts").unwrap().as_f64().unwrap(), 1.5);
        assert_eq!(event.get("dur").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(
            event.get("args").unwrap().get("parent").unwrap(),
            &Value::UInt(3)
        );
    }

    #[test]
    fn metrics_value_has_the_three_top_level_sections() {
        let snapshot = MetricsSnapshot {
            counters: vec![("router.trials_run".to_string(), 12)],
            gauges: vec![("cache.hit_rate".to_string(), 0.5)],
            histograms: vec![(
                "batch.file_micros".to_string(),
                HistogramSummary {
                    count: 2,
                    sum: 30,
                    mean: 15.0,
                    min: 10,
                    max: 20,
                    p50: 15,
                    p90: 20,
                    p99: 20,
                },
            )],
        };
        let value = metrics_to_value(&snapshot);
        assert_eq!(
            value.get("counters").unwrap().get("router.trials_run"),
            Some(&Value::UInt(12))
        );
        assert!(value.get("gauges").unwrap().get("cache.hit_rate").is_some());
        let hist = value.get("histograms").unwrap().get("batch.file_micros");
        assert_eq!(hist.unwrap().get("p99"), Some(&Value::UInt(20)));
        // Round-trips through the JSON renderer and parser.
        let rendered = metrics_json(&snapshot);
        assert!(serde_json::from_str(&rendered).is_ok());
    }

    #[test]
    fn summary_table_lists_every_metric_name() {
        let snapshot = MetricsSnapshot {
            counters: vec![("a.count".to_string(), 1)],
            gauges: vec![("b.gauge".to_string(), 2.0)],
            histograms: vec![(
                "c.hist".to_string(),
                HistogramSummary {
                    count: 1,
                    sum: 5,
                    mean: 5.0,
                    min: 5,
                    max: 5,
                    p50: 5,
                    p90: 5,
                    p99: 5,
                },
            )],
        };
        let table = summary_table(&snapshot);
        for name in ["a.count", "b.gauge", "c.hist"] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
        assert_eq!(
            summary_table(&MetricsSnapshot::default()),
            "(no metrics recorded)\n"
        );
    }
}
