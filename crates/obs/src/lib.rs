//! # snailqc-obs
//!
//! Hand-rolled, zero-dependency observability for the snailqc workspace:
//! RAII tracing spans with parent/child nesting, a registry of named
//! counters / gauges / histograms, and exporters for Chrome trace-event
//! JSON (loadable in Perfetto or `chrome://tracing`), a flat metrics JSON
//! snapshot, and a human-readable summary table.
//!
//! ## Design
//!
//! The whole layer is gated on one process-global [`AtomicBool`]. Every
//! entry point — [`span()`], [`Counter::add`], [`histogram_record`] — checks
//! [`is_enabled`] first with a relaxed load behind an `#[inline]` fast
//! path, so instrumentation left in hot loops costs a single predicted
//! branch when observability is off. Because enabling instrumentation only
//! *records* what the code already did, it can never change computed
//! results; `crates/transpiler/tests/router_equivalence.rs` pins that
//! property against frozen output digests.
//!
//! ### Per-thread span buffers
//!
//! Spans are recorded into a `thread_local!` buffer (see [`mod@span`]), so the
//! rayon-style worker threads used by the router's best-of-trials fan-out
//! never contend on a lock while tracing: each open-span stack push, pop,
//! and finished-event append touches only thread-local memory. A thread's
//! buffer is drained into the global collector when the thread exits (the
//! buffer's `Drop` impl flushes it) or when [`take_spans`] is called on
//! that thread. The workspace's scoped-thread `rayon` stand-in joins all
//! workers before `collect` returns, so by the time a parallel region's
//! caller asks for spans, every worker buffer has already been flushed —
//! no explicit coordination needed.
//!
//! ### Metrics
//!
//! Counters and gauges are plain atomics interned by `&'static str` name
//! in a global registry; handles ([`Counter`], [`Histogram`]) clone an
//! `Arc` so hot loops can bypass the registry lock entirely. Histograms
//! use fixed log₂ buckets (see [`metrics`] module docs) giving p50/p90/p99
//! estimates that are at most one power of two above the true quantile.
//!
//! ## Quick start
//!
//! ```
//! snailqc_obs::enable();
//! {
//!     let _outer = snailqc_obs::span("outer");
//!     let _inner = snailqc_obs::span_with("inner", "detail");
//!     snailqc_obs::counter_add("work.items", 3);
//! }
//! let spans = snailqc_obs::take_spans();
//! let trace_json = snailqc_obs::chrome_trace(&spans);
//! let snapshot = snailqc_obs::snapshot();
//! assert_eq!(snapshot.counter("work.items"), Some(3));
//! assert!(trace_json.contains("traceEvents"));
//! snailqc_obs::disable();
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};

pub use export::{chrome_trace, metrics_json, metrics_to_value, summary_table};
pub use metrics::{
    counter, counter_add, gauge_set, histogram, histogram_record, reset_metrics, snapshot, Counter,
    Histogram, HistogramSummary, MetricsSnapshot,
};
pub use span::{span, span_with, take_spans, SpanEvent, SpanGuard};

/// Process-global switch; all recording entry points check it first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when instrumentation is recording. Relaxed load — this is the
/// disabled-path fast check and must stay as close to free as possible.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on. Idempotent.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Already-buffered spans and counter values are kept
/// until drained or reset.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// True when the `SNAILQC_TRACE` environment variable requests tracing
/// (any value other than empty or `0`).
pub fn env_requests_tracing() -> bool {
    match std::env::var("SNAILQC_TRACE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Drop all buffered spans and zero every registered metric. Mainly for
/// tests and long-lived processes that emit periodic snapshots.
pub fn reset() {
    let _ = span::take_spans();
    metrics::reset_metrics();
}

#[cfg(test)]
mod tests {
    // Behavioural tests that toggle the global ENABLED flag live in
    // tests/obs.rs behind a serialization lock; unit tests here stay
    // enablement-independent.
    #[test]
    fn env_flag_parsing_ignores_zero_and_empty() {
        // Can't set the env var safely in a parallel test run; just make
        // sure the function is callable and returns a bool.
        let _ = super::env_requests_tracing();
    }
}
