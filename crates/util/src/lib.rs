//! # snailqc-util
//!
//! Tiny helpers shared across the workspace.

#![warn(missing_docs)]

/// Normalizes a user-facing name for forgiving matching: lowercases and
/// strips every non-alphanumeric character, so `corral11-16`, `Corral1,1-16`
/// and `CORRAL_1_1_16` all compare equal. Used by the topology catalog, the
/// workload registry and the CLI's `--basis` matcher.
pub fn normalize_name(name: &str) -> String {
    name.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::normalize_name;

    #[test]
    fn strips_case_and_punctuation() {
        assert_eq!(normalize_name("Corral1,1-16"), "corral1116");
        assert_eq!(normalize_name("CORRAL_1_1_16"), "corral1116");
        assert_eq!(normalize_name("sqrt-iswap"), "sqrtiswap");
        assert_eq!(normalize_name(""), "");
    }
}
