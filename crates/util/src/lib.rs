//! # snailqc-util
//!
//! Tiny helpers shared across the workspace.

#![warn(missing_docs)]

/// Normalizes a user-facing name for forgiving matching: lowercases and
/// strips every non-alphanumeric character, so `corral11-16`, `Corral1,1-16`
/// and `CORRAL_1_1_16` all compare equal. Used by the topology catalog, the
/// workload registry and the CLI's `--basis` matcher.
pub fn normalize_name(name: &str) -> String {
    name.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// True when two user-facing names match after [`normalize_name`]
/// canonicalization — the single forgiving-name rule shared by the CLI's
/// `--topology`/`--device`/`--basis` flags, `catalog::by_name`, the device
/// registry and the serve daemon's warm-pool keys.
pub fn names_match(a: &str, b: &str) -> bool {
    normalize_name(a) == normalize_name(b)
}

/// 64-bit FNV-1a hash. Stable across platforms and releases, so it is safe
/// to derive persistent cache keys and per-file RNG seeds from it (unlike
/// `std::hash`, whose output is unspecified between runs).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes.iter().fold(OFFSET, |hash, &byte| {
        (hash ^ u64::from(byte)).wrapping_mul(PRIME)
    })
}

#[cfg(test)]
mod tests {
    use super::{fnv1a_64, names_match, normalize_name};

    #[test]
    fn strips_case_and_punctuation() {
        assert_eq!(normalize_name("Corral1,1-16"), "corral1116");
        assert_eq!(normalize_name("CORRAL_1_1_16"), "corral1116");
        assert_eq!(normalize_name("sqrt-iswap"), "sqrtiswap");
        assert_eq!(normalize_name(""), "");
    }

    #[test]
    fn names_match_is_forgiving_both_ways() {
        assert!(names_match("Heavy-Hex_127", "heavyhex127"));
        assert!(names_match("ibm_heavy_hex_127", "IBM Heavy Hex 127"));
        assert!(!names_match("grid-100", "grid-256"));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
        // Distinct inputs hash apart (the property the seeds rely on).
        assert_ne!(fnv1a_64(b"adder12.qasm"), fnv1a_64(b"adder16.qasm"));
    }
}
