//! Negative suite: every malformed spec must fail with a diagnostic whose
//! `line:column` points at the offending construct, not at byte zero.

use snailqc_devices::DeviceSpec;

/// Parses an expected-bad spec and returns `(message, line, col)`.
fn fail(text: &str) -> (String, usize, usize) {
    let err = DeviceSpec::parse(text).expect_err("spec should be rejected");
    assert!(err.line > 0, "error should carry a position: {err:?}");
    (err.message, err.line, err.col)
}

#[test]
fn missing_version_key() {
    let (msg, _, _) =
        fail(r#"{"name": "x", "topology": {"generator": "ring", "params": {"qubits": 4}}}"#);
    assert!(msg.contains("snailqc_device"), "{msg}");
}

#[test]
fn unsupported_version_points_at_the_value() {
    let text = "{\n  \"snailqc_device\": 7,\n  \"name\": \"x\",\n  \"topology\": {\"generator\": \"ring\", \"params\": {\"qubits\": 4}}\n}";
    let (msg, line, col) = fail(text);
    assert!(msg.contains("unsupported device-spec version 7"), "{msg}");
    assert_eq!((line, col), (2, 21), "should point at the `7`");
}

#[test]
fn unknown_generator_points_at_its_name() {
    let text = "{\n  \"snailqc_device\": 1,\n  \"name\": \"x\",\n  \"topology\": {\"generator\": \"moebius\", \"params\": {\"qubits\": 4}}\n}";
    let (msg, line, col) = fail(text);
    assert!(msg.contains("unknown generator `moebius`"), "{msg}");
    assert_eq!(line, 4);
    assert_eq!(col, 29, "should point at the generator name string");
}

#[test]
fn out_of_range_qubit_points_at_the_edge() {
    let text = "{\n  \"snailqc_device\": 1,\n  \"name\": \"x\",\n  \"topology\": {\n    \"qubits\": 3,\n    \"edges\": [[0, 1], [1, 2], [2, 9]]\n  }\n}";
    let (msg, line, _) = fail(text);
    assert!(
        msg.contains("qubit 9 out of range for a 3-qubit device"),
        "{msg}"
    );
    assert_eq!(line, 6, "should point into the edges array");
}

#[test]
fn duplicate_edge_is_rejected_with_position() {
    let text = "{\n  \"snailqc_device\": 1,\n  \"name\": \"x\",\n  \"topology\": {\n    \"qubits\": 3,\n    \"edges\": [[0, 1], [1, 2], [1, 0]]\n  }\n}";
    let (msg, line, _) = fail(text);
    assert!(msg.contains("duplicate"), "{msg}");
    assert_eq!(line, 6);
}

#[test]
fn self_loop_is_rejected() {
    let (msg, _, _) = fail(
        r#"{"snailqc_device": 1, "name": "x", "topology": {"qubits": 3, "edges": [[0, 1], [1, 1], [1, 2]]}}"#,
    );
    assert!(msg.contains("self-loop") || msg.contains("itself"), "{msg}");
}

#[test]
fn disconnected_edge_list_is_rejected() {
    let (msg, _, _) = fail(
        r#"{"snailqc_device": 1, "name": "x", "topology": {"qubits": 4, "edges": [[0, 1], [2, 3]]}}"#,
    );
    assert!(msg.contains("connected"), "{msg}");
}

#[test]
fn unknown_top_level_key_is_rejected() {
    let (msg, _, _) = fail(
        r#"{"snailqc_device": 1, "name": "x", "colour": "red", "topology": {"generator": "ring", "params": {"qubits": 4}}}"#,
    );
    assert!(msg.contains("unknown") && msg.contains("colour"), "{msg}");
}

#[test]
fn unknown_basis_is_rejected_in_place() {
    let text = "{\n  \"snailqc_device\": 1,\n  \"name\": \"x\",\n  \"basis\": \"toffoli\",\n  \"topology\": {\"generator\": \"ring\", \"params\": {\"qubits\": 4}}\n}";
    let (msg, line, _) = fail(text);
    assert!(msg.contains("unknown basis `toffoli`"), "{msg}");
    assert_eq!(line, 4);
}

#[test]
fn truncation_larger_than_generated_size_is_rejected() {
    let (msg, _, _) = fail(
        r#"{"snailqc_device": 1, "name": "x", "topology": {"generator": "ring", "params": {"qubits": 8}, "qubits": 9}}"#,
    );
    assert!(msg.contains('8') && msg.contains('9'), "{msg}");
}

#[test]
fn missing_generator_param_is_reported() {
    let (msg, _, _) = fail(
        r#"{"snailqc_device": 1, "name": "x", "topology": {"generator": "grid", "params": {"rows": 4}}}"#,
    );
    assert!(msg.contains("cols"), "{msg}");
}

#[test]
fn wrong_json_type_reports_found_type() {
    let (msg, _, _) = fail(
        r#"{"snailqc_device": 1, "name": "x", "topology": {"generator": "ring", "params": {"qubits": "four"}}}"#,
    );
    assert!(msg.contains("string"), "{msg}");
}

#[test]
fn malformed_json_fails_with_position() {
    let err = DeviceSpec::parse("{\"snailqc_device\": 1,\n  \"name\": }").expect_err("bad JSON");
    assert_eq!(err.line, 2, "{err:?}");
}

#[test]
fn empty_name_is_rejected() {
    let (msg, _, _) = fail(
        r#"{"snailqc_device": 1, "name": "", "topology": {"generator": "ring", "params": {"qubits": 4}}}"#,
    );
    assert!(msg.contains("name"), "{msg}");
}

#[test]
fn error_model_of_wrong_type_is_rejected() {
    let (msg, _, _) = fail(
        r#"{"snailqc_device": 1, "name": "x", "error_model": 5, "topology": {"generator": "ring", "params": {"qubits": 4}}}"#,
    );
    assert!(msg.contains("error_model"), "{msg}");
}
