//! Span-carrying device-spec diagnostics.

/// A device-spec parse or validation error pinned to a `line:column`
/// position in the source text, so a typo in a hand-edited spec file is
/// reported where it sits, not as a bare "invalid spec".
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line; `0` when no position applies (I/O errors).
    pub line: usize,
    /// 1-based byte column within the line.
    pub col: usize,
}

impl SpecError {
    /// An error pinned to a `(line, column)` source position.
    pub fn at(message: impl Into<String>, (line, col): (usize, usize)) -> Self {
        Self {
            message: message.into(),
            line,
            col,
        }
    }

    /// An error with no useful source position (e.g. reading the file
    /// failed before parsing started).
    pub fn bare(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            line: 0,
            col: 0,
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "line {}, column {}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::SpecError;

    #[test]
    fn display_includes_position_when_present() {
        let e = SpecError::at("bad qubit", (3, 14));
        assert_eq!(e.to_string(), "line 3, column 14: bad qubit");
        let bare = SpecError::bare("no such file");
        assert_eq!(bare.to_string(), "no such file");
    }
}
