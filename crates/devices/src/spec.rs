//! The versioned JSON device-spec format: parsing with span-carrying
//! diagnostics, semantic validation, graph construction, and the reverse
//! direction (exporting a built graph back to a spec).

use crate::error::SpecError;
use crate::generator::{GeneratorSpec, MAX_QUBITS};
use serde::Value;
use serde_json::spanned::{self, Spanned, SpannedKey, SpannedValue};
use snailqc_decompose::BasisGate;
use snailqc_topology::{CouplingGraph, DEFAULT_EDGE_ERROR};
use snailqc_util::normalize_name;
use std::collections::HashSet;

/// The spec-format version this build reads (the `snailqc_device` field).
pub const SPEC_VERSION: u64 = 1;

/// The keys allowed at the top level of a device spec.
const TOP_KEYS: [&str; 7] = [
    "snailqc_device",
    "name",
    "display_name",
    "description",
    "basis",
    "topology",
    "error_model",
];

/// A parsed, validated device specification.
///
/// A spec is pure data: it describes a machine (topology, optional native
/// basis, optional error model) without touching any transpiler machinery.
/// `snailqc-core` turns one into a routable `Device` via
/// `Device::from_spec_str` / `Device::from_spec_file`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Canonical machine name (the registry key; matched forgivingly).
    pub name: String,
    /// Optional human-facing label; becomes the graph name when present.
    pub display_name: Option<String>,
    /// Free-form provenance / description text.
    pub description: Option<String>,
    /// Native two-qubit basis gate, when the machine has one.
    pub basis: Option<BasisGate>,
    /// Where the coupling graph comes from.
    pub topology: TopologySource,
    /// Optional error model riding the `ErrorModelSpec` machinery in
    /// `snailqc-core` — carried here as raw data because this crate sits
    /// below `snailqc-core` in the dependency graph.
    pub error_model: Option<ErrorModelRef>,
    /// Source position of the `error_model` value, so core can report
    /// semantic error-model problems with a spec-file position.
    pub error_model_at: Option<(usize, usize)>,
}

/// A spec's topology: explicit edges, or a parameterized generator.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySource {
    /// An explicit edge list over `0..qubits`.
    Edges {
        /// Number of qubits.
        qubits: usize,
        /// Undirected coupling edges.
        edges: Vec<(usize, usize)>,
    },
    /// A `builders::*` generator invocation, optionally boundary-truncated
    /// to `qubits` (how the heavy-hex 127/133/433 machines are carved out
    /// of their regular lattices).
    Generator {
        /// The generator and its validated parameters.
        generator: GeneratorSpec,
        /// Optional truncation target (`<=` the generated size).
        qubits: Option<usize>,
    },
}

/// An error model referenced by a spec: a named preset, or an inline JSON
/// object in `ErrorModelSpec::from_json` form (re-serialized compact).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorModelRef {
    /// A preset name (`default`, `control`, `decoherence`, `calibrated`).
    Preset(String),
    /// Compact JSON text of an inline error-model object.
    Inline(String),
}

/// The canonical spec-file spelling of a basis gate (accepted back by
/// `BasisGate::by_name`).
pub fn basis_name(basis: BasisGate) -> &'static str {
    match basis {
        BasisGate::Cnot => "cnot",
        BasisGate::SqrtISwap => "sqrt-iswap",
        BasisGate::Syc => "syc",
    }
}

impl std::str::FromStr for DeviceSpec {
    type Err = SpecError;

    fn from_str(text: &str) -> Result<Self, SpecError> {
        parse_spec(text)
    }
}

impl DeviceSpec {
    /// Parses and validates device-spec JSON. Every error carries the
    /// `line:column` of the offending construct.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        text.parse()
    }

    /// The human-facing label: `display_name` when present, else `name`.
    pub fn label(&self) -> &str {
        self.display_name.as_deref().unwrap_or(&self.name)
    }

    /// The qubit count this spec describes, without building the graph.
    pub fn qubits(&self) -> Result<usize, SpecError> {
        match &self.topology {
            TopologySource::Edges { qubits, .. } => Ok(*qubits),
            TopologySource::Generator { generator, qubits } => {
                let full = generator.checked_qubits().map_err(SpecError::bare)?;
                Ok(qubits.unwrap_or(full))
            }
        }
    }

    /// Builds the coupling graph this spec describes, named after
    /// [`label`](DeviceSpec::label). Semantic constraints are re-checked, so
    /// a hand-constructed (not parsed) spec still cannot panic the builders;
    /// errors from this path carry no source position.
    pub fn build_graph(&self) -> Result<CouplingGraph, SpecError> {
        match &self.topology {
            TopologySource::Edges { qubits, edges } => {
                if *qubits == 0 || *qubits > MAX_QUBITS {
                    return Err(SpecError::bare(format!(
                        "`qubits` must be in 1..={MAX_QUBITS}, got {qubits}"
                    )));
                }
                let mut seen = HashSet::new();
                for &(a, b) in edges {
                    if a >= *qubits || b >= *qubits {
                        return Err(SpecError::bare(format!(
                            "edge [{a}, {b}] out of range for a {qubits}-qubit device"
                        )));
                    }
                    if a == b {
                        return Err(SpecError::bare(format!("edge [{a}, {b}] is a self-loop")));
                    }
                    if !seen.insert((a.min(b), a.max(b))) {
                        return Err(SpecError::bare(format!("duplicate edge [{a}, {b}]")));
                    }
                }
                let g = CouplingGraph::from_edges(self.label(), *qubits, edges);
                if *qubits > 1 && !g.is_connected() {
                    return Err(SpecError::bare(format!(
                        "topology is disconnected ({qubits} qubits, {} edges)",
                        edges.len()
                    )));
                }
                Ok(g)
            }
            TopologySource::Generator { generator, qubits } => {
                let full = generator.checked_qubits().map_err(SpecError::bare)?;
                let g = generator.build();
                match qubits {
                    Some(n) => {
                        if *n == 0 || *n > full {
                            return Err(SpecError::bare(format!(
                                "cannot truncate `{}` ({} qubits) to {}",
                                generator.spec_name(),
                                full,
                                n
                            )));
                        }
                        Ok(g.truncate_boundary(*n, self.label()))
                    }
                    None => {
                        let mut g = g;
                        g.set_name(self.label());
                        Ok(g)
                    }
                }
            }
        }
    }

    /// Exports a built graph as an explicit-edge spec, carrying the graph
    /// name as `display_name` and any non-uniform per-edge error rates as an
    /// inline error model — the inverse of
    /// [`build_graph`](DeviceSpec::build_graph) up to rate-preserving
    /// round-trips.
    pub fn from_graph(name: impl Into<String>, graph: &CouplingGraph) -> Self {
        let name = name.into();
        let default = graph.default_edge_error();
        let overrides: Vec<(usize, usize, f64)> = graph
            .edge_errors()
            .filter(|&(_, rate)| rate != default)
            .map(|((a, b), rate)| (a, b, rate))
            .collect();
        let error_model = if default == DEFAULT_EDGE_ERROR && overrides.is_empty() {
            None
        } else {
            let mut entries: Vec<(String, Value)> =
                vec![("per_gate_infidelity".into(), Value::Float(default))];
            if !overrides.is_empty() {
                entries.push((
                    "edges".into(),
                    Value::Array(
                        overrides
                            .iter()
                            .map(|&(a, b, rate)| {
                                Value::Array(vec![
                                    Value::UInt(a as u64),
                                    Value::UInt(b as u64),
                                    Value::Float(rate),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Some(ErrorModelRef::Inline(
                serde_json::to_string(&Value::Object(entries)).expect("edge rates are finite"),
            ))
        };
        DeviceSpec {
            display_name: (graph.name() != name).then(|| graph.name().to_string()),
            name,
            description: None,
            basis: None,
            topology: TopologySource::Edges {
                qubits: graph.num_qubits(),
                edges: graph.edges().collect(),
            },
            error_model,
            error_model_at: None,
        }
    }

    /// Renders the spec as pretty-printed JSON (the `device-gen` output
    /// format); [`parse`](DeviceSpec::parse) reads it back verbatim.
    pub fn to_json(&self) -> String {
        let mut top: Vec<(String, Value)> = vec![
            ("snailqc_device".into(), Value::UInt(SPEC_VERSION)),
            ("name".into(), Value::String(self.name.clone())),
        ];
        if let Some(d) = &self.display_name {
            top.push(("display_name".into(), Value::String(d.clone())));
        }
        if let Some(d) = &self.description {
            top.push(("description".into(), Value::String(d.clone())));
        }
        if let Some(b) = self.basis {
            top.push(("basis".into(), Value::String(basis_name(b).into())));
        }
        top.push(("topology".into(), self.topology_value()));
        if let Some(em) = &self.error_model {
            let value = match em {
                ErrorModelRef::Preset(name) => Value::String(name.clone()),
                ErrorModelRef::Inline(text) => {
                    serde_json::from_str(text).expect("inline error model is valid JSON")
                }
            };
            top.push(("error_model".into(), value));
        }
        let mut text =
            serde_json::to_string_pretty(&Value::Object(top)).expect("spec values are finite");
        text.push('\n');
        text
    }

    fn topology_value(&self) -> Value {
        match &self.topology {
            TopologySource::Edges { qubits, edges } => Value::Object(vec![
                ("qubits".into(), Value::UInt(*qubits as u64)),
                (
                    "edges".into(),
                    Value::Array(
                        edges
                            .iter()
                            .map(|&(a, b)| {
                                Value::Array(vec![Value::UInt(a as u64), Value::UInt(b as u64)])
                            })
                            .collect(),
                    ),
                ),
            ]),
            TopologySource::Generator { generator, qubits } => {
                let mut entries = vec![
                    (
                        "generator".into(),
                        Value::String(generator.spec_name().into()),
                    ),
                    ("params".into(), generator.params_json()),
                ];
                if let Some(n) = qubits {
                    entries.push(("qubits".into(), Value::UInt(*n as u64)));
                }
                Value::Object(entries)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Shared state for span-aware parsing: the source text, for byte-offset →
/// `line:col` conversion.
struct Cx<'a> {
    text: &'a str,
}

impl Cx<'_> {
    fn pos(&self, byte: usize) -> (usize, usize) {
        spanned::line_col(self.text, byte)
    }

    fn err(&self, message: impl Into<String>, byte: usize) -> SpecError {
        SpecError::at(message, self.pos(byte))
    }
}

fn find<'s>(entries: &'s [(SpannedKey, Spanned)], key: &str) -> Option<&'s Spanned> {
    entries.iter().find(|(k, _)| k.name == key).map(|(_, v)| v)
}

fn find_key<'s>(entries: &'s [(SpannedKey, Spanned)], key: &str) -> Option<&'s SpannedKey> {
    entries.iter().find(|(k, _)| k.name == key).map(|(k, _)| k)
}

fn check_keys(
    cx: &Cx,
    entries: &[(SpannedKey, Spanned)],
    known: &[&str],
    what: &str,
) -> Result<(), SpecError> {
    let mut seen: Vec<&str> = Vec::new();
    for (key, _) in entries {
        if !known.contains(&key.name.as_str()) {
            return Err(cx.err(
                format!(
                    "unknown {what} key `{}` (known: {})",
                    key.name,
                    known.join(", ")
                ),
                key.start,
            ));
        }
        if seen.contains(&key.name.as_str()) {
            return Err(cx.err(format!("duplicate {what} key `{}`", key.name), key.start));
        }
        seen.push(&key.name);
    }
    Ok(())
}

fn as_object<'s>(
    cx: &Cx,
    v: &'s Spanned,
    what: &str,
) -> Result<&'s [(SpannedKey, Spanned)], SpecError> {
    match &v.value {
        SpannedValue::Object(entries) => Ok(entries),
        _ => Err(cx.err(
            format!("{what} must be an object, found {}", v.type_name()),
            v.start,
        )),
    }
}

fn as_string<'s>(cx: &Cx, v: &'s Spanned, what: &str) -> Result<&'s str, SpecError> {
    match &v.value {
        SpannedValue::String(s) => Ok(s),
        _ => Err(cx.err(
            format!("{what} must be a string, found {}", v.type_name()),
            v.start,
        )),
    }
}

fn as_uint(cx: &Cx, v: &Spanned, what: &str) -> Result<u64, SpecError> {
    match &v.value {
        SpannedValue::UInt(u) => Ok(*u),
        _ => Err(cx.err(
            format!(
                "{what} must be a non-negative integer, found {}",
                v.type_name()
            ),
            v.start,
        )),
    }
}

fn as_bool(cx: &Cx, v: &Spanned, what: &str) -> Result<bool, SpecError> {
    match &v.value {
        SpannedValue::Bool(b) => Ok(*b),
        _ => Err(cx.err(
            format!("{what} must be a boolean, found {}", v.type_name()),
            v.start,
        )),
    }
}

fn parse_spec(text: &str) -> Result<DeviceSpec, SpecError> {
    let cx = Cx { text };
    let root = spanned::from_str(text)
        .map_err(|e| SpecError::at(format!("invalid JSON: {e}"), spanned::line_col(text, e.at)))?;
    let entries = as_object(&cx, &root, "a device spec")?;

    // The version marker gates everything else: a future-format file should
    // say "unsupported version", not trip over keys this build doesn't know.
    let ver = find(entries, "snailqc_device").ok_or_else(|| {
        cx.err(
            format!("missing required key `snailqc_device` (the device-spec version, currently {SPEC_VERSION})"),
            root.start,
        )
    })?;
    let version = as_uint(&cx, ver, "`snailqc_device`")?;
    if version != SPEC_VERSION {
        return Err(cx.err(
            format!(
                "unsupported device-spec version {version} (this build reads version {SPEC_VERSION})"
            ),
            ver.start,
        ));
    }
    check_keys(&cx, entries, &TOP_KEYS, "device-spec")?;

    let name_v =
        find(entries, "name").ok_or_else(|| cx.err("missing required key `name`", root.start))?;
    let name = as_string(&cx, name_v, "`name`")?.to_string();
    if name.trim().is_empty() {
        return Err(cx.err("`name` must not be empty", name_v.start));
    }
    let display_name = find(entries, "display_name")
        .map(|v| as_string(&cx, v, "`display_name`").map(str::to_string))
        .transpose()?;
    let description = find(entries, "description")
        .map(|v| as_string(&cx, v, "`description`").map(str::to_string))
        .transpose()?;

    let basis = match find(entries, "basis") {
        None => None,
        Some(v) => {
            let s = as_string(&cx, v, "`basis`")?;
            BasisGate::by_name(s).map_err(|e| cx.err(e, v.start))?
        }
    };

    let topo_v = find(entries, "topology")
        .ok_or_else(|| cx.err("missing required key `topology`", root.start))?;
    let topology = parse_topology(&cx, topo_v)?;

    let (error_model, error_model_at) = match find(entries, "error_model") {
        None => (None, None),
        Some(v) => {
            let at = cx.pos(v.start);
            let em = match &v.value {
                SpannedValue::String(s) => ErrorModelRef::Preset(s.clone()),
                SpannedValue::Object(_) => ErrorModelRef::Inline(
                    serde_json::to_string(&v.to_value()).expect("parsed JSON is finite"),
                ),
                _ => {
                    return Err(cx.err(
                        format!(
                            "`error_model` must be a preset name or an object, found {}",
                            v.type_name()
                        ),
                        v.start,
                    ))
                }
            };
            (Some(em), Some(at))
        }
    };

    Ok(DeviceSpec {
        name,
        display_name,
        description,
        basis,
        topology,
        error_model,
        error_model_at,
    })
}

fn parse_topology(cx: &Cx, v: &Spanned) -> Result<TopologySource, SpecError> {
    let entries = as_object(cx, v, "`topology`")?;
    check_keys(
        cx,
        entries,
        &["qubits", "edges", "generator", "params"],
        "topology",
    )?;
    match (find(entries, "edges"), find(entries, "generator")) {
        (Some(_), Some(_)) => {
            let key = find_key(entries, "generator").expect("just matched");
            Err(cx.err(
                "a topology has either `edges` or a `generator`, not both",
                key.start,
            ))
        }
        (Some(edges_v), None) => {
            if let Some(key) = find_key(entries, "params") {
                return Err(cx.err("`params` only applies to generator topologies", key.start));
            }
            let qubits_v = find(entries, "qubits").ok_or_else(|| {
                cx.err(
                    "`topology.qubits` is required with explicit `edges`",
                    v.start,
                )
            })?;
            let qubits = parse_qubit_count(cx, qubits_v)?;
            let edges = parse_edges(cx, edges_v, qubits)?;
            let probe = CouplingGraph::from_edges("spec", qubits, &edges);
            if qubits > 1 && !probe.is_connected() {
                return Err(cx.err(
                    format!(
                        "topology is disconnected ({qubits} qubits, {} edges)",
                        edges.len()
                    ),
                    edges_v.start,
                ));
            }
            Ok(TopologySource::Edges { qubits, edges })
        }
        (None, Some(gen_v)) => {
            let gen_name = as_string(cx, gen_v, "`generator`")?;
            let params = Params {
                entries: find(entries, "params")
                    .map(|p| as_object(cx, p, "`params`"))
                    .transpose()?
                    .unwrap_or(&[]),
                missing_at: find(entries, "params").map_or(v.start, |p| p.start),
            };
            let generator = parse_generator(cx, gen_name, gen_v.start, &params)?;
            let full = generator
                .checked_qubits()
                .map_err(|e| cx.err(e, params.missing_at))?;
            let qubits = match find(entries, "qubits") {
                None => None,
                Some(qv) => {
                    let n = parse_qubit_count(cx, qv)?;
                    if n > full {
                        return Err(cx.err(
                            format!(
                                "generator `{}` yields {full} qubits; cannot truncate to {n}",
                                generator.spec_name()
                            ),
                            qv.start,
                        ));
                    }
                    Some(n)
                }
            };
            Ok(TopologySource::Generator { generator, qubits })
        }
        (None, None) => Err(cx.err(
            "`topology` needs either explicit `edges` or a `generator`",
            v.start,
        )),
    }
}

fn parse_qubit_count(cx: &Cx, v: &Spanned) -> Result<usize, SpecError> {
    let n = as_uint(cx, v, "`qubits`")?;
    if n == 0 || n > MAX_QUBITS as u64 {
        return Err(cx.err(
            format!("`qubits` must be in 1..={MAX_QUBITS}, got {n}"),
            v.start,
        ));
    }
    Ok(n as usize)
}

fn parse_edges(cx: &Cx, v: &Spanned, qubits: usize) -> Result<Vec<(usize, usize)>, SpecError> {
    let SpannedValue::Array(items) = &v.value else {
        return Err(cx.err(
            format!("`edges` must be an array, found {}", v.type_name()),
            v.start,
        ));
    };
    let mut edges = Vec::with_capacity(items.len());
    let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(items.len());
    for item in items {
        let pair = match &item.value {
            SpannedValue::Array(pair) if pair.len() == 2 => pair,
            _ => return Err(cx.err("each edge must be a two-element [a, b] pair", item.start)),
        };
        let a = parse_edge_qubit(cx, &pair[0], qubits)?;
        let b = parse_edge_qubit(cx, &pair[1], qubits)?;
        if a == b {
            return Err(cx.err(format!("edge [{a}, {b}] is a self-loop"), item.start));
        }
        if !seen.insert((a.min(b), a.max(b))) {
            return Err(cx.err(format!("duplicate edge [{a}, {b}]"), item.start));
        }
        edges.push((a, b));
    }
    Ok(edges)
}

fn parse_edge_qubit(cx: &Cx, v: &Spanned, qubits: usize) -> Result<usize, SpecError> {
    let q = as_uint(cx, v, "edge qubit")?;
    if q >= qubits as u64 {
        return Err(cx.err(
            format!("qubit {q} out of range for a {qubits}-qubit device"),
            v.start,
        ));
    }
    Ok(q as usize)
}

/// The `params` object of a generator topology (possibly absent, in which
/// case missing-parameter errors point at the enclosing topology object).
struct Params<'s> {
    entries: &'s [(SpannedKey, Spanned)],
    missing_at: usize,
}

impl Params<'_> {
    fn check(&self, cx: &Cx, known: &[&str]) -> Result<(), SpecError> {
        check_keys(cx, self.entries, known, "generator param")
    }

    fn need_usize(&self, cx: &Cx, key: &str) -> Result<usize, SpecError> {
        match find(self.entries, key) {
            Some(v) => {
                let n = as_uint(cx, v, &format!("`{key}`"))?;
                if n > MAX_QUBITS as u64 {
                    return Err(cx.err(
                        format!("`{key}` {n} exceeds the supported maximum {MAX_QUBITS}"),
                        v.start,
                    ));
                }
                Ok(n as usize)
            }
            None => Err(cx.err(format!("generator requires param `{key}`"), self.missing_at)),
        }
    }

    fn opt_bool(&self, cx: &Cx, key: &str) -> Result<Option<bool>, SpecError> {
        find(self.entries, key)
            .map(|v| as_bool(cx, v, &format!("`{key}`")))
            .transpose()
    }
}

fn parse_generator(
    cx: &Cx,
    name: &str,
    name_at: usize,
    params: &Params,
) -> Result<GeneratorSpec, SpecError> {
    Ok(match normalize_name(name).as_str() {
        "line" => {
            params.check(cx, &["qubits"])?;
            GeneratorSpec::Line {
                qubits: params.need_usize(cx, "qubits")?,
            }
        }
        "ring" => {
            params.check(cx, &["qubits"])?;
            GeneratorSpec::Ring {
                qubits: params.need_usize(cx, "qubits")?,
            }
        }
        "complete" | "alltoall" | "fullyconnected" => {
            params.check(cx, &["qubits"])?;
            GeneratorSpec::Complete {
                qubits: params.need_usize(cx, "qubits")?,
            }
        }
        "star" => {
            params.check(cx, &["qubits"])?;
            GeneratorSpec::Star {
                qubits: params.need_usize(cx, "qubits")?,
            }
        }
        "grid" | "square" | "squarelattice" => {
            params.check(cx, &["rows", "cols"])?;
            GeneratorSpec::Grid {
                rows: params.need_usize(cx, "rows")?,
                cols: params.need_usize(cx, "cols")?,
            }
        }
        "griddiagonals" | "latticealtdiagonals" => {
            params.check(cx, &["rows", "cols"])?;
            GeneratorSpec::GridDiagonals {
                rows: params.need_usize(cx, "rows")?,
                cols: params.need_usize(cx, "cols")?,
            }
        }
        "hex" | "hexlattice" => {
            params.check(cx, &["rows", "cols"])?;
            GeneratorSpec::Hex {
                rows: params.need_usize(cx, "rows")?,
                cols: params.need_usize(cx, "cols")?,
            }
        }
        "heavyhex" => {
            params.check(cx, &["rows", "cols"])?;
            GeneratorSpec::HeavyHex {
                rows: params.need_usize(cx, "rows")?,
                cols: params.need_usize(cx, "cols")?,
            }
        }
        "hypercube" => {
            params.check(cx, &["qubits"])?;
            GeneratorSpec::Hypercube {
                qubits: params.need_usize(cx, "qubits")?,
            }
        }
        "tree" => {
            params.check(cx, &["levels", "round_robin"])?;
            GeneratorSpec::Tree {
                levels: params.need_usize(cx, "levels")?,
                round_robin: params.opt_bool(cx, "round_robin")?.unwrap_or(false),
            }
        }
        "treerr" => {
            params.check(cx, &["levels"])?;
            GeneratorSpec::Tree {
                levels: params.need_usize(cx, "levels")?,
                round_robin: true,
            }
        }
        "corral" => {
            params.check(cx, &["posts", "stride_a", "stride_b"])?;
            GeneratorSpec::Corral {
                posts: params.need_usize(cx, "posts")?,
                stride_a: params.need_usize(cx, "stride_a")?,
                stride_b: params.need_usize(cx, "stride_b")?,
            }
        }
        _ => {
            return Err(cx.err(
                format!(
                    "unknown generator `{name}` (known: {})",
                    GeneratorSpec::KNOWN
                ),
                name_at,
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(topology: &str) -> String {
        format!(r#"{{"snailqc_device": 1, "name": "t", "topology": {topology}}}"#)
    }

    #[test]
    fn parses_an_explicit_edge_list() {
        let spec = DeviceSpec::parse(&minimal(r#"{"qubits": 3, "edges": [[0, 1], [1, 2]]}"#))
            .expect("parses");
        assert_eq!(
            spec.topology,
            TopologySource::Edges {
                qubits: 3,
                edges: vec![(0, 1), (1, 2)],
            }
        );
        let g = spec.build_graph().expect("builds");
        assert_eq!(g.num_qubits(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.name(), "t");
    }

    #[test]
    fn parses_a_generator_with_truncation() {
        let text = r#"{"snailqc_device": 1, "name": "hh", "display_name": "Heavy-Hex 127",
                "basis": "cnot",
                "topology": {"generator": "heavy-hex", "params": {"rows": 3, "cols": 7}, "qubits": 127}}"#;
        let spec = DeviceSpec::parse(text).expect("parses");
        assert_eq!(spec.basis, Some(BasisGate::Cnot));
        let g = spec.build_graph().expect("builds");
        assert_eq!(g.num_qubits(), 127);
        assert_eq!(g.name(), "Heavy-Hex 127");
        assert!(g.is_connected());
    }

    #[test]
    fn generator_matching_is_forgiving() {
        for alias in ["Heavy-Hex", "HEAVYHEX", "heavy_hex"] {
            let text = minimal(&format!(
                r#"{{"generator": "{alias}", "params": {{"rows": 2, "cols": 2}}}}"#
            ));
            assert!(DeviceSpec::parse(&text).is_ok(), "{alias}");
        }
    }

    #[test]
    fn spec_round_trips_through_to_json() {
        for topology in [
            r#"{"qubits": 4, "edges": [[0, 1], [1, 2], [2, 3], [3, 0]]}"#,
            r#"{"generator": "corral", "params": {"posts": 8, "stride_a": 1, "stride_b": 3}}"#,
            r#"{"generator": "tree-rr", "params": {"levels": 2}}"#,
            r#"{"generator": "heavy-hex", "params": {"rows": 3, "cols": 7}, "qubits": 127}"#,
        ] {
            let spec = DeviceSpec::parse(&minimal(topology)).expect("parses");
            let reparsed = DeviceSpec::parse(&spec.to_json()).expect("round-trips");
            assert_eq!(spec, reparsed, "{topology}");
        }
    }

    #[test]
    fn from_graph_round_trips_edges_and_rates() {
        let mut g = snailqc_topology::builders::corral(8, 1, 3);
        g.set_edge_error(0, 1, 0.025);
        g.set_edge_error(2, 3, 0.0125);
        let spec = DeviceSpec::from_graph("corral-test", &g);
        let reparsed = DeviceSpec::parse(&spec.to_json()).expect("round-trips");
        let rebuilt = reparsed.build_graph().expect("builds");
        assert_eq!(rebuilt.num_qubits(), g.num_qubits());
        assert_eq!(
            rebuilt.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
        // The inline error model is carried as data; rates are only stamped
        // when core applies it, so here we just check it survived the trip.
        assert_eq!(spec.error_model, reparsed.error_model);
        assert!(matches!(
            reparsed.error_model,
            Some(ErrorModelRef::Inline(_))
        ));
    }

    #[test]
    fn version_and_structure_errors_carry_positions() {
        // Bad version: points at the version value.
        let e = DeviceSpec::parse(r#"{"snailqc_device": 2, "name": "x", "topology": {}}"#)
            .expect_err("bad version");
        assert!(
            e.message.contains("unsupported device-spec version 2"),
            "{e}"
        );
        assert_eq!((e.line, e.col), (1, 20));

        // Missing version.
        let e = DeviceSpec::parse(r#"{"name": "x"}"#).expect_err("missing version");
        assert!(e.message.contains("snailqc_device"), "{e}");

        // Unknown top-level key: points at the key.
        let e = DeviceSpec::parse(
            r#"{"snailqc_device": 1, "name": "x", "nope": 3, "topology": {"qubits": 1, "edges": []}}"#,
        )
        .expect_err("unknown key");
        assert!(e.message.contains("unknown device-spec key `nope`"), "{e}");
        assert_eq!((e.line, e.col), (1, 36));
    }

    #[test]
    fn edge_errors_carry_positions() {
        // Out-of-range qubit.
        let e = DeviceSpec::parse(&minimal(r#"{"qubits": 2, "edges": [[0, 7]]}"#))
            .expect_err("out of range");
        assert!(e.message.contains("qubit 7 out of range"), "{e}");

        // Duplicate edge (order-insensitive).
        let e = DeviceSpec::parse(&minimal(
            r#"{"qubits": 3, "edges": [[0, 1], [1, 2], [1, 0]]}"#,
        ))
        .expect_err("duplicate");
        assert!(e.message.contains("duplicate edge [1, 0]"), "{e}");

        // Self-loop.
        let e = DeviceSpec::parse(&minimal(
            r#"{"qubits": 3, "edges": [[1, 1], [0, 1], [1, 2]]}"#,
        ))
        .expect_err("self-loop");
        assert!(e.message.contains("self-loop"), "{e}");

        // Disconnected.
        let e = DeviceSpec::parse(&minimal(r#"{"qubits": 4, "edges": [[0, 1], [2, 3]]}"#))
            .expect_err("disconnected");
        assert!(e.message.contains("disconnected"), "{e}");
    }

    #[test]
    fn generator_errors_carry_positions() {
        // Unknown generator name.
        let e = DeviceSpec::parse(&minimal(r#"{"generator": "moebius", "params": {}}"#))
            .expect_err("unknown generator");
        assert!(e.message.contains("unknown generator `moebius`"), "{e}");

        // Unknown param.
        let e = DeviceSpec::parse(&minimal(
            r#"{"generator": "grid", "params": {"rows": 2, "cols": 2, "depth": 3}}"#,
        ))
        .expect_err("unknown param");
        assert!(
            e.message.contains("unknown generator param key `depth`"),
            "{e}"
        );

        // Missing param.
        let e = DeviceSpec::parse(&minimal(r#"{"generator": "grid", "params": {"rows": 2}}"#))
            .expect_err("missing param");
        assert!(e.message.contains("requires param `cols`"), "{e}");

        // Out-of-range truncation.
        let e = DeviceSpec::parse(&minimal(
            r#"{"generator": "grid", "params": {"rows": 2, "cols": 2}, "qubits": 9}"#,
        ))
        .expect_err("truncation too large");
        assert!(e.message.contains("cannot truncate to 9"), "{e}");

        // Builder-level range violations surface as spec errors, not panics.
        let e = DeviceSpec::parse(&minimal(
            r#"{"generator": "corral", "params": {"posts": 2, "stride_a": 1, "stride_b": 1}}"#,
        ))
        .expect_err("bad corral");
        assert!(e.message.contains("`posts` must be at least 3"), "{e}");
    }

    #[test]
    fn error_model_forms_are_preserved() {
        let preset = DeviceSpec::parse(
            r#"{"snailqc_device": 1, "name": "x", "error_model": "calibrated",
                "topology": {"generator": "ring", "params": {"qubits": 5}}}"#,
        )
        .expect("preset parses");
        assert_eq!(
            preset.error_model,
            Some(ErrorModelRef::Preset("calibrated".into()))
        );
        assert!(preset.error_model_at.is_some());

        let inline = DeviceSpec::parse(
            r#"{"snailqc_device": 1, "name": "x",
                "error_model": {"per_gate_infidelity": 0.002, "edges": [[0, 1, 0.01]]},
                "topology": {"generator": "ring", "params": {"qubits": 5}}}"#,
        )
        .expect("inline parses");
        let Some(ErrorModelRef::Inline(text)) = &inline.error_model else {
            panic!("inline expected");
        };
        assert!(text.contains("per_gate_infidelity"), "{text}");
    }
}
