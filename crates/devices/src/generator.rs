//! Parameterized topology generators: the spec-file face of the
//! `builders::*` family.
//!
//! A spec's `"topology": {"generator": ..., "params": {...}}` block resolves
//! to a [`GeneratorSpec`], which validates its parameters up front (so the
//! builders' internal `assert!`s can never fire on user input) and then
//! builds the graph through the exact same code path the built-in catalog
//! uses — which is what makes spec-built devices bitwise-identical to their
//! builder-built twins.

use serde::Value;
use snailqc_topology::{builders, CouplingGraph};

/// The largest device any spec may describe. Keeps a typo'd
/// `"qubits": 4000000000` from allocating the machine away.
pub const MAX_QUBITS: usize = 65_536;

/// All-to-all graphs get a tighter cap: edge count grows quadratically, and
/// real trapped-ion modules are far below this.
pub const MAX_COMPLETE_QUBITS: usize = 1_024;

/// Deepest supported 4-ary tree (level 6 is already 21 844 qubits).
pub const MAX_TREE_LEVELS: usize = 6;

/// A validated generator invocation. Every variant maps 1:1 onto a
/// `snailqc_topology::builders` function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeneratorSpec {
    /// `builders::line(qubits)`.
    Line {
        /// Chain length.
        qubits: usize,
    },
    /// `builders::ring(qubits)`.
    Ring {
        /// Cycle length.
        qubits: usize,
    },
    /// `builders::complete(qubits)` — all-to-all (trapped-ion module).
    Complete {
        /// Module size.
        qubits: usize,
    },
    /// `builders::star(qubits)`.
    Star {
        /// Hub plus spokes.
        qubits: usize,
    },
    /// `builders::square_lattice(rows, cols)`.
    Grid {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
    },
    /// `builders::lattice_alt_diagonals(rows, cols)`.
    GridDiagonals {
        /// Lattice rows.
        rows: usize,
        /// Lattice columns.
        cols: usize,
    },
    /// `builders::hex_lattice(rows, cols)`.
    Hex {
        /// Hexagon rows.
        rows: usize,
        /// Hexagon columns.
        cols: usize,
    },
    /// `builders::heavy_hex(rows, cols)` — IBM's heavy-hex family.
    HeavyHex {
        /// Hexagon rows.
        rows: usize,
        /// Hexagon columns.
        cols: usize,
    },
    /// `builders::hypercube_sized(qubits)`.
    Hypercube {
        /// Number of qubits (any size; an induced prefix of the next
        /// power-of-two cube).
        qubits: usize,
    },
    /// `builders::tree4(levels)` / `builders::tree4_rr(levels)`.
    Tree {
        /// Module levels below the root router (1 → 20q, 2 → 84q).
        levels: usize,
        /// Round-robin child wiring (`tree-rr`).
        round_robin: bool,
    },
    /// `builders::corral(posts, stride_a, stride_b)` — the paper's SNAIL
    /// corral.
    Corral {
        /// Number of posts (half the qubit count).
        posts: usize,
        /// Fence-A stride.
        stride_a: usize,
        /// Fence-B stride.
        stride_b: usize,
    },
}

impl GeneratorSpec {
    /// The canonical spec-file name of this generator.
    pub fn spec_name(&self) -> &'static str {
        match self {
            GeneratorSpec::Line { .. } => "line",
            GeneratorSpec::Ring { .. } => "ring",
            GeneratorSpec::Complete { .. } => "complete",
            GeneratorSpec::Star { .. } => "star",
            GeneratorSpec::Grid { .. } => "grid",
            GeneratorSpec::GridDiagonals { .. } => "grid-diagonals",
            GeneratorSpec::Hex { .. } => "hex",
            GeneratorSpec::HeavyHex { .. } => "heavy-hex",
            GeneratorSpec::Hypercube { .. } => "hypercube",
            GeneratorSpec::Tree {
                round_robin: false, ..
            } => "tree",
            GeneratorSpec::Tree {
                round_robin: true, ..
            } => "tree-rr",
            GeneratorSpec::Corral { .. } => "corral",
        }
    }

    /// The `params` object for a spec file, in canonical key order.
    /// `tree-rr` carries round-robin-ness in its name, so `round_robin` is
    /// never emitted.
    pub fn params_json(&self) -> Value {
        let uint = |n: usize| Value::UInt(n as u64);
        let entries: Vec<(String, Value)> = match *self {
            GeneratorSpec::Line { qubits }
            | GeneratorSpec::Ring { qubits }
            | GeneratorSpec::Complete { qubits }
            | GeneratorSpec::Star { qubits }
            | GeneratorSpec::Hypercube { qubits } => vec![("qubits".into(), uint(qubits))],
            GeneratorSpec::Grid { rows, cols }
            | GeneratorSpec::GridDiagonals { rows, cols }
            | GeneratorSpec::Hex { rows, cols }
            | GeneratorSpec::HeavyHex { rows, cols } => {
                vec![("rows".into(), uint(rows)), ("cols".into(), uint(cols))]
            }
            GeneratorSpec::Tree { levels, .. } => vec![("levels".into(), uint(levels))],
            GeneratorSpec::Corral {
                posts,
                stride_a,
                stride_b,
            } => vec![
                ("posts".into(), uint(posts)),
                ("stride_a".into(), uint(stride_a)),
                ("stride_b".into(), uint(stride_b)),
            ],
        };
        Value::Object(entries)
    }

    /// The generator names accepted in spec files, for error messages.
    pub const KNOWN: &'static str =
        "line, ring, grid, grid-diagonals, hex, heavy-hex, hypercube, tree, tree-rr, corral, \
         complete, star";

    /// Validates the parameters and returns the qubit count of the full
    /// (untruncated) generated graph — computed analytically, so a spec
    /// naming an absurd size is rejected before anything is allocated.
    pub fn checked_qubits(&self) -> Result<usize, String> {
        let cap = |n: usize, what: &str| {
            if n == 0 {
                Err(format!("{what} must be at least 1"))
            } else if n > MAX_QUBITS {
                Err(format!(
                    "{what} {n} exceeds the supported maximum {MAX_QUBITS}"
                ))
            } else {
                Ok(n)
            }
        };
        match *self {
            GeneratorSpec::Line { qubits }
            | GeneratorSpec::Ring { qubits }
            | GeneratorSpec::Star { qubits }
            | GeneratorSpec::Hypercube { qubits } => cap(qubits, "`qubits`"),
            GeneratorSpec::Complete { qubits } => {
                cap(qubits, "`qubits`")?;
                if qubits > MAX_COMPLETE_QUBITS {
                    return Err(format!(
                        "complete graphs are capped at {MAX_COMPLETE_QUBITS} qubits \
                         (edge count grows quadratically), got {qubits}"
                    ));
                }
                Ok(qubits)
            }
            GeneratorSpec::Grid { rows, cols } | GeneratorSpec::GridDiagonals { rows, cols } => {
                cap(rows, "`rows`")?;
                cap(cols, "`cols`")?;
                cap(rows.saturating_mul(cols), "`rows * cols`")
            }
            GeneratorSpec::Hex { rows, cols } => {
                cap(rows, "`rows`")?;
                cap(cols, "`cols`")?;
                cap(hex_qubits(rows, cols), "the hex lattice size")
            }
            GeneratorSpec::HeavyHex { rows, cols } => {
                cap(rows, "`rows`")?;
                cap(cols, "`cols`")?;
                cap(
                    hex_qubits(rows, cols).saturating_add(hex_edges(rows, cols)),
                    "the heavy-hex lattice size",
                )
            }
            GeneratorSpec::Tree { levels, .. } => {
                if levels == 0 {
                    return Err("`levels` must be at least 1".into());
                }
                if levels > MAX_TREE_LEVELS {
                    return Err(format!(
                        "`levels` {levels} exceeds the supported maximum {MAX_TREE_LEVELS}"
                    ));
                }
                // 4 root qubits plus 4^(i+1) qubits per level i.
                Ok((4usize.pow(levels as u32 + 2) - 4) / 3)
            }
            GeneratorSpec::Corral {
                posts,
                stride_a,
                stride_b,
            } => {
                if posts < 3 {
                    return Err(format!("`posts` must be at least 3, got {posts}"));
                }
                if stride_a == 0 || stride_b == 0 {
                    return Err("corral strides must be at least 1".into());
                }
                if stride_a >= posts || stride_b >= posts {
                    return Err(format!(
                        "corral strides must be smaller than `posts` ({posts})"
                    ));
                }
                cap(2 * posts, "`2 * posts`")
            }
        }
    }

    /// Builds the full generated graph. Call [`checked_qubits`] first — a
    /// validated spec never panics here.
    ///
    /// [`checked_qubits`]: GeneratorSpec::checked_qubits
    pub fn build(&self) -> CouplingGraph {
        match *self {
            GeneratorSpec::Line { qubits } => builders::line(qubits),
            GeneratorSpec::Ring { qubits } => builders::ring(qubits),
            GeneratorSpec::Complete { qubits } => builders::complete(qubits),
            GeneratorSpec::Star { qubits } => builders::star(qubits),
            GeneratorSpec::Grid { rows, cols } => builders::square_lattice(rows, cols),
            GeneratorSpec::GridDiagonals { rows, cols } => {
                builders::lattice_alt_diagonals(rows, cols)
            }
            GeneratorSpec::Hex { rows, cols } => builders::hex_lattice(rows, cols),
            GeneratorSpec::HeavyHex { rows, cols } => builders::heavy_hex(rows, cols),
            GeneratorSpec::Hypercube { qubits } => builders::hypercube_sized(qubits),
            GeneratorSpec::Tree {
                levels,
                round_robin: false,
            } => builders::tree4(levels),
            GeneratorSpec::Tree {
                levels,
                round_robin: true,
            } => builders::tree4_rr(levels),
            GeneratorSpec::Corral {
                posts,
                stride_a,
                stride_b,
            } => builders::corral(posts, stride_a, stride_b),
        }
    }
}

/// Qubit count of `builders::hex_lattice(rows, cols)`.
fn hex_qubits(rows: usize, cols: usize) -> usize {
    2 * (rows + 1) * (cols + 1) - 2
}

/// Edge count of `builders::hex_lattice(rows, cols)` — each hex edge hosts
/// one extra midpoint qubit in the heavy-hex construction.
fn hex_edges(rows: usize, cols: usize) -> usize {
    3 * rows * cols + 2 * rows + 2 * cols - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_qubits_matches_built_graphs() {
        let cases = [
            GeneratorSpec::Line { qubits: 9 },
            GeneratorSpec::Ring { qubits: 12 },
            GeneratorSpec::Complete { qubits: 7 },
            GeneratorSpec::Star { qubits: 5 },
            GeneratorSpec::Grid { rows: 4, cols: 6 },
            GeneratorSpec::GridDiagonals { rows: 4, cols: 4 },
            GeneratorSpec::Hex { rows: 2, cols: 3 },
            GeneratorSpec::HeavyHex { rows: 3, cols: 4 },
            GeneratorSpec::Hypercube { qubits: 23 },
            GeneratorSpec::Tree {
                levels: 1,
                round_robin: false,
            },
            GeneratorSpec::Tree {
                levels: 2,
                round_robin: true,
            },
            GeneratorSpec::Corral {
                posts: 8,
                stride_a: 1,
                stride_b: 3,
            },
        ];
        for spec in cases {
            let expected = spec.checked_qubits().expect("valid params");
            assert_eq!(spec.build().num_qubits(), expected, "{spec:?}");
        }
    }

    #[test]
    fn out_of_range_parameters_are_rejected_before_building() {
        for bad in [
            GeneratorSpec::Line { qubits: 0 },
            GeneratorSpec::Line {
                qubits: MAX_QUBITS + 1,
            },
            GeneratorSpec::Complete { qubits: 5_000 },
            GeneratorSpec::Grid {
                rows: 1_000,
                cols: 1_000,
            },
            GeneratorSpec::Tree {
                levels: 0,
                round_robin: false,
            },
            GeneratorSpec::Tree {
                levels: 9,
                round_robin: false,
            },
            GeneratorSpec::Corral {
                posts: 2,
                stride_a: 1,
                stride_b: 1,
            },
            GeneratorSpec::Corral {
                posts: 8,
                stride_a: 0,
                stride_b: 1,
            },
            GeneratorSpec::Corral {
                posts: 8,
                stride_a: 8,
                stride_b: 1,
            },
        ] {
            assert!(bad.checked_qubits().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn spec_names_are_stable() {
        assert_eq!(
            GeneratorSpec::HeavyHex { rows: 3, cols: 7 }.spec_name(),
            "heavy-hex"
        );
        assert_eq!(
            GeneratorSpec::Tree {
                levels: 2,
                round_robin: true
            }
            .spec_name(),
            "tree-rr"
        );
    }
}
