//! # snailqc-devices
//!
//! The declarative device-spec format: quantum machines as versioned JSON
//! data files instead of hardcoded builder functions.
//!
//! A spec names a machine and describes its coupling topology either as an
//! explicit edge list or as a parameterized `generator` drawn from the
//! `snailqc_topology::builders` family, optionally truncated to a target
//! qubit count (how heavy-hex 127/133/433 are carved from their regular
//! lattices). It may also pin a native two-qubit basis and attach an error
//! model (a preset name or inline `ErrorModelSpec` JSON):
//!
//! ```json
//! {
//!   "snailqc_device": 1,
//!   "name": "ibm_heavy_hex_127",
//!   "display_name": "IBM Heavy-Hex 127",
//!   "basis": "cnot",
//!   "topology": {"generator": "heavy-hex", "params": {"rows": 3, "cols": 7}, "qubits": 127},
//!   "error_model": "calibrated"
//! }
//! ```
//!
//! Parsing is strict and every diagnostic carries a `line:column` position
//! ([`SpecError`]), so a typo in a hand-edited file points at the offending
//! byte rather than failing opaquely. Generator-built specs go through the
//! exact same builder code the built-in catalog uses, which keeps routed
//! digests bitwise-identical between a spec and its builder twin.
//!
//! This crate is pure data + graph construction; turning a spec into a
//! routable `Device` (error-model stamping, registry lookup,
//! `SNAILQC_DEVICE_PATH`) lives in `snailqc-core`, which sits above it.

#![warn(missing_docs)]

mod error;
mod generator;
mod spec;

pub use error::SpecError;
pub use generator::{GeneratorSpec, MAX_COMPLETE_QUBITS, MAX_QUBITS, MAX_TREE_LEVELS};
pub use spec::{basis_name, DeviceSpec, ErrorModelRef, TopologySource, SPEC_VERSION};
