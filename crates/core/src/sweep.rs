//! Benchmark sweeps over (workload, size, device) — the engine behind
//! Figs. 4 and 11–14.
//!
//! A sweep transpiles every workload at every requested size onto every
//! [`Device`] and records the paper's four series (total / critical-path
//! SWAPs, total / critical-path 2Q gates). Devices with a native basis get a
//! translation stage (the co-designed comparison of Figs. 13/14); bare
//! devices are routed gate-agnostically (Figs. 4/11/12). Results serialize
//! to JSON so the bench binaries can emit machine-readable tables alongside
//! the printed ones, and [`run_sweep_with_store`] replays cached cells from
//! a [`SweepStore`] instead of re-routing them.

use crate::device::Device;
use crate::store::{cell_key, SweepStore};
use rayon::prelude::*;
use serde::Serialize;
use snailqc_circuit::Circuit;
use snailqc_decompose::BasisGate;
use snailqc_obs as obs;
use snailqc_transpiler::{LayoutStrategy, Pipeline, RouterConfig, TranspileReport};
use snailqc_workloads::Workload;

/// One transpiled data point of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Workload label.
    pub workload: Workload,
    /// Program size in qubits.
    pub circuit_qubits: usize,
    /// Device label (e.g. `Tree-84` or `Heavy-Hex-CX`).
    pub topology: String,
    /// Basis gate, when basis translation ran.
    pub basis: Option<BasisGate>,
    /// Collected metrics.
    pub report: TranspileReport,
}

/// Configuration of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepConfig {
    /// Workloads to run.
    pub workloads: Vec<Workload>,
    /// Program sizes (qubits).
    pub sizes: Vec<usize>,
    /// Routing trials per point (StochasticSwap analogue).
    pub routing_trials: usize,
    /// Fidelity weight of the router's SWAP scoring (`0` = noise-blind; only
    /// matters on devices with heterogeneous per-edge error rates).
    pub error_weight: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            workloads: Workload::all().to_vec(),
            sizes: vec![8, 12, 16],
            routing_trials: 4,
            error_weight: 0.0,
            seed: 2022,
        }
    }
}

impl SweepConfig {
    /// The small-machine size grid used by Figs. 11 and 13 (4–16 qubits).
    pub fn small_sizes() -> Vec<usize> {
        vec![4, 6, 8, 10, 12, 14, 16]
    }

    /// The large-machine size grid used by Figs. 4, 12 and 14 (8–80 qubits).
    pub fn large_sizes() -> Vec<usize> {
        vec![8, 16, 24, 32, 40, 48, 56, 64, 72, 80]
    }

    /// A minimal configuration for tests.
    pub fn smoke() -> Self {
        Self {
            workloads: vec![Workload::Ghz, Workload::Qft],
            sizes: vec![4, 6],
            routing_trials: 1,
            error_weight: 0.0,
            seed: 3,
        }
    }

    /// The per-cell pipeline of this sweep: dense layout, the configured
    /// trials and error weight, and a router seed derived from the sweep
    /// seed and the cell's requested size alone — so results never depend on
    /// worker-thread count or cell order.
    pub fn pipeline(&self, size: usize) -> Pipeline {
        Pipeline::builder()
            .layout(LayoutStrategy::Dense)
            .router(RouterConfig {
                trials: self.routing_trials,
                seed: self.seed ^ (size as u64) << 16,
                error_weight: self.error_weight,
                ..RouterConfig::default()
            })
            .build()
    }
}

/// One independent transpilation cell of a sweep: a generated circuit paired
/// with a target device.
struct SweepCell<'a> {
    workload: Workload,
    /// Requested problem size (keys the per-point router seed; the generated
    /// circuit may be smaller, e.g. the adder).
    size: usize,
    circuit: &'a Circuit,
    device: &'a Device,
}

impl SweepCell<'_> {
    fn transpile(&self, config: &SweepConfig) -> TranspileReport {
        self.device
            .transpile(self.circuit, &config.pipeline(self.size))
            .report
    }

    fn point(&self, report: TranspileReport) -> SweepPoint {
        SweepPoint {
            workload: self.workload,
            circuit_qubits: self.circuit.num_qubits(),
            topology: self.device.label().to_string(),
            basis: self.device.basis(),
            report,
        }
    }
}

/// Generates every workload circuit once per (workload, size) pair.
fn generate_circuits(config: &SweepConfig) -> Vec<(Workload, usize, Circuit)> {
    config
        .workloads
        .iter()
        .flat_map(|workload| {
            config.sizes.iter().map(move |&size| {
                (
                    *workload,
                    size,
                    workload.generate(size, config.seed ^ size as u64),
                )
            })
        })
        .collect()
}

/// Builds the cell grid: workload-major, then size, then device, skipping
/// devices too small for the generated circuit. This is the single cell
/// assembly every sweep flavour shares (the old gate-agnostic and co-design
/// engines each had their own copy).
fn build_cells<'a>(
    circuits: &'a [(Workload, usize, Circuit)],
    devices: &'a [Device],
) -> Vec<SweepCell<'a>> {
    circuits
        .iter()
        .flat_map(|(workload, size, circuit)| {
            devices
                .iter()
                .filter(|device| device.fits(circuit))
                .map(move |device| SweepCell {
                    workload: *workload,
                    size: *size,
                    circuit,
                    device,
                })
        })
        .collect()
}

/// Runs a sweep over a set of devices: every workload at every size onto
/// every device that fits it, in parallel with deterministic per-point
/// seeds. Devices with a native basis are basis-translated; bare devices are
/// routed gate-agnostically.
pub fn run_sweep(devices: &[Device], config: &SweepConfig) -> Vec<SweepPoint> {
    run_sweep_with_store(devices, config, None)
}

/// [`run_sweep`], replaying cached cells from `store` when one is given.
/// Cache misses are transpiled in parallel (bitwise-identical to an uncached
/// run), inserted into the store, and flushed back to disk.
pub fn run_sweep_with_store(
    devices: &[Device],
    config: &SweepConfig,
    store: Option<&mut SweepStore>,
) -> Vec<SweepPoint> {
    let _sweep_span = obs::span("sweep.run");
    let circuits = generate_circuits(config);
    let cells = build_cells(&circuits, devices);
    let Some(store) = store else {
        return cells
            .par_iter()
            .map(|cell| cell.point(cell.transpile(config)))
            .collect();
    };

    // Resolve cache hits sequentially, then transpile only the misses in
    // parallel; each cell's seed depends only on its own coordinates, so the
    // split cannot change any result.
    let keys: Vec<String> = cells
        .iter()
        .map(|cell| cell_key(cell.workload, cell.size, cell.device, config))
        .collect();
    let mut reports: Vec<Option<TranspileReport>> = keys.iter().map(|key| store.get(key)).collect();
    let missing: Vec<usize> = (0..cells.len()).filter(|&i| reports[i].is_none()).collect();
    let computed: Vec<(usize, TranspileReport)> = missing
        .par_iter()
        .map(|&i| (i, cells[i].transpile(config)))
        .collect();
    for (i, report) in computed {
        store.insert(keys[i].clone(), report);
        reports[i] = Some(report);
    }
    if let Err(err) = store.flush() {
        eprintln!(
            "warning: could not persist sweep store {}: {err}",
            store.path().display()
        );
    }
    cells
        .iter()
        .zip(reports)
        .map(|(cell, report)| cell.point(report.expect("every cell resolved")))
        .collect()
}

/// Aggregates sweep points: average of `metric` over all points matching a
/// topology label, grouped by workload. Returns `(workload, topology, mean)`
/// sorted by workload then topology.
pub fn aggregate_by_topology<F>(points: &[SweepPoint], metric: F) -> Vec<(Workload, String, f64)>
where
    F: Fn(&TranspileReport) -> f64,
{
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(Workload, String), (f64, usize)> = BTreeMap::new();
    for p in points {
        let entry = groups
            .entry((p.workload, p.topology.clone()))
            .or_insert((0.0, 0));
        entry.0 += metric(&p.report);
        entry.1 += 1;
    }
    groups
        .into_iter()
        .map(|((workload, topology), (sum, n))| (workload, topology, sum / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, SizeClass};
    use snailqc_topology::{catalog, CouplingGraph};

    fn graph_devices(graphs: Vec<CouplingGraph>) -> Vec<Device> {
        graphs.into_iter().map(Device::from_graph).collect()
    }

    #[test]
    fn sweep_produces_a_point_per_cell() {
        let devices = graph_devices(vec![catalog::hypercube_16(), catalog::tree_20()]);
        let config = SweepConfig::smoke();
        let points = run_sweep(&devices, &config);
        // 2 workloads × 2 sizes × 2 graphs.
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!(p.basis.is_none());
            assert_eq!(
                p.report.routed_two_qubit_gates,
                p.report.input_two_qubit_gates + p.report.swap_count
            );
        }
    }

    #[test]
    fn machine_devices_translate_to_their_native_basis() {
        let devices = vec![
            Device::from_machine(Machine::ibm_baseline(SizeClass::Small)),
            Device::from_machine(Machine::snail_machines(SizeClass::Small)[0]),
        ];
        let config = SweepConfig::smoke();
        let points = run_sweep(&devices, &config);
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!(p.basis.is_some());
            assert!(p.report.basis_gate_count >= p.report.routed_two_qubit_gates);
        }
    }

    #[test]
    fn oversized_circuits_are_skipped() {
        let devices = graph_devices(vec![catalog::hypercube_16()]);
        let config = SweepConfig {
            workloads: vec![Workload::Ghz],
            sizes: vec![30],
            routing_trials: 1,
            error_weight: 0.0,
            seed: 1,
        };
        let points = run_sweep(&devices, &config);
        assert!(points.is_empty());
    }

    fn points_equal(a: &[SweepPoint], b: &[SweepPoint]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.workload == y.workload
                    && x.circuit_qubits == y.circuit_qubits
                    && x.topology == y.topology
                    && x.basis == y.basis
                    && x.report == y.report
            })
    }

    #[test]
    fn parallel_sweeps_are_deterministic() {
        let devices = graph_devices(vec![
            catalog::hypercube_16(),
            catalog::tree_20(),
            catalog::heavy_hex_20(),
        ]);
        let config = SweepConfig {
            workloads: vec![Workload::Qft, Workload::QaoaVanilla],
            sizes: vec![6, 10],
            error_weight: 0.0,
            routing_trials: 2,
            seed: 99,
        };
        let a = run_sweep(&devices, &config);
        let b = run_sweep(&devices, &config);
        assert!(
            points_equal(&a, &b),
            "repeated sweeps must be bitwise-stable"
        );
        // Cell order is workload-major, then size, then device.
        let mut expected: Vec<(Workload, String)> = Vec::new();
        for w in &config.workloads {
            for _size in &config.sizes {
                for d in &devices {
                    expected.push((*w, d.label().to_string()));
                }
            }
        }
        let got: Vec<(Workload, String)> =
            a.iter().map(|p| (p.workload, p.topology.clone())).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn stored_sweeps_replay_identically() {
        let path =
            std::env::temp_dir().join(format!("snailqc-sweep-store-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let devices = vec![
            Device::from_graph(catalog::hypercube_16()),
            Device::from_machine(Machine::ibm_baseline(SizeClass::Small)),
        ];
        let config = SweepConfig::smoke();

        let fresh = run_sweep(&devices, &config);
        let mut store = SweepStore::open(&path);
        let cold = run_sweep_with_store(&devices, &config, Some(&mut store));
        assert_eq!(store.hits(), 0);
        assert_eq!(store.inserted(), fresh.len());
        assert!(
            points_equal(&fresh, &cold),
            "cold store must not change results"
        );

        let mut store = SweepStore::open(&path);
        let warm = run_sweep_with_store(&devices, &config, Some(&mut store));
        assert_eq!(store.hits(), fresh.len(), "every cell should replay");
        assert_eq!(store.inserted(), 0);
        assert!(
            points_equal(&fresh, &warm),
            "warm store must not change results"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn aggregate_means_are_in_range() {
        let devices = graph_devices(vec![catalog::hypercube_16(), catalog::heavy_hex_20()]);
        let config = SweepConfig::smoke();
        let points = run_sweep(&devices, &config);
        let agg = aggregate_by_topology(&points, |r| r.swap_count as f64);
        assert!(!agg.is_empty());
        for (_, _, mean) in &agg {
            assert!(*mean >= 0.0);
        }
    }
}
