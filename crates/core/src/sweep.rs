//! Benchmark sweeps over (workload, size, machine) — the engine behind
//! Figs. 4 and 11–14.
//!
//! A sweep transpiles every workload at every requested size onto every
//! machine and records the paper's four series (total / critical-path SWAPs,
//! total / critical-path 2Q gates). Results serialize to JSON so the bench
//! binaries can emit machine-readable tables alongside the printed ones.

use crate::machine::Machine;
use rayon::prelude::*;
use serde::Serialize;
use snailqc_circuit::Circuit;
use snailqc_decompose::BasisGate;
use snailqc_topology::CouplingGraph;
use snailqc_transpiler::{
    transpile, LayoutStrategy, RouterConfig, TranspileOptions, TranspileReport,
};
use snailqc_workloads::Workload;

/// One transpiled data point of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Workload label.
    pub workload: Workload,
    /// Program size in qubits.
    pub circuit_qubits: usize,
    /// Topology name (e.g. `Tree-84`).
    pub topology: String,
    /// Basis gate, when basis translation ran.
    pub basis: Option<BasisGate>,
    /// Collected metrics.
    pub report: TranspileReport,
}

/// Configuration of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepConfig {
    /// Workloads to run.
    pub workloads: Vec<Workload>,
    /// Program sizes (qubits).
    pub sizes: Vec<usize>,
    /// Routing trials per point (StochasticSwap analogue).
    pub routing_trials: usize,
    /// Fidelity weight of the router's SWAP scoring (`0` = noise-blind; only
    /// matters on graphs with heterogeneous per-edge error rates).
    pub error_weight: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            workloads: Workload::all().to_vec(),
            sizes: vec![8, 12, 16],
            routing_trials: 4,
            error_weight: 0.0,
            seed: 2022,
        }
    }
}

impl SweepConfig {
    /// The small-machine size grid used by Figs. 11 and 13 (4–16 qubits).
    pub fn small_sizes() -> Vec<usize> {
        vec![4, 6, 8, 10, 12, 14, 16]
    }

    /// The large-machine size grid used by Figs. 4, 12 and 14 (8–80 qubits).
    pub fn large_sizes() -> Vec<usize> {
        vec![8, 16, 24, 32, 40, 48, 56, 64, 72, 80]
    }

    /// A minimal configuration for tests.
    pub fn smoke() -> Self {
        Self {
            workloads: vec![Workload::Ghz, Workload::Qft],
            sizes: vec![4, 6],
            routing_trials: 1,
            error_weight: 0.0,
            seed: 3,
        }
    }
}

/// One independent transpilation cell of a sweep: a generated circuit paired
/// with a target device and the basis/label it should be reported under.
struct SweepCell<'a> {
    workload: Workload,
    /// Requested problem size (keys the per-point router seed; the generated
    /// circuit may be smaller, e.g. the adder).
    size: usize,
    circuit: &'a Circuit,
    graph: &'a CouplingGraph,
    topology: String,
    basis: Option<BasisGate>,
}

/// Generates every workload circuit once per (workload, size) pair.
fn generate_circuits(config: &SweepConfig) -> Vec<(Workload, usize, Circuit)> {
    config
        .workloads
        .iter()
        .flat_map(|workload| {
            config.sizes.iter().map(move |&size| {
                (
                    *workload,
                    size,
                    workload.generate(size, config.seed ^ size as u64),
                )
            })
        })
        .collect()
}

/// Transpiles every cell in parallel. Each cell derives its router seed from
/// the sweep seed and the requested size alone, and results are collected in
/// cell order, so the output is bitwise-identical to the sequential sweep
/// regardless of worker-thread count.
fn run_cells(cells: &[SweepCell<'_>], config: &SweepConfig) -> Vec<SweepPoint> {
    cells
        .par_iter()
        .map(|cell| {
            let options = TranspileOptions {
                layout: LayoutStrategy::Dense,
                router: RouterConfig {
                    trials: config.routing_trials,
                    seed: config.seed ^ (cell.size as u64) << 16,
                    error_weight: config.error_weight,
                    ..RouterConfig::default()
                },
                basis: cell.basis,
            };
            let result = transpile(cell.circuit, cell.graph, &options);
            SweepPoint {
                workload: cell.workload,
                circuit_qubits: cell.circuit.num_qubits(),
                topology: cell.topology.clone(),
                basis: cell.basis,
                report: result.report,
            }
        })
        .collect()
}

/// Runs a gate-agnostic sweep (routing only, no basis translation) over a set
/// of named coupling graphs — the engine of Figs. 4, 11 and 12. Cells are
/// transpiled in parallel with deterministic per-point seeds.
pub fn run_swap_sweep(graphs: &[CouplingGraph], config: &SweepConfig) -> Vec<SweepPoint> {
    let circuits = generate_circuits(config);
    let cells: Vec<SweepCell<'_>> = circuits
        .iter()
        .flat_map(|(workload, size, circuit)| {
            graphs
                .iter()
                .filter(|graph| graph.num_qubits() >= circuit.num_qubits())
                .map(move |graph| SweepCell {
                    workload: *workload,
                    size: *size,
                    circuit,
                    graph,
                    topology: graph.name().to_string(),
                    basis: None,
                })
        })
        .collect();
    run_cells(&cells, config)
}

/// Runs a co-designed sweep (routing plus basis translation) over a set of
/// machines — the engine of Figs. 13 and 14. Cells are transpiled in parallel
/// with deterministic per-point seeds.
pub fn run_codesign_sweep(machines: &[Machine], config: &SweepConfig) -> Vec<SweepPoint> {
    let graphs: Vec<(Machine, CouplingGraph)> = machines.iter().map(|m| (*m, m.graph())).collect();
    let circuits = generate_circuits(config);
    let cells: Vec<SweepCell<'_>> = circuits
        .iter()
        .flat_map(|(workload, size, circuit)| {
            graphs
                .iter()
                .filter(|(_, graph)| graph.num_qubits() >= circuit.num_qubits())
                .map(move |(machine, graph)| SweepCell {
                    workload: *workload,
                    size: *size,
                    circuit,
                    graph,
                    topology: machine.label(),
                    basis: Some(machine.basis),
                })
        })
        .collect();
    run_cells(&cells, config)
}

/// Aggregates sweep points: average of `metric` over all points matching a
/// topology label, grouped by workload. Returns `(workload, topology, mean)`
/// sorted by workload then topology.
pub fn aggregate_by_topology<F>(points: &[SweepPoint], metric: F) -> Vec<(Workload, String, f64)>
where
    F: Fn(&TranspileReport) -> f64,
{
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(Workload, String), (f64, usize)> = BTreeMap::new();
    for p in points {
        let entry = groups
            .entry((p.workload, p.topology.clone()))
            .or_insert((0.0, 0));
        entry.0 += metric(&p.report);
        entry.1 += 1;
    }
    groups
        .into_iter()
        .map(|((workload, topology), (sum, n))| (workload, topology, sum / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SizeClass;
    use snailqc_topology::catalog;

    #[test]
    fn swap_sweep_produces_a_point_per_cell() {
        let graphs = vec![catalog::hypercube_16(), catalog::tree_20()];
        let config = SweepConfig::smoke();
        let points = run_swap_sweep(&graphs, &config);
        // 2 workloads × 2 sizes × 2 graphs.
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!(p.basis.is_none());
            assert_eq!(
                p.report.routed_two_qubit_gates,
                p.report.input_two_qubit_gates + p.report.swap_count
            );
        }
    }

    #[test]
    fn codesign_sweep_translates_to_each_machine_basis() {
        let machines = vec![
            Machine::ibm_baseline(SizeClass::Small),
            Machine::snail_machines(SizeClass::Small)[0],
        ];
        let config = SweepConfig::smoke();
        let points = run_codesign_sweep(&machines, &config);
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!(p.basis.is_some());
            assert!(p.report.basis_gate_count >= p.report.routed_two_qubit_gates);
        }
    }

    #[test]
    fn oversized_circuits_are_skipped() {
        let graphs = vec![catalog::hypercube_16()];
        let config = SweepConfig {
            workloads: vec![Workload::Ghz],
            sizes: vec![30],
            routing_trials: 1,
            error_weight: 0.0,
            seed: 1,
        };
        let points = run_swap_sweep(&graphs, &config);
        assert!(points.is_empty());
    }

    fn points_equal(a: &[SweepPoint], b: &[SweepPoint]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.workload == y.workload
                    && x.circuit_qubits == y.circuit_qubits
                    && x.topology == y.topology
                    && x.basis == y.basis
                    && x.report == y.report
            })
    }

    #[test]
    fn parallel_sweeps_are_deterministic() {
        let graphs = vec![
            catalog::hypercube_16(),
            catalog::tree_20(),
            catalog::heavy_hex_20(),
        ];
        let config = SweepConfig {
            workloads: vec![Workload::Qft, Workload::QaoaVanilla],
            sizes: vec![6, 10],
            error_weight: 0.0,
            routing_trials: 2,
            seed: 99,
        };
        let a = run_swap_sweep(&graphs, &config);
        let b = run_swap_sweep(&graphs, &config);
        assert!(
            points_equal(&a, &b),
            "repeated sweeps must be bitwise-stable"
        );
        // Cell order is workload-major, then size, then graph.
        let mut expected: Vec<(Workload, String)> = Vec::new();
        for w in &config.workloads {
            for _size in &config.sizes {
                for g in &graphs {
                    expected.push((*w, g.name().to_string()));
                }
            }
        }
        let got: Vec<(Workload, String)> =
            a.iter().map(|p| (p.workload, p.topology.clone())).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn aggregate_means_are_in_range() {
        let graphs = vec![catalog::hypercube_16(), catalog::heavy_hex_20()];
        let config = SweepConfig::smoke();
        let points = run_swap_sweep(&graphs, &config);
        let agg = aggregate_by_topology(&points, |r| r.swap_count as f64);
        assert!(!agg.is_empty());
        for (_, _, mean) in &agg {
            assert!(*mean >= 0.0);
        }
    }
}
