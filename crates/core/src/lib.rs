//! # snailqc-core
//!
//! The co-design experiment harness — the paper's primary contribution
//! expressed as a library. It ties the other crates together around two
//! first-class types:
//!
//! * [`device::Device`] — the unit of co-design as one artifact: a coupling
//!   graph with per-edge noise, an optional native basis gate, and a label.
//!   Built from the topology catalog ([`Device::from_catalog`]), from a
//!   [`machine::Machine`] pairing ([`Device::from_machine`]), or from a bare
//!   graph, then refined with [`Device::with_error_model`] /
//!   [`Device::with_basis`]. [`Device::transpile`] runs a staged
//!   [`Pipeline`](snailqc_transpiler::Pipeline) whose translation stage
//!   defaults to the device's native gate.
//! * [`machine::Machine`] — a (topology, basis gate) pairing. Pre-built
//!   line-ups reproduce the machines compared in Figs. 13 and 14
//!   (Heavy-Hex/CNOT, Square-Lattice/SYC, and the SNAIL machines with
//!   √iSWAP on Tree, Tree-RR, Corral and Hypercube).
//!
//! On top of these sit the experiment engines:
//!
//! * [`sweep`] — (workload × size × device) sweeps collecting total and
//!   critical-path SWAP and 2Q gate counts, the data behind Figs. 4, 11–14
//!   ([`sweep::run_sweep`] over `&[Device]`).
//! * [`store`] — the persistent sweep-result store: JSON-lines cache keyed
//!   by (workload, size, device label, basis, seed, error weight, noise
//!   digest) so repeated bench runs replay cells instead of re-routing.
//! * [`headline`] — the summary ratios quoted in the abstract and §6
//!   (hypercube+√iSWAP vs heavy-hex+CNOT, the Tree progression, the QAOA
//!   critical-path comparison).
//! * [`noise`] — named error-model specifications (presets and JSON) that
//!   stamp per-edge error rates onto a device for noise-aware routing and
//!   edge-aware fidelity estimation ([`fidelity::estimate_fidelity_edges`]).
//! * [`registry`] — `--device` name resolution across the built-in catalog
//!   and on-disk device-spec files ([`Device::from_spec_file`]), including
//!   the `SNAILQC_DEVICE_PATH` search path.
//!
//! ```
//! use snailqc_core::device::Device;
//! use snailqc_core::machine::{Machine, SizeClass};
//! use snailqc_core::sweep::{run_sweep, SweepConfig};
//! use snailqc_workloads::Workload;
//!
//! let devices = [
//!     Device::from_machine(Machine::ibm_baseline(SizeClass::Small)),
//!     Device::from_machine(Machine::snail_machines(SizeClass::Small)[0]),
//! ];
//! let config = SweepConfig {
//!     workloads: vec![Workload::Ghz],
//!     sizes: vec![6],
//!     routing_trials: 1,
//!     error_weight: 0.0,
//!     seed: 1,
//! };
//! let points = run_sweep(&devices, &config);
//! assert_eq!(points.len(), 2);
//! ```
//!
//! [`Device::from_catalog`]: device::Device::from_catalog
//! [`Device::from_machine`]: device::Device::from_machine
//! [`Device::with_error_model`]: device::Device::with_error_model
//! [`Device::with_basis`]: device::Device::with_basis
//! [`Device::transpile`]: device::Device::transpile

#![warn(missing_docs)]

pub mod device;
pub mod fidelity;
pub mod headline;
pub mod machine;
pub mod noise;
pub mod registry;
pub mod store;
pub mod sweep;

pub use device::Device;
pub use fidelity::{
    estimate_fidelity, estimate_fidelity_edges, estimate_fidelity_routed, ErrorModel,
    FidelityEstimate,
};
pub use headline::{headline_ratios, quantum_volume_headline, HeadlineConfig, HeadlineRatios};
pub use machine::{Machine, SizeClass};
pub use noise::{EdgeNoise, ErrorModelSpec};
pub use registry::{DeviceRegistry, DeviceSource, RegistryEntry, DEVICE_PATH_ENV};
pub use store::SweepStore;
pub use sweep::{run_sweep, run_sweep_with_store, SweepConfig, SweepPoint};
