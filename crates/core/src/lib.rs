//! # snailqc-core
//!
//! The co-design experiment harness — the paper's primary contribution
//! expressed as a library. It ties the other crates together:
//!
//! * [`machine::Machine`] — a (topology, basis gate) pairing, the unit of
//!   co-design. Pre-built line-ups reproduce the machines compared in
//!   Figs. 13 and 14 (Heavy-Hex/CNOT, Square-Lattice/SYC, and the SNAIL
//!   machines with √iSWAP on Tree, Tree-RR, Corral and Hypercube).
//! * [`sweep`] — (workload × size × machine) sweeps collecting total and
//!   critical-path SWAP and 2Q gate counts, the data behind Figs. 4, 11–14.
//! * [`headline`] — the summary ratios quoted in the abstract and §6
//!   (hypercube+√iSWAP vs heavy-hex+CNOT, the Tree progression, the QAOA
//!   critical-path comparison).
//! * [`noise`] — named error-model specifications (presets and JSON) that
//!   stamp per-edge error rates onto a device for noise-aware routing and
//!   edge-aware fidelity estimation ([`fidelity::estimate_fidelity_edges`]).
//!
//! ```
//! use snailqc_core::machine::{Machine, SizeClass};
//! use snailqc_core::sweep::{run_codesign_sweep, SweepConfig};
//! use snailqc_workloads::Workload;
//!
//! let machines = [
//!     Machine::ibm_baseline(SizeClass::Small),
//!     Machine::snail_machines(SizeClass::Small)[0],
//! ];
//! let config = SweepConfig {
//!     workloads: vec![Workload::Ghz],
//!     sizes: vec![6],
//!     routing_trials: 1,
//!     error_weight: 0.0,
//!     seed: 1,
//! };
//! let points = run_codesign_sweep(&machines, &config);
//! assert_eq!(points.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod fidelity;
pub mod headline;
pub mod machine;
pub mod noise;
pub mod sweep;

pub use fidelity::{
    estimate_fidelity, estimate_fidelity_edges, estimate_fidelity_routed, ErrorModel,
    FidelityEstimate,
};
pub use headline::{headline_ratios, quantum_volume_headline, HeadlineConfig, HeadlineRatios};
pub use machine::{Machine, SizeClass};
pub use noise::{EdgeNoise, ErrorModelSpec};
pub use sweep::{run_codesign_sweep, run_swap_sweep, SweepConfig, SweepPoint};
