//! The paper's headline comparisons.
//!
//! * §1 / §6.2: averaged over Quantum Volume circuits from 16 to 80 qubits, a
//!   hypercube with a √iSWAP basis needs **3.16× fewer total 2Q gates** and
//!   **6.11× fewer duration-weighted 2Q gates** than heavy-hex with CNOT, and
//!   (gate-agnostically) **2.57× / 5.63× fewer total / critical-path SWAPs**.
//! * §6.1: moving from Heavy-Hex to the SNAIL Tree cuts total SWAPs by 54.3%
//!   and critical-path SWAPs by 79.8% for 80-qubit QV; the hypercube cuts a
//!   further 42.5% / 54.3%.
//! * §3.2: for an 80-qubit QAOA, Heavy-Hex needs 1.92× / 1.53× / 2.83× the
//!   critical-path SWAPs of Square-Lattice / Lattice+AltDiag / Hypercube.

use crate::device::Device;
use crate::machine::{Machine, SizeClass};
use serde::Serialize;
use snailqc_decompose::BasisGate;
use snailqc_topology::TopologyKind;
use snailqc_transpiler::{LayoutStrategy, Pipeline, RouterConfig, TranspileReport};
use snailqc_workloads::Workload;

/// Ratios between a baseline machine and a proposed machine, averaged over a
/// size sweep (baseline / proposed, so > 1 means the proposal wins).
#[derive(Debug, Clone, Serialize)]
pub struct HeadlineRatios {
    /// Baseline machine label.
    pub baseline: String,
    /// Proposed machine label.
    pub proposed: String,
    /// Circuit sizes averaged over.
    pub sizes: Vec<usize>,
    /// Mean ratio of total SWAP counts.
    pub total_swap_ratio: f64,
    /// Mean ratio of critical-path SWAP counts.
    pub critical_swap_ratio: f64,
    /// Mean ratio of total basis-gate counts.
    pub total_2q_ratio: f64,
    /// Mean ratio of critical-path basis-gate counts (pulse duration).
    pub critical_2q_ratio: f64,
}

/// Options for the headline computation.
#[derive(Debug, Clone, Serialize)]
pub struct HeadlineConfig {
    /// Quantum Volume sizes to average over (the paper: 16–80).
    pub sizes: Vec<usize>,
    /// Router trials per point.
    pub routing_trials: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for HeadlineConfig {
    fn default() -> Self {
        Self {
            sizes: vec![16, 32, 48, 64, 80],
            routing_trials: 4,
            seed: 2022,
        }
    }
}

impl HeadlineConfig {
    /// A tiny configuration for tests.
    pub fn smoke() -> Self {
        Self {
            sizes: vec![12, 16],
            routing_trials: 1,
            seed: 5,
        }
    }
}

fn run_point(
    machine: &Machine,
    workload: Workload,
    size: usize,
    config: &HeadlineConfig,
) -> TranspileReport {
    let device = Device::from_machine(*machine);
    let circuit = workload.generate(size, config.seed ^ size as u64);
    let pipeline = Pipeline::builder()
        .layout(LayoutStrategy::Dense)
        .router(RouterConfig {
            trials: config.routing_trials,
            seed: config.seed ^ (size as u64) << 16,
            ..RouterConfig::default()
        })
        .build();
    device.transpile(&circuit, &pipeline).report
}

/// Computes the headline ratios between two machines on a workload sweep.
pub fn headline_ratios(
    baseline: Machine,
    proposed: Machine,
    workload: Workload,
    config: &HeadlineConfig,
) -> HeadlineRatios {
    let mut total_swap = Vec::new();
    let mut crit_swap = Vec::new();
    let mut total_2q = Vec::new();
    let mut crit_2q = Vec::new();
    for &size in &config.sizes {
        let base = run_point(&baseline, workload, size, config);
        let prop = run_point(&proposed, workload, size, config);
        let ratio = |a: usize, b: usize| {
            if b == 0 {
                f64::NAN
            } else {
                a as f64 / b as f64
            }
        };
        total_swap.push(ratio(base.swap_count, prop.swap_count));
        crit_swap.push(ratio(base.swap_depth, prop.swap_depth));
        total_2q.push(ratio(base.basis_gate_count, prop.basis_gate_count));
        crit_2q.push(ratio(base.basis_gate_depth, prop.basis_gate_depth));
    }
    let mean = |v: &[f64]| {
        let finite: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
        if finite.is_empty() {
            f64::NAN
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        }
    };
    HeadlineRatios {
        baseline: baseline.label(),
        proposed: proposed.label(),
        sizes: config.sizes.clone(),
        total_swap_ratio: mean(&total_swap),
        critical_swap_ratio: mean(&crit_swap),
        total_2q_ratio: mean(&total_2q),
        critical_2q_ratio: mean(&crit_2q),
    }
}

/// The paper's headline: hypercube + √iSWAP versus heavy-hex + CNOT on
/// Quantum Volume circuits.
pub fn quantum_volume_headline(config: &HeadlineConfig) -> HeadlineRatios {
    headline_ratios(
        Machine::ibm_baseline(SizeClass::Large),
        Machine::new(
            TopologyKind::Hypercube,
            BasisGate::SqrtISwap,
            SizeClass::Large,
        ),
        Workload::QuantumVolume,
        config,
    )
}

/// §6.1's intermediate comparison: heavy-hex → Tree and Tree → hypercube SWAP
/// reductions on 80-qubit Quantum Volume. Returns
/// `(heavy_hex_to_tree, tree_to_hypercube)` as fractional reductions in
/// `(total swaps, critical-path swaps)`.
pub fn tree_progression(config: &HeadlineConfig) -> ((f64, f64), (f64, f64)) {
    let size = *config.sizes.iter().max().expect("non-empty sizes");
    let single = HeadlineConfig {
        sizes: vec![size],
        ..config.clone()
    };
    let heavy = run_point(
        &Machine::ibm_baseline(SizeClass::Large),
        Workload::QuantumVolume,
        size,
        &single,
    );
    let tree = run_point(
        &Machine::new(TopologyKind::Tree, BasisGate::SqrtISwap, SizeClass::Large),
        Workload::QuantumVolume,
        size,
        &single,
    );
    let hyper = run_point(
        &Machine::new(
            TopologyKind::Hypercube,
            BasisGate::SqrtISwap,
            SizeClass::Large,
        ),
        Workload::QuantumVolume,
        size,
        &single,
    );
    let reduction = |from: usize, to: usize| 1.0 - to as f64 / from as f64;
    (
        (
            reduction(heavy.swap_count, tree.swap_count),
            reduction(heavy.swap_depth, tree.swap_depth),
        ),
        (
            reduction(tree.swap_count, hyper.swap_count),
            reduction(tree.swap_depth, hyper.swap_depth),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_direction_holds_even_at_small_sizes() {
        // Even on a reduced sweep the co-designed machine must beat the
        // baseline on every headline metric (ratios > 1).
        let r = quantum_volume_headline(&HeadlineConfig::smoke());
        assert!(
            r.total_swap_ratio > 1.0,
            "total swap ratio {}",
            r.total_swap_ratio
        );
        assert!(
            r.critical_swap_ratio > 1.0,
            "critical swap ratio {}",
            r.critical_swap_ratio
        );
        assert!(
            r.total_2q_ratio > 1.0,
            "total 2q ratio {}",
            r.total_2q_ratio
        );
        assert!(
            r.critical_2q_ratio > 1.0,
            "critical 2q ratio {}",
            r.critical_2q_ratio
        );
    }

    #[test]
    fn ratios_are_labelled() {
        let r = quantum_volume_headline(&HeadlineConfig::smoke());
        assert_eq!(r.baseline, "Heavy-Hex-CX");
        assert_eq!(r.proposed, "Hypercube-sqrt-iSWAP");
    }

    #[test]
    fn tree_progression_reductions_are_positive() {
        let ((hh_tree_total, hh_tree_crit), (tree_hyper_total, _)) =
            tree_progression(&HeadlineConfig::smoke());
        assert!(
            hh_tree_total > 0.0,
            "heavy-hex → tree total reduction {hh_tree_total}"
        );
        assert!(
            hh_tree_crit > 0.0,
            "heavy-hex → tree critical reduction {hh_tree_crit}"
        );
        // Tree → hypercube may be small at tiny sizes but must not regress
        // catastrophically.
        assert!(tree_hyper_total > -0.5);
    }
}
