//! Machine configurations: a (topology, basis gate) pair.
//!
//! The paper's thesis is that these two choices must be made together because
//! both are set by the modulator: the CR modulator gives CNOT on sparse
//! heavy-hex lattices, the FSIM coupler gives SYC on square lattices, and the
//! SNAIL gives `√iSWAP` on trees and corrals. A [`Machine`] bundles one such
//! pairing plus the device size class.

use serde::Serialize;
use snailqc_decompose::BasisGate;
use snailqc_topology::{CouplingGraph, TopologyKind};

/// Device size class used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SizeClass {
    /// The 16–20 qubit prototypes of Table 1.
    Small,
    /// The 84-qubit extrapolations of Table 2.
    Large,
}

/// A co-designed machine: a topology paired with its native basis gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct Machine {
    /// Coupling topology family.
    pub topology: TopologyKind,
    /// Native two-qubit basis gate.
    pub basis: BasisGate,
    /// Device size class.
    pub size: SizeClass,
}

impl Machine {
    /// Creates a machine description.
    pub fn new(topology: TopologyKind, basis: BasisGate, size: SizeClass) -> Self {
        Self {
            topology,
            basis,
            size,
        }
    }

    /// Builds the machine's coupling graph.
    pub fn graph(&self) -> CouplingGraph {
        match self.size {
            SizeClass::Small => self.topology.build_small(),
            SizeClass::Large => self.topology.build_large(),
        }
    }

    /// Figure-legend style label, e.g. `Tree-sqrt-iSWAP` or `Heavy-Hex-CX`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.topology.label(), self.basis.label())
    }

    /// The IBM-style baseline: CR modulator ⇒ CNOT on heavy-hex.
    pub fn ibm_baseline(size: SizeClass) -> Self {
        Self::new(TopologyKind::HeavyHex, BasisGate::Cnot, size)
    }

    /// The Google-style baseline: FSIM coupler ⇒ SYC on a square lattice.
    pub fn google_baseline(size: SizeClass) -> Self {
        Self::new(TopologyKind::SquareLattice, BasisGate::Syc, size)
    }

    /// The paper's proposed SNAIL machines (√iSWAP on Tree, Tree-RR and, at
    /// small scale, the Corrals; the hypercube stands in at 84 qubits).
    pub fn snail_machines(size: SizeClass) -> Vec<Self> {
        let mut machines = vec![
            Self::new(TopologyKind::Tree, BasisGate::SqrtISwap, size),
            Self::new(TopologyKind::TreeRoundRobin, BasisGate::SqrtISwap, size),
            Self::new(TopologyKind::Hypercube, BasisGate::SqrtISwap, size),
        ];
        if size == SizeClass::Small {
            machines.push(Self::new(
                TopologyKind::Corral11,
                BasisGate::SqrtISwap,
                size,
            ));
            machines.push(Self::new(
                TopologyKind::Corral12,
                BasisGate::SqrtISwap,
                size,
            ));
        }
        machines
    }

    /// The machine line-up of Fig. 13 (16–20 qubit, co-designed comparison).
    pub fn figure13_lineup() -> Vec<Self> {
        let mut v = vec![
            Self::ibm_baseline(SizeClass::Small),
            Self::google_baseline(SizeClass::Small),
        ];
        v.extend(Self::snail_machines(SizeClass::Small));
        v
    }

    /// The machine line-up of Fig. 14 (84-qubit scaled comparison).
    pub fn figure14_lineup() -> Vec<Self> {
        let mut v = vec![
            Self::ibm_baseline(SizeClass::Large),
            Self::google_baseline(SizeClass::Large),
        ];
        v.extend(Self::snail_machines(SizeClass::Large));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_match_paper_pairings() {
        let ibm = Machine::ibm_baseline(SizeClass::Small);
        assert_eq!(ibm.basis, BasisGate::Cnot);
        assert_eq!(ibm.topology, TopologyKind::HeavyHex);
        assert_eq!(ibm.label(), "Heavy-Hex-CX");

        let google = Machine::google_baseline(SizeClass::Large);
        assert_eq!(google.basis, BasisGate::Syc);
        assert_eq!(google.label(), "Square-Lattice-SYC");
    }

    #[test]
    fn snail_machines_use_sqrt_iswap() {
        for m in Machine::snail_machines(SizeClass::Small) {
            assert_eq!(m.basis, BasisGate::SqrtISwap);
            assert!(
                m.topology.is_snail_topology() || m.topology == TopologyKind::Hypercube,
                "{}",
                m.label()
            );
        }
    }

    #[test]
    fn lineups_have_expected_sizes() {
        assert_eq!(Machine::figure13_lineup().len(), 7);
        assert_eq!(Machine::figure14_lineup().len(), 5);
    }

    #[test]
    fn graphs_build_for_every_lineup_entry() {
        for m in Machine::figure13_lineup() {
            let g = m.graph();
            assert!(
                g.num_qubits() >= 16 && g.num_qubits() <= 20,
                "{}",
                m.label()
            );
        }
        for m in Machine::figure14_lineup() {
            assert_eq!(m.graph().num_qubits(), 84, "{}", m.label());
        }
    }
}
