//! End-to-end circuit fidelity estimation under the paper's two error
//! regimes (§3.1).
//!
//! The paper normalizes machines by assuming uniform gate fidelity and free
//! single-qubit gates, and argues that the right figure of merit depends on
//! the dominant error source:
//!
//! * **control-error dominated** — every applied two-qubit gate contributes
//!   the same infidelity, so the *total* basis-gate count matters;
//! * **decoherence dominated** — only wall-clock time matters, so the
//!   *critical-path* (pulse-duration) count matters, scaled by the basis
//!   gate's pulse fraction (a √iSWAP pulse is half an iSWAP, Eq. 12).
//!
//! [`estimate_fidelity`] turns a [`TranspileReport`] into both estimates plus
//! their product, which is the quantity the paper uses to argue the co-design
//! advantage translates into reliability.

use serde::Serialize;
use snailqc_decompose::BasisGate;
use snailqc_transpiler::TranspileReport;

/// Error-model parameters for the fidelity estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ErrorModel {
    /// Infidelity contributed by each applied basis-gate pulse
    /// (control-error channel).
    pub per_gate_infidelity: f64,
    /// Infidelity accumulated per unit of critical-path pulse time, in units
    /// of a full iSWAP-length pulse (decoherence channel).
    pub per_pulse_time_infidelity: f64,
}

impl Default for ErrorModel {
    fn default() -> Self {
        // The paper's running example: a 99%-fidelity full-length pulse.
        Self {
            per_gate_infidelity: 1e-3,
            per_pulse_time_infidelity: 1e-2,
        }
    }
}

impl ErrorModel {
    /// A model where only gate count matters (idle qubits retain coherence).
    pub fn control_limited(per_gate_infidelity: f64) -> Self {
        Self {
            per_gate_infidelity,
            per_pulse_time_infidelity: 0.0,
        }
    }

    /// A model where only circuit duration matters.
    pub fn decoherence_limited(per_pulse_time_infidelity: f64) -> Self {
        Self {
            per_gate_infidelity: 0.0,
            per_pulse_time_infidelity,
        }
    }
}

/// The fidelity estimate for one transpiled circuit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FidelityEstimate {
    /// Basis gate the report was translated into (`None` for routing-only
    /// estimates at SWAP granularity).
    pub basis: Option<BasisGate>,
    /// Number of basis-gate pulses applied.
    pub gate_count: usize,
    /// Critical-path pulse duration in iSWAP units
    /// (`basis_gate_depth × pulse_fraction`).
    pub pulse_duration: f64,
    /// Fidelity under the control-error channel: `(1 − ε_g)^gates`.
    pub control_fidelity: f64,
    /// Fidelity under the decoherence channel: `(1 − ε_t)^duration`.
    pub decoherence_fidelity: f64,
    /// Product of the two channels.
    pub total_fidelity: f64,
    /// True when the control channel used the device's per-edge error rates
    /// (the routed circuit's actual links) instead of the uniform model rate.
    pub edge_aware: bool,
}

/// Estimates the end-to-end fidelity of a transpiled circuit.
///
/// # Panics
/// Panics if the report was produced without basis translation (the pulse
/// counts would be meaningless).
pub fn estimate_fidelity(report: &TranspileReport, model: &ErrorModel) -> FidelityEstimate {
    let basis = report
        .basis
        .expect("fidelity estimation needs a basis-translated report");
    let gate_count = report.basis_gate_count;
    let pulse_duration = report.basis_gate_depth as f64 * basis.pulse_fraction();
    let control_fidelity = (1.0 - model.per_gate_infidelity).powi(gate_count as i32);
    let decoherence_fidelity = (1.0 - model.per_pulse_time_infidelity).powf(pulse_duration);
    FidelityEstimate {
        basis: Some(basis),
        gate_count,
        pulse_duration,
        control_fidelity,
        decoherence_fidelity,
        total_fidelity: control_fidelity * decoherence_fidelity,
        edge_aware: false,
    }
}

/// Estimates fidelity at routing granularity (each routed two-qubit gate is
/// one unit-length pulse), so circuits transpiled without basis translation
/// still get an estimate.
pub fn estimate_fidelity_routed(report: &TranspileReport, model: &ErrorModel) -> FidelityEstimate {
    let gate_count = report.routed_two_qubit_gates;
    let pulse_duration = report.routed_two_qubit_depth as f64;
    let control_fidelity = (1.0 - model.per_gate_infidelity).powi(gate_count as i32);
    let decoherence_fidelity = (1.0 - model.per_pulse_time_infidelity).powf(pulse_duration);
    FidelityEstimate {
        basis: None,
        gate_count,
        pulse_duration,
        control_fidelity,
        decoherence_fidelity,
        total_fidelity: control_fidelity * decoherence_fidelity,
        edge_aware: false,
    }
}

/// Estimates fidelity from the routed circuit's *actual per-edge
/// infidelities*: the control channel is `exp(Σ ln(1 − err_e))` over the
/// exact edges the routed (or basis-translated, when available) circuit
/// touches, as recorded by the transpiler in the report's edge log-fidelity
/// sums. The decoherence channel still comes from `model`, since circuit
/// duration is edge-independent.
///
/// On a uniform device whose edge rate equals `model.per_gate_infidelity`,
/// this agrees with [`estimate_fidelity`] to floating-point accuracy; on a
/// calibrated device it rewards routes that avoid noisy links.
pub fn estimate_fidelity_edges(report: &TranspileReport, model: &ErrorModel) -> FidelityEstimate {
    let (gate_count, pulse_duration, log_fidelity) = match report.basis {
        Some(basis) => (
            report.basis_gate_count,
            report.basis_gate_depth as f64 * basis.pulse_fraction(),
            report.basis_edge_log_fidelity,
        ),
        None => (
            report.routed_two_qubit_gates,
            report.routed_two_qubit_depth as f64,
            report.routed_edge_log_fidelity,
        ),
    };
    let control_fidelity = log_fidelity.exp();
    let decoherence_fidelity = (1.0 - model.per_pulse_time_infidelity).powf(pulse_duration);
    FidelityEstimate {
        basis: report.basis,
        gate_count,
        pulse_duration,
        control_fidelity,
        decoherence_fidelity,
        total_fidelity: control_fidelity * decoherence_fidelity,
        edge_aware: true,
    }
}

/// Compares two machines on the same workload: returns
/// `(proposed_estimate, baseline_estimate, advantage)` where `advantage` is
/// the ratio of total infidelities (baseline / proposed; > 1 favors the
/// proposed machine).
pub fn fidelity_advantage(
    proposed: &TranspileReport,
    baseline: &TranspileReport,
    model: &ErrorModel,
) -> (FidelityEstimate, FidelityEstimate, f64) {
    let p = estimate_fidelity(proposed, model);
    let b = estimate_fidelity(baseline, model);
    let advantage = (1.0 - b.total_fidelity) / (1.0 - p.total_fidelity).max(f64::MIN_POSITIVE);
    (p, b, advantage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_topology::catalog;
    use snailqc_transpiler::Pipeline;
    use snailqc_workloads::Workload;

    fn report_for(basis: BasisGate, graph: &snailqc_topology::CouplingGraph) -> TranspileReport {
        let circuit = Workload::Qft.generate(12, 3);
        Pipeline::builder()
            .translate_to(basis)
            .build()
            .run(&circuit, graph)
            .report
    }

    #[test]
    fn fidelities_are_probabilities() {
        let report = report_for(BasisGate::SqrtISwap, &catalog::corral12_16());
        let est = estimate_fidelity(&report, &ErrorModel::default());
        for f in [
            est.control_fidelity,
            est.decoherence_fidelity,
            est.total_fidelity,
        ] {
            assert!((0.0..=1.0).contains(&f), "{f}");
        }
        assert!(est.total_fidelity <= est.control_fidelity);
        assert!(est.total_fidelity <= est.decoherence_fidelity);
    }

    #[test]
    fn more_gates_mean_lower_control_fidelity() {
        let small = report_for(BasisGate::SqrtISwap, &catalog::corral12_16());
        let big = report_for(BasisGate::Cnot, &catalog::heavy_hex_20());
        let model = ErrorModel::control_limited(1e-3);
        let f_small = estimate_fidelity(&small, &model);
        let f_big = estimate_fidelity(&big, &model);
        assert!(f_small.gate_count < f_big.gate_count);
        assert!(f_small.total_fidelity > f_big.total_fidelity);
    }

    #[test]
    fn sqrt_iswap_pulse_duration_uses_half_pulses() {
        let report = report_for(BasisGate::SqrtISwap, &catalog::tree_20());
        let est = estimate_fidelity(&report, &ErrorModel::default());
        assert!((est.pulse_duration - report.basis_gate_depth as f64 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn codesigned_machine_has_fidelity_advantage_over_baseline() {
        let snail = report_for(BasisGate::SqrtISwap, &catalog::corral12_16());
        let ibm = report_for(BasisGate::Cnot, &catalog::heavy_hex_20());
        let (_, _, advantage) = fidelity_advantage(&snail, &ibm, &ErrorModel::default());
        assert!(advantage > 1.0, "advantage = {advantage}");
    }

    #[test]
    fn pure_decoherence_model_ignores_gate_count() {
        let report = report_for(BasisGate::SqrtISwap, &catalog::tree_20());
        let est = estimate_fidelity(&report, &ErrorModel::decoherence_limited(1e-2));
        assert!((est.control_fidelity - 1.0).abs() < 1e-12);
        assert!(est.decoherence_fidelity < 1.0);
    }

    #[test]
    #[should_panic(expected = "needs a basis-translated report")]
    fn rejects_reports_without_basis() {
        let circuit = Workload::Ghz.generate(6, 1);
        let report = Pipeline::default()
            .run(&circuit, &catalog::tree_20())
            .report;
        estimate_fidelity(&report, &ErrorModel::default());
    }

    #[test]
    fn routed_estimate_works_without_basis() {
        let circuit = Workload::Qft.generate(8, 2);
        let report = Pipeline::default()
            .run(&circuit, &catalog::tree_20())
            .report;
        let est = estimate_fidelity_routed(&report, &ErrorModel::default());
        assert!(est.basis.is_none());
        assert_eq!(est.gate_count, report.routed_two_qubit_gates);
        assert!((0.0..1.0).contains(&est.total_fidelity));
    }

    #[test]
    fn edge_aware_estimate_matches_uniform_on_an_uncalibrated_device() {
        // Every catalog graph defaults to DEFAULT_EDGE_ERROR = 1e-3, the same
        // rate as ErrorModel::default().per_gate_infidelity, so both control
        // channels must agree to floating-point accuracy.
        let report = report_for(BasisGate::SqrtISwap, &catalog::corral12_16());
        let model = ErrorModel::default();
        let uniform = estimate_fidelity(&report, &model);
        let edges = estimate_fidelity_edges(&report, &model);
        assert!(edges.edge_aware);
        assert!(
            (uniform.control_fidelity - edges.control_fidelity).abs() < 1e-9,
            "{} vs {}",
            uniform.control_fidelity,
            edges.control_fidelity
        );
        assert_eq!(uniform.gate_count, edges.gate_count);
    }

    #[test]
    fn edge_aware_estimate_punishes_a_degraded_edge() {
        use snailqc_transpiler::RouterConfig;
        let circuit = Workload::Qft.generate(12, 3);
        let graph = catalog::corral11_16();
        let mut degraded = graph.clone();
        degraded.scale_edge_error(0, 2, 50.0);
        let pipeline = Pipeline::builder()
            // Noise-blind routing so both devices get the identical circuit.
            .router(RouterConfig::default())
            .translate_to(BasisGate::SqrtISwap)
            .build();
        let clean = pipeline.run(&circuit, &graph).report;
        let noisy = pipeline.run(&circuit, &degraded).report;
        assert_eq!(clean.swap_count, noisy.swap_count);
        let model = ErrorModel::default();
        let f_clean = estimate_fidelity_edges(&clean, &model);
        let f_noisy = estimate_fidelity_edges(&noisy, &model);
        assert!(
            f_noisy.control_fidelity < f_clean.control_fidelity,
            "degraded edge must lower the edge-aware control fidelity"
        );
    }
}
