//! Persistent sweep-result store: JSON-lines cache of transpiled cells.
//!
//! Routing is by far the most expensive stage of a sweep, and the bench
//! binaries re-run the same (workload, size, device, seed) cells on every
//! invocation. A [`SweepStore`] persists each cell's [`TranspileReport`] as
//! one JSON line keyed by everything that determines it — workload, size,
//! device label, basis, seed, error weight, routing trials, and a digest of
//! the device's per-edge calibration — so repeated runs replay cached cells
//! instead of re-routing (the ROADMAP's sweep-store item). The file format
//! is append-friendly plain JSON-lines under `target/paper-results/` and
//! corrupt lines are skipped — but counted and surfaced via
//! [`SweepStore::skipped_corrupt`] — so a killed run never poisons the
//! cache and never hides that it damaged it either.
//!
//! Wire the store into a sweep with
//! [`run_sweep_with_store`](crate::sweep::run_sweep_with_store).

use crate::device::Device;
use crate::sweep::SweepConfig;
use snailqc_decompose::BasisGate;
use snailqc_obs as obs;
use snailqc_transpiler::{Pipeline, TranspileReport};
use snailqc_workloads::Workload;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A keyed, file-backed cache of sweep-cell reports.
///
/// Multiple handles — across threads or processes — may share one backing
/// file: [`SweepStore::flush`] only *appends* the entries inserted through
/// this handle (under an advisory file lock), so concurrent writers never
/// clobber each other's cells. Duplicate keys are resolved last-line-wins at
/// load time; run [`SweepStore::compact`] to rewrite the file without them.
#[derive(Debug)]
pub struct SweepStore {
    path: PathBuf,
    entries: BTreeMap<String, TranspileReport>,
    /// Keys inserted through this handle that [`SweepStore::flush`] has not
    /// yet appended to the backing file.
    pending: BTreeSet<String>,
    /// Cells answered from the cache since opening.
    hits: usize,
    /// Lookups not answered from the cache since opening.
    misses: usize,
    /// New cells inserted since opening (pending and flushed).
    inserted: usize,
    /// Non-empty lines the loader could not parse and skipped.
    skipped_corrupt: usize,
}

/// RAII advisory lock serializing store-file access between cooperating
/// processes. The lock lives on a `<store>.lock` sidecar file (never the
/// store itself, so [`SweepStore::compact`]'s rename can't race a concurrent
/// appender that already opened the old inode) and is released on drop — or
/// by the OS if the holder dies, so a killed run never wedges the store.
#[derive(Debug)]
struct StoreLock {
    #[allow(dead_code)] // held for its flock; dropped to release
    file: fs::File,
}

impl StoreLock {
    /// Path of the sidecar lock file guarding `store_path`.
    fn lock_path(store_path: &Path) -> PathBuf {
        let mut name = store_path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "store".into());
        name.push(".lock");
        store_path.with_file_name(name)
    }

    /// Blocks until the exclusive advisory lock is held.
    fn exclusive(store_path: &Path) -> std::io::Result<Self> {
        let file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(Self::lock_path(store_path))?;
        flock_exclusive(&file)?;
        Ok(Self { file })
    }
}

/// `flock(2)` via the C library std already links — the vendored-workspace
/// equivalent of the `libc` crate call. Advisory, whole-file, exclusive;
/// auto-released when the file description closes (including on crash).
#[cfg(unix)]
fn flock_exclusive(file: &fs::File) -> std::io::Result<()> {
    use std::os::unix::io::AsRawFd;
    const LOCK_EX: i32 = 2;
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    loop {
        // SAFETY: flock is async-signal-safe and `fd` is a live descriptor
        // owned by `file` for the duration of the call.
        let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX) };
        if rc == 0 {
            return Ok(());
        }
        let err = std::io::Error::last_os_error();
        if err.kind() != std::io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Non-unix fallback: no advisory locking (single-process use only there).
#[cfg(not(unix))]
fn flock_exclusive(_file: &fs::File) -> std::io::Result<()> {
    Ok(())
}

impl SweepStore {
    /// Opens the store at `path`, loading any existing entries. A missing
    /// file is an empty store; unparseable lines are skipped and counted
    /// in [`SweepStore::skipped_corrupt`].
    pub fn open(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let mut entries = BTreeMap::new();
        let mut skipped_corrupt = 0usize;
        // Read under the advisory lock so a concurrent appender's half-
        // written tail line is never mistaken for corruption. A failed lock
        // (exotic filesystems) degrades to the old unlocked read.
        let lock = StoreLock::exclusive(&path).ok();
        if let Ok(text) = fs::read_to_string(&path) {
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                // Later lines win: concurrent appenders may both have
                // written the same key, and the newest report is the one an
                // uncached run would produce today.
                if let Some((key, report)) = parse_line(line) {
                    entries.insert(key, report);
                } else {
                    skipped_corrupt += 1;
                }
            }
        }
        drop(lock);
        obs::counter_add("sweep_store.skipped_corrupt", skipped_corrupt as u64);
        Self {
            path,
            entries,
            pending: BTreeSet::new(),
            hits: 0,
            misses: 0,
            inserted: 0,
            skipped_corrupt,
        }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no cells.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cells answered from the cache since opening.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookups that were not in the cache since opening.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// New cells inserted since opening.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Non-empty lines the loader could not parse when opening. A non-zero
    /// value means the backing file was partially corrupted (e.g. a killed
    /// run mid-append) and those cells will be re-routed and re-written.
    pub fn skipped_corrupt(&self) -> usize {
        self.skipped_corrupt
    }

    /// Looks up a cell, counting a hit when present and a miss otherwise.
    pub fn get(&mut self, key: &str) -> Option<TranspileReport> {
        let report = self.entries.get(key).copied();
        if report.is_some() {
            self.hits += 1;
            obs::counter_add("sweep_store.hits", 1);
        } else {
            self.misses += 1;
            obs::counter_add("sweep_store.misses", 1);
        }
        report
    }

    /// Inserts (or replaces) a cell; the entry is appended to the backing
    /// file on the next [`SweepStore::flush`].
    pub fn insert(&mut self, key: String, report: TranspileReport) {
        self.pending.insert(key.clone());
        self.entries.insert(key, report);
        self.inserted += 1;
    }

    /// Renders one `{"key": …, "report": …}` store line (no newline).
    fn render_line(key: &str, report: &TranspileReport) -> std::io::Result<String> {
        let line = serde::Value::Object(vec![
            ("key".into(), serde::Value::String(key.to_string())),
            ("report".into(), serde_json::to_value(report)),
        ]);
        serde_json::to_string(&line).map_err(std::io::Error::other)
    }

    /// Appends every entry inserted since the last flush to the backing
    /// file (one JSON line each, key-sorted), creating parent directories as
    /// needed. A no-op when nothing is pending, so warm replay runs never
    /// touch the file.
    ///
    /// The append happens in `O_APPEND` mode under an advisory file lock, so
    /// any number of handles — in this process or others — can share one
    /// store file without losing each other's entries. (The old
    /// implementation rewrote the whole file from this handle's in-memory
    /// map, silently dropping every cell another process had appended since
    /// this handle opened.) The full rewrite survives only as the explicit
    /// [`SweepStore::compact`].
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = Vec::new();
        for key in &self.pending {
            let report = self.entries.get(key).expect("pending keys are entries");
            writeln!(out, "{}", Self::render_line(key, report)?)?;
        }
        let lock = StoreLock::exclusive(&self.path)?;
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(&out)?;
        drop(file);
        drop(lock);
        self.pending.clear();
        Ok(())
    }

    /// Rewrites the backing file as one key-sorted, duplicate-free line per
    /// cell, via a temp file + rename so a kill mid-compact leaves the
    /// previous store intact. Entries other handles appended since this one
    /// opened are re-read under the lock and merged (this handle's cells win
    /// on key collisions), so compacting never drops concurrent work. The
    /// merged view replaces this handle's in-memory entries.
    pub fn compact(&mut self) -> std::io::Result<()> {
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let lock = StoreLock::exclusive(&self.path)?;
        let mut merged = BTreeMap::new();
        if let Ok(text) = fs::read_to_string(&self.path) {
            for line in text.lines().map(str::trim).filter(|l| !l.is_empty()) {
                if let Some((key, report)) = parse_line(line) {
                    merged.insert(key, report);
                } else {
                    self.skipped_corrupt += 1;
                    obs::counter_add("sweep_store.skipped_corrupt", 1);
                }
            }
        }
        merged.extend(self.entries.iter().map(|(k, v)| (k.clone(), *v)));
        let mut out = Vec::new();
        for (key, report) in &merged {
            writeln!(out, "{}", Self::render_line(key, report)?)?;
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, &self.path)?;
        drop(lock);
        self.entries = merged;
        self.pending.clear();
        Ok(())
    }
}

/// Cache-key schema / algorithm fingerprint. The crate version is mixed into
/// every key so cells cached by an older build are never replayed after a
/// release that may have changed the router or translation counting; bump
/// the `v*` tag to force invalidation within a release. (`v2` added the
/// structural `geom=` digest so file-backed devices that merely share a
/// label cannot alias each other's cells.)
const KEY_VERSION: &str = concat!("v2-", env!("CARGO_PKG_VERSION"));

/// The cache key of one sweep cell: everything that determines its report,
/// plus the private `KEY_VERSION` code-version fingerprint.
pub fn cell_key(workload: Workload, size: usize, device: &Device, config: &SweepConfig) -> String {
    format!(
        "{KEY_VERSION}|{:?}|{}|{}|{:?}|seed={}|trials={}|ew={:?}|noise={:016x}|geom={:016x}",
        workload,
        size,
        device.label(),
        device.basis(),
        config.seed,
        config.routing_trials,
        config.error_weight,
        device.noise_digest(),
        device.structure_digest(),
    )
}

/// The cache key of one source-submitted transpile: everything that
/// determines its report — the QASM source *contents* (so edits
/// invalidate), the effective router seed, the device (label, basis,
/// calibration digest, coupling-structure digest) and the pipeline
/// configuration (layout, trials,
/// error weight) — plus the `KEY_VERSION` code-version fingerprint.
///
/// This is the single key schema shared by the batch CLI
/// (`snailqc transpile <dir> --store …`) and the `snailqc serve` daemon, so
/// a file transpiled in batch and the same source submitted to the daemon
/// with the same seed and configuration hit the same store entry. (The batch
/// CLI used to format its own `batch-v1|…` key, which — unlike
/// [`cell_key`] — omitted the crate-version fingerprint, so cells cached by
/// an older build could be replayed after a router-changing release; routing
/// that key through here closes that hole too.)
pub fn source_cell_key(source: &str, seed: u64, device: &Device, pipeline: &Pipeline) -> String {
    format!(
        "{KEY_VERSION}|src={:016x}|{}|{:?}|layout={:?}|seed={}|trials={}|ew={:?}|noise={:016x}|geom={:016x}",
        snailqc_util::fnv1a_64(source.as_bytes()),
        device.label(),
        device.basis(),
        pipeline.layout(),
        seed,
        pipeline.router().trials,
        pipeline.router().error_weight,
        device.noise_digest(),
        device.structure_digest(),
    )
}

/// Parses one stored JSON line back into `(key, report)`. Returns `None`
/// (skipping the line) on any structural mismatch.
fn parse_line(line: &str) -> Option<(String, TranspileReport)> {
    let value = serde_json::from_str(line).ok()?;
    let key = value.get("key")?.as_str()?.to_string();
    let report = value.get("report")?;
    let field = |name: &str| report.get(name)?.as_f64();
    let count = |name: &str| field(name).map(|v| v as usize);
    let basis = match report.get("basis")? {
        serde::Value::Null => None,
        value => Some(basis_from_variant(value.as_str()?)?),
    };
    Some((
        key,
        TranspileReport {
            logical_qubits: count("logical_qubits")?,
            physical_qubits: count("physical_qubits")?,
            input_two_qubit_gates: count("input_two_qubit_gates")?,
            swap_count: count("swap_count")?,
            swap_depth: count("swap_depth")?,
            routed_two_qubit_gates: count("routed_two_qubit_gates")?,
            routed_two_qubit_depth: count("routed_two_qubit_depth")?,
            basis,
            basis_gate_count: count("basis_gate_count")?,
            basis_gate_depth: count("basis_gate_depth")?,
            error_weight: field("error_weight")?,
            routed_edge_log_fidelity: field("routed_edge_log_fidelity")?,
            basis_edge_log_fidelity: field("basis_edge_log_fidelity")?,
        },
    ))
}

/// Inverse of the derive(Serialize) unit-variant encoding of [`BasisGate`].
fn basis_from_variant(name: &str) -> Option<BasisGate> {
    match name {
        "Cnot" => Some(BasisGate::Cnot),
        "SqrtISwap" => Some(BasisGate::SqrtISwap),
        "Syc" => Some(BasisGate::Syc),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_transpiler::Pipeline;

    fn store_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("snailqc-store-tests");
        let _ = fs::create_dir_all(&dir);
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn sample_report(basis: Option<BasisGate>) -> TranspileReport {
        let circuit = snailqc_workloads::qft(8, true);
        let mut device = Device::from_catalog("hypercube-16").unwrap();
        if let Some(basis) = basis {
            device = device.with_basis(basis);
        }
        device.transpile(&circuit, &Pipeline::default()).report
    }

    #[test]
    fn reports_round_trip_through_the_file_bitwise() {
        let path = store_path("roundtrip");
        let _ = fs::remove_file(&path);
        let mut store = SweepStore::open(&path);
        let with_basis = sample_report(Some(BasisGate::SqrtISwap));
        let routed_only = sample_report(None);
        store.insert("a".into(), with_basis);
        store.insert("b".into(), routed_only);
        store.flush().unwrap();

        let mut reopened = SweepStore::open(&path);
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("a"), Some(with_basis));
        assert_eq!(reopened.get("b"), Some(routed_only));
        assert_eq!(reopened.hits(), 2);
        assert_eq!(reopened.get("missing"), None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let path = store_path("corrupt");
        let mut store = SweepStore::open(&path);
        store.insert("good".into(), sample_report(None));
        store.flush().unwrap();
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("not json at all\n{\"key\": \"half\"}\n");
        fs::write(&path, text).unwrap();

        let reopened = SweepStore::open(&path);
        assert_eq!(reopened.len(), 1);
        // Both bad lines ("not json at all" and the report-less object) are
        // counted, not silently dropped.
        assert_eq!(reopened.skipped_corrupt(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn hits_and_misses_are_counted_separately() {
        let path = store_path("hit-miss");
        let _ = fs::remove_file(&path);
        let mut store = SweepStore::open(&path);
        store.insert("present".into(), sample_report(None));
        assert!(store.get("present").is_some());
        assert!(store.get("absent").is_none());
        assert!(store.get("also-absent").is_none());
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 2);
        assert_eq!(store.skipped_corrupt(), 0);
    }

    #[test]
    fn interleaved_two_handle_flushes_lose_no_entries() {
        // The PR-7 lost-update regression: two handles on one file (batch
        // CLI + bench then; daemon + CLI now) both insert, both flush. The
        // old rewrite-everything flush made whichever flushed last erase the
        // other's cells.
        let path = store_path("interleaved");
        let _ = fs::remove_file(&path);
        let report = sample_report(None);
        let mut a = SweepStore::open(&path);
        let mut b = SweepStore::open(&path);
        a.insert("from-a".into(), report);
        b.insert("from-b".into(), report);
        a.flush().unwrap();
        b.flush().unwrap();
        let reopened = SweepStore::open(&path);
        assert_eq!(reopened.len(), 2, "one handle's flush erased the other's");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn concurrent_appenders_lose_no_entries() {
        let path = store_path("concurrent");
        let _ = fs::remove_file(&path);
        let report = sample_report(None);
        std::thread::scope(|scope| {
            for writer in 0..4 {
                let path = path.clone();
                scope.spawn(move || {
                    let mut store = SweepStore::open(&path);
                    for i in 0..8 {
                        store.insert(format!("w{writer}-cell{i}"), report);
                        // Flush per insert to maximize interleaving.
                        store.flush().unwrap();
                    }
                });
            }
        });
        let reopened = SweepStore::open(&path);
        assert_eq!(reopened.len(), 32);
        assert_eq!(reopened.skipped_corrupt(), 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn repeated_flushes_append_only_pending_entries() {
        let path = store_path("append-once");
        let _ = fs::remove_file(&path);
        let report = sample_report(None);
        let mut store = SweepStore::open(&path);
        store.insert("first".into(), report);
        store.flush().unwrap();
        let after_first = fs::read_to_string(&path).unwrap();
        // A second flush with nothing pending must not touch the file; a
        // flush after one more insert must append exactly one line.
        store.flush().unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), after_first);
        store.insert("second".into(), report);
        store.flush().unwrap();
        let after_second = fs::read_to_string(&path).unwrap();
        assert!(after_second.starts_with(&after_first));
        assert_eq!(after_second.lines().count(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn compact_dedupes_and_merges_concurrent_appends() {
        let path = store_path("compact");
        let _ = fs::remove_file(&path);
        let report = sample_report(None);
        let mut store = SweepStore::open(&path);
        // Same key flushed twice (two appended lines), plus a second key.
        store.insert("dup".into(), report);
        store.flush().unwrap();
        store.insert("dup".into(), report);
        store.insert("other".into(), report);
        store.flush().unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap().lines().count(), 3);
        // A second handle appends a cell this handle has never seen; compact
        // must keep it.
        let mut outside = SweepStore::open(&path);
        outside.insert("outside".into(), report);
        outside.flush().unwrap();
        store.compact().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "compact leaves one line per key");
        let reopened = SweepStore::open(&path);
        assert_eq!(reopened.len(), 3);
        assert_eq!(store.len(), 3, "compact folds merged view back in");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn source_cell_keys_separate_every_axis_and_carry_the_version() {
        let device = Device::from_catalog("tree-20").unwrap();
        let pipeline = Pipeline::default();
        let base = source_cell_key("OPENQASM 2.0;", 7, &device, &pipeline);
        assert!(base.starts_with(KEY_VERSION), "{base}");
        assert_ne!(
            base,
            source_cell_key("OPENQASM 3.0;", 7, &device, &pipeline)
        );
        assert_ne!(
            base,
            source_cell_key("OPENQASM 2.0;", 8, &device, &pipeline)
        );
        assert_ne!(
            base,
            source_cell_key(
                "OPENQASM 2.0;",
                7,
                &device.clone().with_basis(BasisGate::SqrtISwap),
                &pipeline
            )
        );
        let retried = Pipeline::builder().trials(9).build();
        assert_ne!(base, source_cell_key("OPENQASM 2.0;", 7, &device, &retried));
    }

    #[test]
    fn missing_file_opens_empty() {
        let store = SweepStore::open(store_path("never-created"));
        assert!(store.is_empty());
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn cell_keys_separate_every_axis() {
        let config = SweepConfig::smoke();
        let tree = Device::from_catalog("tree-20").unwrap();
        let base = cell_key(Workload::Qft, 8, &tree, &config);
        // Different workload, size, device, basis, seed, or calibration ⇒
        // different key.
        assert_ne!(base, cell_key(Workload::Ghz, 8, &tree, &config));
        assert_ne!(base, cell_key(Workload::Qft, 10, &tree, &config));
        assert_ne!(
            base,
            cell_key(
                Workload::Qft,
                8,
                &Device::from_catalog("tree-84").unwrap(),
                &config
            )
        );
        assert_ne!(
            base,
            cell_key(
                Workload::Qft,
                8,
                &tree.clone().with_basis(BasisGate::SqrtISwap),
                &config
            )
        );
        assert_ne!(
            base,
            cell_key(
                Workload::Qft,
                8,
                &tree,
                &SweepConfig {
                    seed: config.seed + 1,
                    ..config.clone()
                }
            )
        );
        let recalibrated = tree
            .clone()
            .with_error_model(crate::noise::ErrorModelSpec::preset("calibrated").unwrap())
            .unwrap();
        assert_ne!(base, cell_key(Workload::Qft, 8, &recalibrated, &config));
    }
}
