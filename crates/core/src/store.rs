//! Persistent sweep-result store: JSON-lines cache of transpiled cells.
//!
//! Routing is by far the most expensive stage of a sweep, and the bench
//! binaries re-run the same (workload, size, device, seed) cells on every
//! invocation. A [`SweepStore`] persists each cell's [`TranspileReport`] as
//! one JSON line keyed by everything that determines it — workload, size,
//! device label, basis, seed, error weight, routing trials, and a digest of
//! the device's per-edge calibration — so repeated runs replay cached cells
//! instead of re-routing (the ROADMAP's sweep-store item). The file format
//! is append-friendly plain JSON-lines under `target/paper-results/` and
//! corrupt lines are skipped — but counted and surfaced via
//! [`SweepStore::skipped_corrupt`] — so a killed run never poisons the
//! cache and never hides that it damaged it either.
//!
//! Wire the store into a sweep with
//! [`run_sweep_with_store`](crate::sweep::run_sweep_with_store).

use crate::device::Device;
use crate::sweep::SweepConfig;
use snailqc_decompose::BasisGate;
use snailqc_obs as obs;
use snailqc_transpiler::TranspileReport;
use snailqc_workloads::Workload;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A keyed, file-backed cache of sweep-cell reports.
#[derive(Debug)]
pub struct SweepStore {
    path: PathBuf,
    entries: BTreeMap<String, TranspileReport>,
    /// Cells answered from the cache since opening.
    hits: usize,
    /// Lookups not answered from the cache since opening.
    misses: usize,
    /// New cells inserted since opening (pending and flushed).
    inserted: usize,
    /// Non-empty lines the loader could not parse and skipped.
    skipped_corrupt: usize,
}

impl SweepStore {
    /// Opens the store at `path`, loading any existing entries. A missing
    /// file is an empty store; unparseable lines are skipped and counted
    /// in [`SweepStore::skipped_corrupt`].
    pub fn open(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let mut entries = BTreeMap::new();
        let mut skipped_corrupt = 0usize;
        if let Ok(text) = fs::read_to_string(&path) {
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if let Some((key, report)) = parse_line(line) {
                    entries.insert(key, report);
                } else {
                    skipped_corrupt += 1;
                }
            }
        }
        obs::counter_add("sweep_store.skipped_corrupt", skipped_corrupt as u64);
        Self {
            path,
            entries,
            hits: 0,
            misses: 0,
            inserted: 0,
            skipped_corrupt,
        }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no cells.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cells answered from the cache since opening.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookups that were not in the cache since opening.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// New cells inserted since opening.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Non-empty lines the loader could not parse when opening. A non-zero
    /// value means the backing file was partially corrupted (e.g. a killed
    /// run mid-append) and those cells will be re-routed and re-written.
    pub fn skipped_corrupt(&self) -> usize {
        self.skipped_corrupt
    }

    /// Looks up a cell, counting a hit when present and a miss otherwise.
    pub fn get(&mut self, key: &str) -> Option<TranspileReport> {
        let report = self.entries.get(key).copied();
        if report.is_some() {
            self.hits += 1;
            obs::counter_add("sweep_store.hits", 1);
        } else {
            self.misses += 1;
            obs::counter_add("sweep_store.misses", 1);
        }
        report
    }

    /// Inserts (or replaces) a cell.
    pub fn insert(&mut self, key: String, report: TranspileReport) {
        self.entries.insert(key, report);
        self.inserted += 1;
    }

    /// Persists every cached cell (sorted by key, one JSON line each),
    /// creating parent directories as needed. A no-op when nothing was
    /// inserted since opening, so warm replay runs never touch the file; the
    /// rewrite goes through a temp file + rename so a killed run leaves the
    /// previous store intact instead of a truncated one.
    pub fn flush(&self) -> std::io::Result<()> {
        if self.inserted == 0 {
            return Ok(());
        }
        if let Some(parent) = self.path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = Vec::new();
        for (key, report) in &self.entries {
            let line = serde::Value::Object(vec![
                ("key".into(), serde::Value::String(key.clone())),
                ("report".into(), serde_json::to_value(report)),
            ]);
            writeln!(
                out,
                "{}",
                serde_json::to_string(&line).map_err(std::io::Error::other)?
            )?;
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        fs::write(&tmp, out)?;
        fs::rename(&tmp, &self.path)
    }
}

/// Cache-key schema / algorithm fingerprint. The crate version is mixed into
/// every key so cells cached by an older build are never replayed after a
/// release that may have changed the router or translation counting; bump
/// the `v*` tag to force invalidation within a release.
const KEY_VERSION: &str = concat!("v1-", env!("CARGO_PKG_VERSION"));

/// The cache key of one sweep cell: everything that determines its report,
/// plus the private `KEY_VERSION` code-version fingerprint.
pub fn cell_key(workload: Workload, size: usize, device: &Device, config: &SweepConfig) -> String {
    format!(
        "{KEY_VERSION}|{:?}|{}|{}|{:?}|seed={}|trials={}|ew={:?}|noise={:016x}",
        workload,
        size,
        device.label(),
        device.basis(),
        config.seed,
        config.routing_trials,
        config.error_weight,
        device.noise_digest(),
    )
}

/// Parses one stored JSON line back into `(key, report)`. Returns `None`
/// (skipping the line) on any structural mismatch.
fn parse_line(line: &str) -> Option<(String, TranspileReport)> {
    let value = serde_json::from_str(line).ok()?;
    let key = value.get("key")?.as_str()?.to_string();
    let report = value.get("report")?;
    let field = |name: &str| report.get(name)?.as_f64();
    let count = |name: &str| field(name).map(|v| v as usize);
    let basis = match report.get("basis")? {
        serde::Value::Null => None,
        value => Some(basis_from_variant(value.as_str()?)?),
    };
    Some((
        key,
        TranspileReport {
            logical_qubits: count("logical_qubits")?,
            physical_qubits: count("physical_qubits")?,
            input_two_qubit_gates: count("input_two_qubit_gates")?,
            swap_count: count("swap_count")?,
            swap_depth: count("swap_depth")?,
            routed_two_qubit_gates: count("routed_two_qubit_gates")?,
            routed_two_qubit_depth: count("routed_two_qubit_depth")?,
            basis,
            basis_gate_count: count("basis_gate_count")?,
            basis_gate_depth: count("basis_gate_depth")?,
            error_weight: field("error_weight")?,
            routed_edge_log_fidelity: field("routed_edge_log_fidelity")?,
            basis_edge_log_fidelity: field("basis_edge_log_fidelity")?,
        },
    ))
}

/// Inverse of the derive(Serialize) unit-variant encoding of [`BasisGate`].
fn basis_from_variant(name: &str) -> Option<BasisGate> {
    match name {
        "Cnot" => Some(BasisGate::Cnot),
        "SqrtISwap" => Some(BasisGate::SqrtISwap),
        "Syc" => Some(BasisGate::Syc),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snailqc_transpiler::Pipeline;

    fn store_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("snailqc-store-tests");
        let _ = fs::create_dir_all(&dir);
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn sample_report(basis: Option<BasisGate>) -> TranspileReport {
        let circuit = snailqc_workloads::qft(8, true);
        let mut device = Device::from_catalog("hypercube-16").unwrap();
        if let Some(basis) = basis {
            device = device.with_basis(basis);
        }
        device.transpile(&circuit, &Pipeline::default()).report
    }

    #[test]
    fn reports_round_trip_through_the_file_bitwise() {
        let path = store_path("roundtrip");
        let _ = fs::remove_file(&path);
        let mut store = SweepStore::open(&path);
        let with_basis = sample_report(Some(BasisGate::SqrtISwap));
        let routed_only = sample_report(None);
        store.insert("a".into(), with_basis);
        store.insert("b".into(), routed_only);
        store.flush().unwrap();

        let mut reopened = SweepStore::open(&path);
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("a"), Some(with_basis));
        assert_eq!(reopened.get("b"), Some(routed_only));
        assert_eq!(reopened.hits(), 2);
        assert_eq!(reopened.get("missing"), None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let path = store_path("corrupt");
        let mut store = SweepStore::open(&path);
        store.insert("good".into(), sample_report(None));
        store.flush().unwrap();
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("not json at all\n{\"key\": \"half\"}\n");
        fs::write(&path, text).unwrap();

        let reopened = SweepStore::open(&path);
        assert_eq!(reopened.len(), 1);
        // Both bad lines ("not json at all" and the report-less object) are
        // counted, not silently dropped.
        assert_eq!(reopened.skipped_corrupt(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn hits_and_misses_are_counted_separately() {
        let path = store_path("hit-miss");
        let _ = fs::remove_file(&path);
        let mut store = SweepStore::open(&path);
        store.insert("present".into(), sample_report(None));
        assert!(store.get("present").is_some());
        assert!(store.get("absent").is_none());
        assert!(store.get("also-absent").is_none());
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 2);
        assert_eq!(store.skipped_corrupt(), 0);
    }

    #[test]
    fn missing_file_opens_empty() {
        let store = SweepStore::open(store_path("never-created"));
        assert!(store.is_empty());
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn cell_keys_separate_every_axis() {
        let config = SweepConfig::smoke();
        let tree = Device::from_catalog("tree-20").unwrap();
        let base = cell_key(Workload::Qft, 8, &tree, &config);
        // Different workload, size, device, basis, seed, or calibration ⇒
        // different key.
        assert_ne!(base, cell_key(Workload::Ghz, 8, &tree, &config));
        assert_ne!(base, cell_key(Workload::Qft, 10, &tree, &config));
        assert_ne!(
            base,
            cell_key(
                Workload::Qft,
                8,
                &Device::from_catalog("tree-84").unwrap(),
                &config
            )
        );
        assert_ne!(
            base,
            cell_key(
                Workload::Qft,
                8,
                &tree.clone().with_basis(BasisGate::SqrtISwap),
                &config
            )
        );
        assert_ne!(
            base,
            cell_key(
                Workload::Qft,
                8,
                &tree,
                &SweepConfig {
                    seed: config.seed + 1,
                    ..config.clone()
                }
            )
        );
        let recalibrated = tree
            .clone()
            .with_error_model(crate::noise::ErrorModelSpec::preset("calibrated").unwrap())
            .unwrap();
        assert_ne!(base, cell_key(Workload::Qft, 8, &recalibrated, &config));
    }
}
