//! A first-class device: coupling graph + per-edge noise + native basis.
//!
//! The paper's whole argument is about *co-designed machines* — a topology,
//! its native basis gate and its calibrated noise are one artifact, because
//! all three are set by the same modulator. A [`Device`] bundles that
//! artifact behind one type so every consumer (the sweep engine, the CLI,
//! the bench binaries) stops re-assembling it by hand:
//!
//! ```
//! use snailqc_core::device::Device;
//! use snailqc_core::noise::ErrorModelSpec;
//! use snailqc_decompose::BasisGate;
//! use snailqc_transpiler::Pipeline;
//! use snailqc_workloads::Workload;
//!
//! let device = Device::from_catalog("corral11-16")
//!     .unwrap()
//!     .with_basis(BasisGate::SqrtISwap)
//!     .with_error_model(ErrorModelSpec::preset("calibrated").unwrap())
//!     .unwrap();
//! let circuit = Workload::Qft.generate(8, 7);
//! let result = device.transpile(&circuit, &Pipeline::default());
//! assert_eq!(result.report.basis, Some(BasisGate::SqrtISwap));
//! ```
//!
//! [`Device::transpile`] resolves the pipeline's default
//! [`BasisChoice::Device`](snailqc_transpiler::BasisChoice::Device)
//! translation stage against the device's native basis — on a co-designed
//! machine the modulator chooses the gate, not the transpiler call site.

use crate::machine::Machine;
use crate::noise::ErrorModelSpec;
use snailqc_circuit::Circuit;
use snailqc_decompose::BasisGate;
use snailqc_devices::{DeviceSpec, ErrorModelRef};
use snailqc_topology::{catalog, CouplingGraph};
use snailqc_transpiler::{Pipeline, RoutingCache, TranspileError, TranspileResult};
use std::sync::Arc;

/// A co-designed quantum device: a coupling graph carrying per-edge error
/// rates, an optional native two-qubit basis gate, and a display label.
///
/// Every device also owns a [`RoutingCache`]: the all-pairs hop matrix and
/// any error-weighted scoring matrices are computed once on first transpile
/// and shared by every later transpile on the same device (clones share the
/// cache too) — the reason a sweep over (workload × size × seed) cells no
/// longer recomputes all-pairs BFS per cell. The cache never changes
/// results; it only remembers what an uncached run would recompute.
#[derive(Debug, Clone)]
pub struct Device {
    label: String,
    graph: CouplingGraph,
    basis: Option<BasisGate>,
    error_model: Option<ErrorModelSpec>,
    machine: Option<Machine>,
    /// Lazily filled distance matrices keyed to `graph`; rebuilt whenever
    /// the graph's noise changes ([`Device::with_error_model`]).
    routing_cache: Arc<RoutingCache>,
}

/// Cache-blind equality: two devices are equal when their observable state
/// (label, graph, basis, error model, machine) agrees, regardless of which
/// distance matrices each has materialized so far.
impl PartialEq for Device {
    fn eq(&self, other: &Self) -> bool {
        self.label == other.label
            && self.graph == other.graph
            && self.basis == other.basis
            && self.error_model == other.error_model
            && self.machine == other.machine
    }
}

impl Device {
    /// Wraps a bare coupling graph (no native basis, uniform default noise).
    /// The device label starts as the graph's name.
    pub fn from_graph(graph: CouplingGraph) -> Self {
        Self {
            label: graph.name().to_string(),
            graph,
            basis: None,
            error_model: None,
            machine: None,
            routing_cache: Arc::new(RoutingCache::new()),
        }
    }

    /// Builds the device described by a [`Machine`]: the machine's coupling
    /// graph paired with its native basis gate, labelled like the paper's
    /// figure legends (e.g. `Heavy-Hex-CX`).
    pub fn from_machine(machine: Machine) -> Self {
        Self {
            label: machine.label(),
            graph: machine.graph(),
            basis: Some(machine.basis),
            error_model: None,
            machine: Some(machine),
            routing_cache: Arc::new(RoutingCache::new()),
        }
    }

    /// Builds a device from the topology catalog by name (forgiving
    /// matching, same registry as `snailqc topologies`). The device has no
    /// native basis until [`Device::with_basis`] sets one.
    pub fn from_catalog(name: &str) -> Result<Self, String> {
        let graph = catalog::by_name(name).ok_or_else(|| {
            format!(
                "unknown topology `{name}`; available: {}",
                catalog::names().join(", ")
            )
        })?;
        Ok(Self::from_graph(graph))
    }

    /// Builds a device from device-spec JSON text (the `snailqc-devices`
    /// format): topology from edges or a generator, then the spec's error
    /// model stamped on via [`ErrorModelSpec`], then the native basis.
    /// Parse and validation errors carry `line:column` positions.
    pub fn from_spec_str(text: &str) -> Result<Self, String> {
        let spec = DeviceSpec::parse(text).map_err(|e| e.to_string())?;
        Self::from_spec(&spec)
    }

    /// Builds a device from an already-parsed [`DeviceSpec`].
    pub fn from_spec(spec: &DeviceSpec) -> Result<Self, String> {
        let graph = spec.build_graph().map_err(|e| e.to_string())?;
        let mut device = Self::from_graph(graph);
        if let Some(em) = &spec.error_model {
            // The devices crate sits below this one, so it carries the error
            // model as raw data; resolve it here and pin any semantic error
            // to the spec's recorded `error_model` position.
            let position = |e: String| match spec.error_model_at {
                Some((line, col)) => format!("line {line}, column {col}: error_model: {e}"),
                None => format!("error_model: {e}"),
            };
            let resolved = match em {
                ErrorModelRef::Preset(name) => ErrorModelSpec::preset(name).ok_or_else(|| {
                    format!(
                        "unknown preset `{name}` (presets: {})",
                        crate::noise::PRESETS.join(", ")
                    )
                }),
                ErrorModelRef::Inline(text) => ErrorModelSpec::from_json(text),
            }
            .map_err(&position)?;
            device = device.with_error_model(resolved).map_err(&position)?;
        }
        if let Some(basis) = spec.basis {
            device = device.with_basis(basis);
        }
        Ok(device)
    }

    /// Builds a device from a device-spec JSON file; errors are prefixed
    /// with the path.
    pub fn from_spec_file(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading device spec `{}`: {e}", path.display()))?;
        Self::from_spec_str(&text).map_err(|e| format!("device spec `{}`: {e}", path.display()))
    }

    /// Stamps `spec`'s edge-noise distribution onto the device (see
    /// [`ErrorModelSpec::apply`]) and records the spec. Errors if the spec
    /// names an edge the device does not have.
    pub fn with_error_model(mut self, spec: ErrorModelSpec) -> Result<Self, String> {
        spec.apply(&mut self.graph)?;
        self.error_model = Some(spec);
        // The graph's noise changed, so any materialized scoring matrices
        // are stale; start a fresh cache (shared clones keep the old one,
        // which still matches *their* graph).
        self.routing_cache = Arc::new(RoutingCache::new());
        Ok(self)
    }

    /// Sets the native two-qubit basis gate.
    pub fn with_basis(mut self, basis: BasisGate) -> Self {
        self.basis = Some(basis);
        self
    }

    /// Clears the native basis gate — how `--basis none` overrides a spec
    /// file that pins one.
    pub fn without_basis(mut self) -> Self {
        self.basis = None;
        self
    }

    /// Overrides the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The display label (figure-legend style; also the sweep-store key
    /// component identifying this device).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The coupling graph, with any applied error model stamped on.
    pub fn graph(&self) -> &CouplingGraph {
        &self.graph
    }

    /// The native basis gate, when the device has one.
    pub fn basis(&self) -> Option<BasisGate> {
        self.basis
    }

    /// The error-model specification applied via [`Device::with_error_model`].
    pub fn error_model(&self) -> Option<&ErrorModelSpec> {
        self.error_model.as_ref()
    }

    /// The [`Machine`] this device was built from, when it came from
    /// [`Device::from_machine`].
    pub fn machine(&self) -> Option<Machine> {
        self.machine
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.graph.num_qubits()
    }

    /// True when `circuit` fits on this device.
    pub fn fits(&self, circuit: &Circuit) -> bool {
        circuit.num_qubits() <= self.graph.num_qubits()
    }

    /// Runs `pipeline` on this device. The pipeline's default
    /// `BasisChoice::Device` translation stage resolves to this device's
    /// native basis (no translation when the device has none).
    ///
    /// # Panics
    /// Panics where [`Device::try_transpile`] would return an error.
    pub fn transpile(&self, circuit: &Circuit, pipeline: &Pipeline) -> TranspileResult {
        self.try_transpile(circuit, pipeline)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Device::transpile`], reporting a [`TranspileError`] instead of
    /// panicking when the circuit cannot be placed on this device — e.g. it
    /// needs more qubits than the device's largest connected component has.
    pub fn try_transpile(
        &self,
        circuit: &Circuit,
        pipeline: &Pipeline,
    ) -> Result<TranspileResult, TranspileError> {
        pipeline.try_run_with_native_basis_cached(
            circuit,
            &self.graph,
            self.basis,
            &self.routing_cache,
        )
    }

    /// A stable fingerprint of the device's per-edge error rates, mixed into
    /// sweep-store cache keys so re-calibrating a device (same label,
    /// different noise) never resurrects stale cached results.
    pub fn noise_digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(8 * (1 + 3 * self.graph.num_edges()));
        bytes.extend_from_slice(&self.graph.default_edge_error().to_bits().to_le_bytes());
        for ((a, b), rate) in self.graph.edge_errors() {
            bytes.extend_from_slice(&(a as u64).to_le_bytes());
            bytes.extend_from_slice(&(b as u64).to_le_bytes());
            bytes.extend_from_slice(&rate.to_bits().to_le_bytes());
        }
        snailqc_util::fnv1a_64(&bytes)
    }

    /// A stable fingerprint of the device's coupling structure (qubit count
    /// plus the lexicographic edge list), mixed into sweep-store cache keys
    /// so two devices that merely share a label — e.g. a spec file edited in
    /// place — can never alias each other's cached results.
    pub fn structure_digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(8 * (1 + 2 * self.graph.num_edges()));
        bytes.extend_from_slice(&(self.graph.num_qubits() as u64).to_le_bytes());
        for (a, b) in self.graph.edges() {
            bytes.extend_from_slice(&(a as u64).to_le_bytes());
            bytes.extend_from_slice(&(b as u64).to_le_bytes());
        }
        snailqc_util::fnv1a_64(&bytes)
    }
}

impl From<CouplingGraph> for Device {
    fn from(graph: CouplingGraph) -> Self {
        Self::from_graph(graph)
    }
}

impl From<Machine> for Device {
    fn from(machine: Machine) -> Self {
        Self::from_machine(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SizeClass;

    #[test]
    fn from_machine_round_trips() {
        for machine in Machine::figure13_lineup() {
            let device = Device::from_machine(machine);
            assert_eq!(device.machine(), Some(machine));
            assert_eq!(device.basis(), Some(machine.basis));
            assert_eq!(device.label(), machine.label());
            assert_eq!(device.graph(), &machine.graph());
        }
    }

    #[test]
    fn from_catalog_resolves_forgivingly_and_rejects_unknown_names() {
        let device = Device::from_catalog("CORRAL_1_1_16").unwrap();
        assert_eq!(device.label(), "Corral1,1-16");
        assert!(device.basis().is_none());
        let err = Device::from_catalog("no-such-device").unwrap_err();
        assert!(err.contains("corral11-16"), "{err}");
    }

    #[test]
    fn with_error_model_stamps_rates_and_records_the_spec() {
        let device = Device::from_catalog("tree-20")
            .unwrap()
            .with_error_model(ErrorModelSpec::preset("calibrated").unwrap())
            .unwrap();
        assert!(!device.graph().edge_errors_uniform());
        assert!(device.error_model().is_some());
        // Bad overrides surface as errors instead of silently no-opping.
        let err = Device::from_catalog("tree-20")
            .unwrap()
            .with_error_model(ErrorModelSpec::from_json(r#"{"edges": [[0, 19, 0.1]]}"#).unwrap());
        assert!(err.is_err());
    }

    #[test]
    fn transpile_uses_the_native_basis_by_default() {
        let circuit = snailqc_workloads::qft(8, true);
        let device = Device::from_machine(Machine::ibm_baseline(SizeClass::Small));
        let result = device.transpile(&circuit, &Pipeline::default());
        assert_eq!(result.report.basis, Some(BasisGate::Cnot));
        assert!(result.translated.is_some());
        // A basis-less device routes without translating.
        let bare = Device::from_catalog("hypercube-16").unwrap();
        let routed_only = bare.transpile(&circuit, &Pipeline::default());
        assert!(routed_only.translated.is_none());
    }

    #[test]
    fn noise_digest_tracks_calibration_not_label() {
        let uniform = Device::from_catalog("tree-20").unwrap();
        let calibrated = Device::from_catalog("tree-20")
            .unwrap()
            .with_error_model(ErrorModelSpec::preset("calibrated").unwrap())
            .unwrap();
        assert_ne!(uniform.noise_digest(), calibrated.noise_digest());
        assert_eq!(
            uniform.noise_digest(),
            Device::from_catalog("tree-20").unwrap().noise_digest()
        );
    }

    #[test]
    fn repeated_transpiles_reuse_the_cache_without_changing_results() {
        let circuit = snailqc_workloads::quantum_volume(10, 5, 3);
        let device = Device::from_catalog("square-lattice-16")
            .unwrap()
            .with_error_model(ErrorModelSpec::preset("calibrated").unwrap())
            .unwrap();
        let pipeline = Pipeline::builder().error_weight(1.0).build();
        let cold = device.transpile(&circuit, &pipeline);
        for _ in 0..2 {
            let warm = device.transpile(&circuit, &pipeline);
            assert_eq!(cold.report, warm.report);
            assert_eq!(
                cold.routed.circuit.instructions(),
                warm.routed.circuit.instructions(),
                "device cache changed routed output"
            );
        }
        // Clones share the cache and still match; equality ignores cache
        // state entirely.
        let clone = device.clone();
        let via_clone = clone.transpile(&circuit, &pipeline);
        assert_eq!(cold.report, via_clone.report);
        assert_eq!(device, clone);
        assert_eq!(
            device,
            Device::from_catalog("square-lattice-16")
                .unwrap()
                .with_error_model(ErrorModelSpec::preset("calibrated").unwrap())
                .unwrap()
        );
    }

    #[test]
    fn fits_checks_qubit_budget() {
        let device = Device::from_catalog("hypercube-16").unwrap();
        assert!(device.fits(&snailqc_workloads::ghz(16)));
        assert!(!device.fits(&snailqc_workloads::ghz(17)));
        assert_eq!(device.num_qubits(), 16);
    }
}
